//! The FrameQL recursive-descent parser.
//!
//! The grammar (informally):
//!
//! ```text
//! statement  := [EXPLAIN [ANALYZE]] query
//! query      := SELECT select_list FROM from_clause
//!               [WHERE expr] [GROUP BY ident (, ident)*] [HAVING expr]
//!               [constraint]* [LIMIT number [GAP number]] [constraint]*
//!               [WINDOW number FRAMES] [EVERY number FRAMES] [;]
//! from_clause:= '*' | ident (',' ident)*
//! select_list:= '*' | item (',' item)*
//! item       := FCOUNT '(' '*' ')' | COUNT '(' (DISTINCT ident | '*') ')'
//!             | SUM '(' expr ')' | AVG '(' expr ')' | ident
//! constraint := ERROR WITHIN number | [AT] CONFIDENCE number ['%']
//!             | FPR WITHIN number | FNR WITHIN number
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := cmp_expr (AND cmp_expr)*
//! cmp_expr   := primary [cmp_op primary]
//! primary    := number | string | '(' expr ')' | ident '(' args ')' | ident | '*'
//! ```

use crate::ast::{AccuracyConstraints, BinaryOp, Expr, FromClause, Query, SelectItem};
use crate::lexer::{tokenize_spanned, Token};
use crate::{FrameQlError, Result};

/// Keywords that may follow the `FROM` clause; seeing one where a video name is
/// expected means the video list itself is malformed, which gets a caret-annotated
/// error instead of being swallowed as a (nonsensical) video name.
const CLAUSE_KEYWORDS: [&str; 15] = [
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "LIMIT",
    "GAP",
    "ERROR",
    "AT",
    "CONFIDENCE",
    "FPR",
    "FNR",
    "SELECT",
    "WINDOW",
    "EVERY",
    "FRAMES",
];

/// Parses a FrameQL query string.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize_spanned(input)?;
    let mut parser = Parser { input, tokens, pos: 0 };
    let query = parser.parse_query()?;
    parser.expect_end()?;
    Ok(query)
}

struct Parser<'s> {
    input: &'s str,
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(token, _)| token)
    }

    fn peek_keyword(&self) -> Option<String> {
        self.peek().and_then(|t| t.as_keyword())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(token, _)| token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(FrameQlError::ParseError { message: message.into() })
    }

    /// The byte position of the current token (or end of input when exhausted).
    fn current_position(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.input.len(), |&(_, position)| position)
    }

    /// An error pointing a caret at the current token:
    ///
    /// ```text
    /// parse error: expected a video name in the FROM list
    ///   SELECT FCOUNT(*) FROM a, , b
    ///                            ^
    /// ```
    fn error_here<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(FrameQlError::ParseError {
            message: caret_message(self.input, self.current_position(), &message.into()),
        })
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek_keyword() {
            Some(k) if k == kw => {
                self.pos += 1;
                Ok(())
            }
            other => self.error(format!("expected {kw}, found {other:?}")),
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, token: &Token, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == token => {
                self.pos += 1;
                Ok(())
            }
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(n),
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        while matches!(self.peek(), Some(Token::Semicolon)) {
            self.pos += 1;
        }
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.error(format!("unexpected trailing tokens starting at {:?}", self.peek()))
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        let explain = self.accept_keyword("EXPLAIN");
        // ANALYZE is only a keyword directly after EXPLAIN (it stays a valid
        // video or column name everywhere else).
        let analyze = explain && self.accept_keyword("ANALYZE");
        self.expect_keyword("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_from_clause()?;

        let mut where_clause = None;
        let mut group_by = Vec::new();
        let mut having = None;
        let mut limit = None;
        let mut gap = None;
        let mut accuracy = AccuracyConstraints::default();
        let mut window = None;
        let mut every = None;

        loop {
            match self.peek_keyword().as_deref() {
                Some("WHERE") => {
                    self.pos += 1;
                    if where_clause.is_some() {
                        return self.error("duplicate WHERE clause");
                    }
                    where_clause = Some(self.parse_expr()?);
                }
                Some("GROUP") => {
                    self.pos += 1;
                    self.expect_keyword("BY")?;
                    loop {
                        group_by.push(self.expect_ident("GROUP BY column")?);
                        if matches!(self.peek(), Some(Token::Comma)) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                Some("HAVING") => {
                    self.pos += 1;
                    if having.is_some() {
                        return self.error("duplicate HAVING clause");
                    }
                    having = Some(self.parse_expr()?);
                }
                Some("LIMIT") => {
                    self.pos += 1;
                    limit = Some(self.expect_number("LIMIT count")? as u64);
                    if self.accept_keyword("GAP") {
                        gap = Some(self.expect_number("GAP frames")? as u64);
                    }
                }
                Some("ERROR") => {
                    self.pos += 1;
                    self.expect_keyword("WITHIN")?;
                    accuracy.error_within = Some(self.expect_number("error tolerance")?);
                }
                Some("AT") => {
                    self.pos += 1;
                    self.expect_keyword("CONFIDENCE")?;
                    accuracy.confidence = Some(self.parse_confidence_value()?);
                }
                Some("CONFIDENCE") => {
                    self.pos += 1;
                    accuracy.confidence = Some(self.parse_confidence_value()?);
                }
                Some("FPR") => {
                    self.pos += 1;
                    self.expect_keyword("WITHIN")?;
                    accuracy.fpr_within = Some(self.expect_number("FPR tolerance")?);
                }
                Some("FNR") => {
                    self.pos += 1;
                    self.expect_keyword("WITHIN")?;
                    accuracy.fnr_within = Some(self.expect_number("FNR tolerance")?);
                }
                Some("WINDOW") => {
                    self.pos += 1;
                    if window.is_some() {
                        return self.error("duplicate WINDOW clause");
                    }
                    let n = self.expect_number("WINDOW width")?;
                    if n < 1.0 {
                        return self.error("WINDOW width must be at least one frame");
                    }
                    self.expect_keyword("FRAMES")?;
                    window = Some(n as u64);
                }
                Some("EVERY") => {
                    self.pos += 1;
                    if every.is_some() {
                        return self.error("duplicate EVERY clause");
                    }
                    let n = self.expect_number("EVERY interval")?;
                    if n < 1.0 {
                        return self.error("EVERY interval must be at least one frame");
                    }
                    self.expect_keyword("FRAMES")?;
                    every = Some(n as u64);
                }
                _ => break,
            }
        }

        Ok(Query {
            explain,
            analyze,
            select,
            from,
            where_clause,
            group_by,
            having,
            limit,
            gap,
            accuracy,
            window,
            every,
        })
    }

    /// Parses the `FROM` clause: `*` (every registered video) or a comma-separated
    /// list of video names. Malformed lists — a missing name after a comma, a clause
    /// keyword where a name belongs, `*` mixed with names, or the same video twice —
    /// are rejected with a caret pointing at the offending position.
    fn parse_from_clause(&mut self) -> Result<FromClause> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            if matches!(self.peek(), Some(Token::Comma)) {
                return self.error_here(
                    "FROM * already spans every registered video and cannot be combined \
                     with named videos",
                );
            }
            return Ok(FromClause::All);
        }
        let mut names: Vec<String> = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Ident(name)) => {
                    let upper = name.to_ascii_uppercase();
                    if CLAUSE_KEYWORDS.contains(&upper.as_str()) {
                        let place = if names.is_empty() {
                            "after FROM"
                        } else {
                            "after ',' in the FROM list"
                        };
                        return self.error_here(format!(
                            "expected a video name {place}, found keyword {upper}"
                        ));
                    }
                    // Video names route case-insensitively with '_' ≡ '-' (see the
                    // catalog), so the same normalization defines a duplicate here.
                    let key = name.to_ascii_lowercase().replace('_', "-");
                    if names.iter().any(|n| n.to_ascii_lowercase().replace('_', "-") == key) {
                        return self.error_here(format!("duplicate video '{name}' in FROM list"));
                    }
                    names.push(name.clone());
                    self.pos += 1;
                }
                Some(Token::Star) => {
                    return self.error_here(
                        "FROM * spans every registered video and cannot be combined with \
                         named videos",
                    );
                }
                _ => {
                    let what = if names.is_empty() {
                        "expected a video name (or * for every registered video) after FROM"
                    } else {
                        "expected a video name after ',' in the FROM list"
                    };
                    return self.error_here(what);
                }
            }
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(FromClause::Videos(names))
    }

    /// Confidence is written either as a percentage (`95%`) or a fraction (`0.95`);
    /// both normalize to a fraction in `(0, 1)`.
    fn parse_confidence_value(&mut self) -> Result<f64> {
        let n = self.expect_number("confidence level")?;
        let value = if matches!(self.peek(), Some(Token::Percent)) {
            self.pos += 1;
            n / 100.0
        } else if n > 1.0 {
            n / 100.0
        } else {
            n
        };
        if !(0.0..1.0).contains(&value) {
            return self.error(format!("confidence {value} out of range (0, 1)"));
        }
        Ok(value)
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        let name = self.expect_ident("select item")?;
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "FCOUNT" => {
                self.expect_token(&Token::LParen, "(")?;
                self.expect_token(&Token::Star, "*")?;
                self.expect_token(&Token::RParen, ")")?;
                Ok(SelectItem::FCount)
            }
            "COUNT" => {
                self.expect_token(&Token::LParen, "(")?;
                if matches!(self.peek(), Some(Token::Star)) {
                    self.pos += 1;
                    self.expect_token(&Token::RParen, ")")?;
                    Ok(SelectItem::CountStar)
                } else if self.accept_keyword("DISTINCT") {
                    let col = self.expect_ident("DISTINCT column")?;
                    self.expect_token(&Token::RParen, ")")?;
                    Ok(SelectItem::CountDistinct(col.to_ascii_lowercase()))
                } else {
                    self.error("expected * or DISTINCT in COUNT()")
                }
            }
            "SUM" => {
                self.expect_token(&Token::LParen, "(")?;
                let e = self.parse_expr()?;
                self.expect_token(&Token::RParen, ")")?;
                Ok(SelectItem::Sum(Box::new(e)))
            }
            "AVG" => {
                self.expect_token(&Token::LParen, "(")?;
                let e = self.parse_expr()?;
                self.expect_token(&Token::RParen, ")")?;
                Ok(SelectItem::Avg(Box::new(e)))
            }
            _ => Ok(SelectItem::Column(name.to_ascii_lowercase())),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.accept_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_comparison()?;
        while self.accept_keyword("AND") {
            let right = self.parse_comparison()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_primary()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_primary()?;
            Ok(Expr::binary(left, op, right))
        } else {
            Ok(left)
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::StringLit(s)) => Ok(Expr::StringLit(s)),
            Some(Token::Star) => Ok(Expr::Star),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect_token(&Token::RParen, ")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            args.push(self.parse_expr()?);
                            if matches!(self.peek(), Some(Token::Comma)) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_token(&Token::RParen, ")")?;
                    Ok(Expr::FunctionCall { name: name.to_ascii_lowercase(), args })
                } else {
                    Ok(Expr::Column(name.to_ascii_lowercase()))
                }
            }
            other => self.error(format!("unexpected token in expression: {other:?}")),
        }
    }
}

/// Renders `message` followed by the offending line of `input` with a `^` caret under
/// byte position `position` (clamped to the end of input, so "unexpected end of query"
/// errors point just past the last character).
fn caret_message(input: &str, position: usize, message: &str) -> String {
    let position = position.min(input.len());
    // `get` keeps a mid-char-boundary position (impossible for lexer-produced
    // offsets, cheap to tolerate anyway) from panicking in error rendering.
    let before = input.get(..position).unwrap_or(input);
    let after = input.get(position..).unwrap_or("");
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let line_end = after.find('\n').map_or(input.len(), |i| position + i);
    let line = input.get(line_start..line_end).unwrap_or_default();
    let caret_column = position - line_start;
    format!("{message}\n  {line}\n  {:caret_column$}^", "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SelectItem;

    #[test]
    fn parse_fcount_aggregate_query() {
        // Figure 3a of the paper.
        let q = parse_query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%",
        )
        .unwrap();
        assert_eq!(q.select, vec![SelectItem::FCount]);
        assert_eq!(q.from.as_single(), Some("taipei"));
        assert!(q.where_clause.is_some());
        assert_eq!(q.accuracy.error_within, Some(0.1));
        assert!((q.accuracy.confidence.unwrap() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn parse_scrubbing_query() {
        // Figure 3b of the paper.
        let q = parse_query(
            "SELECT timestamp FROM taipei GROUP BY timestamp \
             HAVING SUM(class='bus')>=1 AND SUM(class='car')>=5 LIMIT 10 GAP 300",
        )
        .unwrap();
        assert_eq!(q.select, vec![SelectItem::Column("timestamp".into())]);
        assert_eq!(q.group_by, vec!["timestamp".to_string()]);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.gap, Some(300));
        let having = q.having.unwrap();
        assert_eq!(having.conjuncts().len(), 2);
    }

    #[test]
    fn parse_selection_query() {
        // Figure 3c of the paper.
        let q = parse_query(
            "SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 17.5 \
             AND area(mask) > 100000 GROUP BY trackid HAVING COUNT(*) > 15",
        )
        .unwrap();
        assert!(q.is_select_star());
        assert_eq!(q.group_by, vec!["trackid".to_string()]);
        let conjuncts = q.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 3);
    }

    #[test]
    fn parse_count_distinct() {
        let q =
            parse_query("SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'").unwrap();
        assert_eq!(q.select, vec![SelectItem::CountDistinct("trackid".into())]);
    }

    #[test]
    fn parse_noscope_style_query() {
        let q = parse_query(
            "SELECT timestamp FROM taipei WHERE class = 'car' FNR WITHIN 0.01 FPR WITHIN 0.01",
        )
        .unwrap();
        assert_eq!(q.accuracy.fnr_within, Some(0.01));
        assert_eq!(q.accuracy.fpr_within, Some(0.01));
    }

    #[test]
    fn parse_udf_classification_query() {
        let q =
            parse_query("SELECT * FROM taipei WHERE class = 'car' AND classify(content) = 'sedan'")
                .unwrap();
        let w = q.where_clause.unwrap();
        let found_udf = {
            let mut found = false;
            w.walk(&mut |e| {
                if let Expr::FunctionCall { name, .. } = e {
                    if name == "classify" {
                        found = true;
                    }
                }
            });
            found
        };
        assert!(found_udf);
    }

    #[test]
    fn parse_confidence_without_at_or_percent() {
        let q = parse_query(
            "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 CONFIDENCE 95%",
        )
        .unwrap();
        assert!((q.accuracy.confidence.unwrap() - 0.95).abs() < 1e-9);
        let q2 =
            parse_query("SELECT FCOUNT(*) FROM rialto ERROR WITHIN 0.05 CONFIDENCE 0.9").unwrap();
        assert!((q2.accuracy.confidence.unwrap() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn parse_hyphenated_video_name_and_semicolon() {
        let q = parse_query("SELECT FCOUNT(*) FROM night-street WHERE class = 'car';").unwrap();
        assert_eq!(q.from.as_single(), Some("night-street"));
    }

    #[test]
    fn parse_explain_prefix() {
        let q = parse_query(
            "EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1",
        )
        .unwrap();
        assert!(q.explain);
        assert!(!q.analyze);
        assert_eq!(q.select, vec![SelectItem::FCount]);
        assert_eq!(q.from.as_single(), Some("taipei"));
        let plain = parse_query("SELECT * FROM taipei").unwrap();
        assert!(!plain.explain);
        assert!(!plain.analyze);
        // EXPLAIN must be followed by a full query.
        assert!(parse_query("EXPLAIN").is_err());
        assert!(parse_query("EXPLAIN EXPLAIN SELECT * FROM taipei").is_err());
    }

    #[test]
    fn parse_explain_analyze_prefix() {
        let q = parse_query(
            "EXPLAIN ANALYZE SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1",
        )
        .unwrap();
        assert!(q.explain && q.analyze, "ANALYZE implies EXPLAIN");
        assert_eq!(q.select, vec![SelectItem::FCount]);
        // Case-insensitive like every keyword.
        let q = parse_query("explain analyze select * from taipei").unwrap();
        assert!(q.explain && q.analyze);
        // ANALYZE is only a keyword after EXPLAIN: elsewhere it stays a name.
        let q = parse_query("SELECT analyze FROM analyze").unwrap();
        assert!(!q.explain && !q.analyze);
        assert_eq!(q.from.as_single(), Some("analyze"));
        // ANALYZE without EXPLAIN, or with nothing after it, is malformed.
        assert!(parse_query("ANALYZE SELECT * FROM taipei").is_err());
        assert!(parse_query("EXPLAIN ANALYZE").is_err());
        assert!(parse_query("EXPLAIN ANALYZE ANALYZE SELECT * FROM taipei").is_err());
    }

    #[test]
    fn parse_multi_video_from_list() {
        let q = parse_query(
            "SELECT FCOUNT(*) FROM taipei, amsterdam, night-street WHERE class = 'car' \
             ERROR WITHIN 0.1",
        )
        .unwrap();
        assert_eq!(
            q.from,
            FromClause::Videos(vec![
                "taipei".to_string(),
                "amsterdam".to_string(),
                "night-street".to_string()
            ])
        );
        assert_eq!(q.from.as_single(), None);
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parse_from_star_spans_the_catalog() {
        let q =
            parse_query("SELECT FCOUNT(*) FROM * WHERE class = 'car' ERROR WITHIN 0.1").unwrap();
        assert!(q.from.is_all());
        // Every other clause still parses after the star.
        let scrub = parse_query(
            "SELECT timestamp FROM * GROUP BY timestamp HAVING SUM(class='car')>=1 \
             LIMIT 5 GAP 30",
        )
        .unwrap();
        assert!(scrub.from.is_all());
        assert_eq!(scrub.limit, Some(5));
    }

    #[test]
    fn malformed_from_lists_point_a_caret_at_the_problem() {
        // Missing name after a comma: the caret lands on the second comma.
        let sql = "SELECT FCOUNT(*) FROM a, , b";
        let err = parse_query(sql).unwrap_err();
        let FrameQlError::ParseError { message } = &err else {
            panic!("expected ParseError, got {err:?}")
        };
        assert!(message.contains("expected a video name after ','"), "{message}");
        let caret_line = message.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some(2 + sql.find(", ,").unwrap() + 2), "{message}");

        // Trailing comma at end of input: caret just past the last character.
        let err = parse_query("SELECT * FROM taipei,").unwrap_err();
        let FrameQlError::ParseError { message } = &err else { panic!("{err:?}") };
        assert!(message.lines().last().unwrap().ends_with('^'), "{message}");

        // A clause keyword where a name belongs.
        let err = parse_query("SELECT * FROM taipei, WHERE class = 'car'").unwrap_err();
        let FrameQlError::ParseError { message } = &err else { panic!("{err:?}") };
        assert!(message.contains("found keyword WHERE"), "{message}");

        // Star mixed into a named list (both orders).
        assert!(parse_query("SELECT * FROM *, taipei").is_err());
        assert!(parse_query("SELECT * FROM taipei, *").is_err());

        // Duplicate videos (modulo routing normalization: case and '_' ≡ '-').
        let err = parse_query("SELECT * FROM night-street, Night_Street").unwrap_err();
        let FrameQlError::ParseError { message } = &err else { panic!("{err:?}") };
        assert!(message.contains("duplicate video"), "{message}");
    }

    #[test]
    fn parse_window_and_every_clauses() {
        let q = parse_query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 \
             WINDOW 1000 FRAMES EVERY 250 FRAMES",
        )
        .unwrap();
        assert_eq!(q.window, Some(1_000));
        assert_eq!(q.every, Some(250));
        // Either clause alone, in either order relative to constraints.
        let w = parse_query("SELECT FCOUNT(*) FROM t WINDOW 500 FRAMES ERROR WITHIN 0.2").unwrap();
        assert_eq!(w.window, Some(500));
        assert_eq!(w.every, None);
        let e = parse_query("SELECT FCOUNT(*) FROM t EVERY 100 FRAMES").unwrap();
        assert_eq!(e.window, None);
        assert_eq!(e.every, Some(100));
        // Plain queries carry neither.
        let plain = parse_query("SELECT FCOUNT(*) FROM t").unwrap();
        assert_eq!((plain.window, plain.every), (None, None));
    }

    #[test]
    fn malformed_window_and_every_are_rejected() {
        assert!(parse_query("SELECT FCOUNT(*) FROM t WINDOW FRAMES").is_err());
        assert!(parse_query("SELECT FCOUNT(*) FROM t WINDOW 100").is_err());
        assert!(parse_query("SELECT FCOUNT(*) FROM t WINDOW 0 FRAMES").is_err());
        assert!(parse_query("SELECT FCOUNT(*) FROM t EVERY 0 FRAMES").is_err());
        assert!(parse_query("SELECT FCOUNT(*) FROM t WINDOW 10 FRAMES WINDOW 20 FRAMES").is_err());
        assert!(parse_query("SELECT FCOUNT(*) FROM t EVERY 10 FRAMES EVERY 20 FRAMES").is_err());
        // The clause keywords cannot be video names.
        assert!(parse_query("SELECT FCOUNT(*) FROM WINDOW").is_err());
        assert!(parse_query("SELECT FCOUNT(*) FROM taipei, EVERY 5 FRAMES").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT * FORM taipei").is_err());
        assert!(parse_query("SELECT * FROM taipei WHERE").is_err());
        assert!(parse_query("SELECT * FROM taipei LIMIT").is_err());
        assert!(parse_query("SELECT * FROM taipei trailing garbage").is_err());
        assert!(parse_query("SELECT COUNT(timestamp) FROM taipei").is_err());
        assert!(parse_query("SELECT FCOUNT(*) FROM t AT CONFIDENCE 250%").is_err());
        assert!(parse_query("SELECT * FROM t WHERE a = 1 WHERE b = 2").is_err());
    }

    #[test]
    fn or_precedence_binds_looser_than_and() {
        let q = parse_query("SELECT * FROM v WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => match *right {
                Expr::Binary { op: BinaryOp::And, .. } => {}
                other => panic!("expected AND on the right of OR, got {other:?}"),
            },
            other => panic!("expected OR at the top, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expressions() {
        let q = parse_query("SELECT * FROM v WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::And, left, .. } => match *left {
                Expr::Binary { op: BinaryOp::Or, .. } => {}
                other => panic!("expected OR inside parens, got {other:?}"),
            },
            other => panic!("expected AND at the top, got {other:?}"),
        }
    }

    #[test]
    fn parse_sum_and_avg_select_items() {
        let q = parse_query("SELECT SUM(class='car'), AVG(area(mask)) FROM taipei").unwrap();
        assert_eq!(q.select.len(), 2);
        assert!(matches!(q.select[0], SelectItem::Sum(_)));
        assert!(matches!(q.select[1], SelectItem::Avg(_)));
    }
}
