//! Query classification and analysis.
//!
//! BlazeIt's rule-based optimizer (Section 5) inspects the query's shape to decide
//! which optimization applies: aggregation (Section 6), cardinality-limited scrubbing
//! (Section 7), content-based selection (Section 8), or a fallback exhaustive scan.
//! This module performs that inspection and extracts the structured information the
//! optimizer and filter-inference code need: which classes with which minimum counts,
//! which content UDF thresholds, track-duration constraints (→ temporal filter), and
//! spatial constraints on the mask (→ spatial filter).

use crate::ast::{BinaryOp, Expr, Query, SelectItem};
use crate::udf::UdfRegistry;
use crate::{FrameQlError, Result};
use blazeit_videostore::ObjectClass;
use serde::{Deserialize, Serialize};

/// "At least `min_count` objects of `class`" — the unit of both WHERE class predicates
/// and scrubbing HAVING predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassRequirement {
    /// The object class.
    pub class: ObjectClass,
    /// Minimum number of simultaneous objects of that class in a frame.
    pub min_count: usize,
}

/// A content predicate over a UDF, e.g. `redness(content) >= 17.5`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentPredicate {
    /// UDF name (lower case).
    pub udf: String,
    /// Comparison operator (always oriented as `udf(content) OP threshold`).
    pub op: BinaryOp,
    /// The comparison threshold.
    pub threshold: f64,
    /// Whether the UDF is frame-liftable (usable as a frame-level content filter).
    pub frame_liftable: bool,
}

/// Which mask coordinate a spatial constraint refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaskAccessor {
    /// `xmin(mask)`.
    Xmin,
    /// `xmax(mask)`.
    Xmax,
    /// `ymin(mask)`.
    Ymin,
    /// `ymax(mask)`.
    Ymax,
}

impl MaskAccessor {
    /// The accessor's FrameQL function name.
    pub fn name(&self) -> &'static str {
        match self {
            MaskAccessor::Xmin => "xmin",
            MaskAccessor::Xmax => "xmax",
            MaskAccessor::Ymin => "ymin",
            MaskAccessor::Ymax => "ymax",
        }
    }
}

/// A spatial constraint on the mask, e.g. `xmax(mask) < 720`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialConstraint {
    /// Which mask coordinate is constrained.
    pub accessor: MaskAccessor,
    /// Comparison operator.
    pub op: BinaryOp,
    /// The bound in nominal pixels.
    pub value: f64,
}

/// The class of query, which determines the optimization BlazeIt applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryClass {
    /// An aggregate (FCOUNT / COUNT / COUNT DISTINCT), optionally with an error bound.
    Aggregate {
        /// What is being aggregated.
        kind: AggregateKind,
    },
    /// A cardinality-limited scrubbing query (`LIMIT n [GAP g]` over frames).
    Scrub,
    /// A content-based selection (exhaustive over matching frames, must call detection).
    Select,
    /// Anything else: fall back to an exhaustive scan with no optimization.
    Exhaustive,
}

/// Which aggregate a query computes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateKind {
    /// `FCOUNT(*)` — frame-averaged count.
    FrameAveragedCount,
    /// `COUNT(*)` — total row count.
    Count,
    /// `COUNT(DISTINCT col)`.
    CountDistinct(String),
}

/// The structured information extracted from a query for planning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlanInfo {
    /// The classification.
    pub class: QueryClass,
    /// Class requirements (class + minimum simultaneous count).
    pub requirements: Vec<ClassRequirement>,
    /// Content predicates over UDFs.
    pub content_predicates: Vec<ContentPredicate>,
    /// Spatial constraints on the mask.
    pub spatial_constraints: Vec<SpatialConstraint>,
    /// Minimum area of the mask, if `area(mask) > v` appears.
    pub min_area: Option<f64>,
    /// Minimum number of frames an object must be visible (from
    /// `GROUP BY trackid HAVING COUNT(*) > k`), driving the temporal filter.
    pub min_track_frames: Option<u64>,
    /// The LIMIT, if present.
    pub limit: Option<u64>,
    /// The GAP, if present.
    pub gap: Option<u64>,
    /// The absolute error tolerance, if present.
    pub error_within: Option<f64>,
    /// The confidence level (fraction), if present.
    pub confidence: Option<f64>,
    /// The `WINDOW n FRAMES` width of a continuous query, if present.
    pub window: Option<u64>,
    /// The `EVERY n FRAMES` tick interval of a continuous query, if present.
    pub every: Option<u64>,
}

impl QueryPlanInfo {
    /// The single queried class, when exactly one class requirement exists.
    pub fn single_class(&self) -> Option<ObjectClass> {
        match self.requirements.as_slice() {
            [only] => Some(only.class),
            _ => None,
        }
    }

    /// All queried classes.
    pub fn classes(&self) -> Vec<ObjectClass> {
        self.requirements.iter().map(|r| r.class).collect()
    }
}

/// Analyzes a parsed query: classifies it and extracts plan-relevant structure.
pub fn analyze(query: &Query, udfs: &UdfRegistry) -> Result<QueryPlanInfo> {
    let mut requirements: Vec<ClassRequirement> = Vec::new();
    let mut content_predicates = Vec::new();
    let mut spatial_constraints = Vec::new();
    let mut min_area = None;
    let mut min_track_frames = None;

    // --- WHERE clause -------------------------------------------------------------
    if let Some(where_clause) = &query.where_clause {
        for conjunct in where_clause.conjuncts() {
            analyze_conjunct(
                conjunct,
                udfs,
                &mut requirements,
                &mut content_predicates,
                &mut spatial_constraints,
                &mut min_area,
            )?;
        }
    }

    // --- HAVING clause ------------------------------------------------------------
    let grouped_by_timestamp = query.group_by.iter().any(|g| g == "timestamp");
    let grouped_by_track = query.group_by.iter().any(|g| g == "trackid");
    if let Some(having) = &query.having {
        for conjunct in having.conjuncts() {
            if grouped_by_timestamp {
                if let Some(req) = extract_sum_class_requirement(conjunct) {
                    upsert_requirement(&mut requirements, req);
                    continue;
                }
            }
            if grouped_by_track {
                if let Some(frames) = extract_count_star_threshold(conjunct) {
                    min_track_frames = Some(frames);
                    continue;
                }
            }
            // Other HAVING conjuncts are allowed but carry no plan information.
        }
    }

    // --- Classification -----------------------------------------------------------
    let class = classify(query)?;

    Ok(QueryPlanInfo {
        class,
        requirements,
        content_predicates,
        spatial_constraints,
        min_area,
        min_track_frames,
        limit: query.limit,
        gap: query.gap,
        error_within: query.accuracy.error_within,
        confidence: query.accuracy.confidence,
        window: query.window,
        every: query.every,
    })
}

fn classify(query: &Query) -> Result<QueryClass> {
    // Aggregates take priority: FCOUNT / COUNT selections.
    for item in &query.select {
        match item {
            SelectItem::FCount => {
                return Ok(QueryClass::Aggregate { kind: AggregateKind::FrameAveragedCount })
            }
            SelectItem::CountStar => {
                return Ok(QueryClass::Aggregate { kind: AggregateKind::Count })
            }
            SelectItem::CountDistinct(col) => {
                return Ok(QueryClass::Aggregate {
                    kind: AggregateKind::CountDistinct(col.clone()),
                })
            }
            _ => {}
        }
    }
    // Cardinality-limited queries are scrubbing queries.
    if query.limit.is_some() {
        return Ok(QueryClass::Scrub);
    }
    // SELECT * (or column projections) over object rows: content-based selection.
    if query.is_select_star() || query.select.iter().all(|s| matches!(s, SelectItem::Column(_))) {
        return Ok(QueryClass::Select);
    }
    Ok(QueryClass::Exhaustive)
}

fn analyze_conjunct(
    expr: &Expr,
    udfs: &UdfRegistry,
    requirements: &mut Vec<ClassRequirement>,
    content_predicates: &mut Vec<ContentPredicate>,
    spatial_constraints: &mut Vec<SpatialConstraint>,
    min_area: &mut Option<f64>,
) -> Result<()> {
    let Expr::Binary { left, op, right } = expr else {
        return Ok(());
    };
    if !op.is_comparison() {
        // OR-expressions and similar are evaluated at execution time but provide no
        // filter inference.
        return Ok(());
    }

    // class = 'car'
    if let (Expr::Column(col), Expr::StringLit(value)) = (left.as_ref(), right.as_ref()) {
        if col == "class" && matches!(op, BinaryOp::Eq) {
            let class = ObjectClass::parse(value).ok_or_else(|| FrameQlError::SemanticError {
                message: format!("unknown object class '{value}'"),
            })?;
            upsert_requirement(requirements, ClassRequirement { class, min_count: 1 });
            return Ok(());
        }
    }

    // udf(content) OP number, area(mask) OP number, accessor(mask) OP number
    if let (Expr::FunctionCall { name, .. }, Expr::Number(threshold)) =
        (left.as_ref(), right.as_ref())
    {
        match name.as_str() {
            "area" => {
                if matches!(op, BinaryOp::Gt | BinaryOp::GtEq) {
                    *min_area = Some(min_area.map_or(*threshold, |m: f64| m.max(*threshold)));
                }
                return Ok(());
            }
            "xmin" | "xmax" | "ymin" | "ymax" => {
                let accessor = match name.as_str() {
                    "xmin" => MaskAccessor::Xmin,
                    "xmax" => MaskAccessor::Xmax,
                    "ymin" => MaskAccessor::Ymin,
                    _ => MaskAccessor::Ymax,
                };
                spatial_constraints.push(SpatialConstraint {
                    accessor,
                    op: *op,
                    value: *threshold,
                });
                return Ok(());
            }
            _ => {
                if let Some(udf) = udfs.get(name) {
                    content_predicates.push(ContentPredicate {
                        udf: name.clone(),
                        op: *op,
                        threshold: *threshold,
                        frame_liftable: udf.frame_liftable,
                    });
                    return Ok(());
                }
                return Err(FrameQlError::UnknownUdf(name.clone()));
            }
        }
    }

    Ok(())
}

/// Matches `SUM(class='bus') >= n` (and `>` which means `>= n+1`).
fn extract_sum_class_requirement(expr: &Expr) -> Option<ClassRequirement> {
    let Expr::Binary { left, op, right } = expr else { return None };
    let Expr::FunctionCall { name, args } = left.as_ref() else { return None };
    if name != "sum" {
        return None;
    }
    let Expr::Binary { left: al, op: BinaryOp::Eq, right: ar } = args.first()? else {
        return None;
    };
    let (Expr::Column(col), Expr::StringLit(class_name)) = (al.as_ref(), ar.as_ref()) else {
        return None;
    };
    if col != "class" {
        return None;
    }
    let class = ObjectClass::parse(class_name)?;
    let Expr::Number(n) = right.as_ref() else { return None };
    let min_count = match op {
        BinaryOp::GtEq => *n as usize,
        BinaryOp::Gt => *n as usize + 1,
        BinaryOp::Eq => *n as usize,
        _ => return None,
    };
    Some(ClassRequirement { class, min_count: min_count.max(1) })
}

/// Matches `COUNT(*) > k` / `COUNT(*) >= k` in a track-grouped HAVING.
fn extract_count_star_threshold(expr: &Expr) -> Option<u64> {
    let Expr::Binary { left, op, right } = expr else { return None };
    let Expr::FunctionCall { name, .. } = left.as_ref() else { return None };
    if name != "count" {
        return None;
    }
    let Expr::Number(n) = right.as_ref() else { return None };
    match op {
        BinaryOp::Gt => Some(*n as u64 + 1),
        BinaryOp::GtEq => Some(*n as u64),
        _ => None,
    }
}

fn upsert_requirement(requirements: &mut Vec<ClassRequirement>, req: ClassRequirement) {
    match requirements.iter_mut().find(|r| r.class == req.class) {
        Some(existing) => existing.min_count = existing.min_count.max(req.min_count),
        None => requirements.push(req),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::udf::builtin_udfs;

    fn analyze_sql(sql: &str) -> QueryPlanInfo {
        let q = parse_query(sql).unwrap();
        analyze(&q, &builtin_udfs()).unwrap()
    }

    #[test]
    fn aggregate_query_classification() {
        let info = analyze_sql(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%",
        );
        assert_eq!(info.class, QueryClass::Aggregate { kind: AggregateKind::FrameAveragedCount });
        assert_eq!(
            info.requirements,
            vec![ClassRequirement { class: ObjectClass::Car, min_count: 1 }]
        );
        assert_eq!(info.single_class(), Some(ObjectClass::Car));
        assert_eq!(info.error_within, Some(0.1));
    }

    #[test]
    fn count_distinct_classification() {
        let info = analyze_sql("SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'");
        assert_eq!(
            info.class,
            QueryClass::Aggregate { kind: AggregateKind::CountDistinct("trackid".into()) }
        );
    }

    #[test]
    fn scrubbing_query_extracts_multi_class_requirements() {
        let info = analyze_sql(
            "SELECT timestamp FROM taipei GROUP BY timestamp \
             HAVING SUM(class='bus')>=1 AND SUM(class='car')>=5 LIMIT 10 GAP 300",
        );
        assert_eq!(info.class, QueryClass::Scrub);
        assert_eq!(info.limit, Some(10));
        assert_eq!(info.gap, Some(300));
        assert_eq!(info.requirements.len(), 2);
        assert!(info
            .requirements
            .contains(&ClassRequirement { class: ObjectClass::Bus, min_count: 1 }));
        assert!(info
            .requirements
            .contains(&ClassRequirement { class: ObjectClass::Car, min_count: 5 }));
        assert_eq!(info.single_class(), None);
        assert_eq!(info.classes().len(), 2);
    }

    #[test]
    fn selection_query_extracts_filters() {
        let info = analyze_sql(
            "SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 17.5 \
             AND area(mask) > 100000 GROUP BY trackid HAVING COUNT(*) > 15",
        );
        assert_eq!(info.class, QueryClass::Select);
        assert_eq!(
            info.requirements,
            vec![ClassRequirement { class: ObjectClass::Bus, min_count: 1 }]
        );
        assert_eq!(info.min_area, Some(100_000.0));
        assert_eq!(info.min_track_frames, Some(16));
        assert_eq!(info.content_predicates.len(), 1);
        let p = &info.content_predicates[0];
        assert_eq!(p.udf, "redness");
        assert!(p.frame_liftable);
        assert_eq!(p.op, BinaryOp::GtEq);
        assert!((p.threshold - 17.5).abs() < 1e-9);
    }

    #[test]
    fn spatial_constraints_extracted() {
        let info = analyze_sql(
            "SELECT * FROM taipei WHERE class = 'car' AND xmax(mask) < 720 AND ymin(mask) >= 100",
        );
        assert_eq!(info.spatial_constraints.len(), 2);
        assert_eq!(info.spatial_constraints[0].accessor, MaskAccessor::Xmax);
        assert_eq!(info.spatial_constraints[0].op, BinaryOp::Lt);
        assert_eq!(info.spatial_constraints[1].accessor, MaskAccessor::Ymin);
        assert_eq!(info.spatial_constraints[1].accessor.name(), "ymin");
    }

    #[test]
    fn non_liftable_udf_recorded_as_such() {
        let info = analyze_sql("SELECT * FROM taipei WHERE class = 'car' AND area(mask) > 5000");
        assert!(info.content_predicates.is_empty());
        let info2 =
            analyze_sql("SELECT * FROM taipei WHERE class = 'car' AND luminance(content) >= 50");
        assert_eq!(info2.content_predicates.len(), 1);
        assert!(info2.content_predicates[0].frame_liftable);
    }

    #[test]
    fn duplicate_class_requirements_take_max() {
        let info = analyze_sql(
            "SELECT timestamp FROM taipei WHERE class = 'car' GROUP BY timestamp \
             HAVING SUM(class='car') >= 4 LIMIT 5",
        );
        assert_eq!(
            info.requirements,
            vec![ClassRequirement { class: ObjectClass::Car, min_count: 4 }]
        );
    }

    #[test]
    fn unknown_class_is_semantic_error() {
        let q = parse_query("SELECT FCOUNT(*) FROM taipei WHERE class = 'dragon'").unwrap();
        assert!(matches!(analyze(&q, &builtin_udfs()), Err(FrameQlError::SemanticError { .. })));
    }

    #[test]
    fn unknown_udf_in_where_is_error() {
        let q = parse_query("SELECT * FROM taipei WHERE shininess(content) > 3").unwrap();
        assert!(matches!(analyze(&q, &builtin_udfs()), Err(FrameQlError::UnknownUdf(_))));
    }

    #[test]
    fn noscope_style_query_is_selection() {
        let info = analyze_sql(
            "SELECT timestamp FROM taipei WHERE class = 'car' FNR WITHIN 0.01 FPR WITHIN 0.01",
        );
        assert_eq!(info.class, QueryClass::Select);
    }

    #[test]
    fn sum_with_gt_becomes_plus_one() {
        let info = analyze_sql(
            "SELECT timestamp FROM taipei GROUP BY timestamp HAVING SUM(class='boat') > 6 LIMIT 10",
        );
        assert_eq!(
            info.requirements,
            vec![ClassRequirement { class: ObjectClass::Boat, min_count: 7 }]
        );
    }
}
