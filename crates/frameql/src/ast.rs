//! The FrameQL abstract syntax tree.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `SELECT *`
    Star,
    /// A plain column reference (`timestamp`, `class`, ...).
    Column(String),
    /// `FCOUNT(*)` — frame-averaged count (Table 2).
    FCount,
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(DISTINCT column)`.
    CountDistinct(String),
    /// `SUM(expr)`.
    Sum(Box<Expr>),
    /// `AVG(expr)`.
    Avg(Box<Expr>),
}

/// Binary operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// Whether the operator is a comparison (as opposed to a boolean connective).
    pub fn is_comparison(&self) -> bool {
        !matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A FrameQL expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference.
    Column(String),
    /// A string literal.
    StringLit(String),
    /// A numeric literal.
    Number(f64),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A function call: a UDF (`redness(content)`, `area(mask)`) or an aggregate inside
    /// `HAVING` (`SUM(class='bus')`, `COUNT(*)`).
    FunctionCall {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `*` as a function argument (`COUNT(*)`).
    Star,
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Walks the expression tree, invoking `visit` on every node.
    pub fn walk(&self, visit: &mut impl FnMut(&Expr)) {
        visit(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(visit);
                right.walk(visit);
            }
            Expr::FunctionCall { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
            _ => {}
        }
    }

    /// Splits a conjunctive expression into its top-level AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn collect<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { left, op: BinaryOp::And, right } => {
                    collect(left, out);
                    collect(right, out);
                }
                other => out.push(other),
            }
        }
        collect(self, &mut out);
        out
    }
}

/// The `FROM` clause of a query: which registered videos the query spans.
///
/// BlazeIt's deployments are many-camera installations, so FrameQL lets one query
/// address several streams at once:
///
/// * `FROM taipei` — one video (the common case).
/// * `FROM taipei, amsterdam` — an explicit list; results are merged across them.
/// * `FROM *` — every video registered in the catalog at prepare time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FromClause {
    /// Explicitly named videos, in query order (always at least one).
    Videos(Vec<String>),
    /// `FROM *`: every registered video.
    All,
}

impl FromClause {
    /// A `FROM` clause naming exactly one video.
    pub fn single(name: impl Into<String>) -> FromClause {
        FromClause::Videos(vec![name.into()])
    }

    /// The video name, when the clause names exactly one.
    pub fn as_single(&self) -> Option<&str> {
        match self {
            FromClause::Videos(names) => match names.as_slice() {
                [only] => Some(only),
                _ => None,
            },
            _ => None,
        }
    }

    /// Whether this is `FROM *` (every registered video).
    pub fn is_all(&self) -> bool {
        matches!(self, FromClause::All)
    }

    /// The explicitly named videos (empty for `FROM *`).
    pub fn names(&self) -> &[String] {
        match self {
            FromClause::Videos(names) => names,
            FromClause::All => &[],
        }
    }
}

impl fmt::Display for FromClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromClause::Videos(names) => f.write_str(&names.join(", ")),
            FromClause::All => f.write_str("*"),
        }
    }
}

/// Error / accuracy constraints attached to a query (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccuracyConstraints {
    /// `ERROR WITHIN e` — absolute error tolerance for aggregates.
    pub error_within: Option<f64>,
    /// `[AT] CONFIDENCE c%` — confidence level in `(0, 1)`.
    pub confidence: Option<f64>,
    /// `FPR WITHIN p` — allowed false positive rate.
    pub fpr_within: Option<f64>,
    /// `FNR WITHIN p` — allowed false negative rate.
    pub fnr_within: Option<f64>,
}

/// A parsed FrameQL query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Whether the query was prefixed with `EXPLAIN`: the engine renders the chosen
    /// plan instead of executing it (and charges nothing to the simulated clock).
    pub explain: bool,
    /// Whether the query was prefixed with `EXPLAIN ANALYZE` (implies
    /// `explain`): the engine *executes* the query under a trace collector and
    /// renders the actual span tree — per-stage wall time, simulated cost, and
    /// call counts — instead of just the chosen plan.
    pub analyze: bool,
    /// The `SELECT` list.
    pub select: Vec<SelectItem>,
    /// The videos (relations) the query spans.
    pub from: FromClause,
    /// The `WHERE` predicate, if any.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<String>,
    /// The `HAVING` predicate, if any.
    pub having: Option<Expr>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
    /// `GAP g` — minimum spacing (in frames) between returned frames.
    pub gap: Option<u64>,
    /// Error / accuracy constraints.
    pub accuracy: AccuracyConstraints,
    /// `WINDOW n FRAMES` — a continuous query's sliding-window width: each tick
    /// aggregates over the most recent `n` ingested frames. `None` means the
    /// whole stream so far. Only meaningful under
    /// `Session::subscribe`; one-shot execution rejects it.
    pub window: Option<u64>,
    /// `EVERY n FRAMES` — a continuous query's tick interval: an update is
    /// emitted each time `n` more frames have been ingested. Only meaningful
    /// under `Session::subscribe`; one-shot execution rejects it.
    pub every: Option<u64>,
}

impl Query {
    /// Whether the select list is exactly `SELECT *`.
    pub fn is_select_star(&self) -> bool {
        self.select.len() == 1 && matches!(self.select[0], SelectItem::Star)
    }

    /// Whether any select item is an aggregate (`FCOUNT`, `COUNT`, `SUM`, `AVG`).
    pub fn has_aggregate_select(&self) -> bool {
        self.select.iter().any(|s| {
            matches!(
                s,
                SelectItem::FCount
                    | SelectItem::CountStar
                    | SelectItem::CountDistinct(_)
                    | SelectItem::Sum(_)
                    | SelectItem::Avg(_)
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::binary(
            Expr::binary(Expr::Column("a".into()), BinaryOp::Eq, Expr::Number(1.0)),
            BinaryOp::And,
            Expr::binary(
                Expr::binary(Expr::Column("b".into()), BinaryOp::Gt, Expr::Number(2.0)),
                BinaryOp::And,
                Expr::Column("c".into()),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn conjuncts_do_not_split_or() {
        let e = Expr::binary(Expr::Column("a".into()), BinaryOp::Or, Expr::Column("b".into()));
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn walk_visits_every_node() {
        let e = Expr::binary(
            Expr::FunctionCall {
                name: "redness".into(),
                args: vec![Expr::Column("content".into())],
            },
            BinaryOp::GtEq,
            Expr::Number(17.5),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn select_helpers() {
        let q = Query {
            explain: false,
            analyze: false,
            select: vec![SelectItem::Star],
            from: FromClause::single("taipei"),
            where_clause: None,
            group_by: vec![],
            having: None,
            limit: None,
            gap: None,
            accuracy: AccuracyConstraints::default(),
            window: None,
            every: None,
        };
        assert!(q.is_select_star());
        assert!(!q.has_aggregate_select());
        let q2 = Query { select: vec![SelectItem::FCount], ..q };
        assert!(q2.has_aggregate_select());
        assert!(!q2.is_select_star());
    }

    #[test]
    fn from_clause_helpers() {
        let one = FromClause::single("taipei");
        assert_eq!(one.as_single(), Some("taipei"));
        assert!(!one.is_all());
        assert_eq!(one.names(), ["taipei".to_string()]);
        assert_eq!(one.to_string(), "taipei");

        let many = FromClause::Videos(vec!["a".into(), "b".into()]);
        assert_eq!(many.as_single(), None);
        assert_eq!(many.to_string(), "a, b");

        let all = FromClause::All;
        assert!(all.is_all());
        assert_eq!(all.as_single(), None);
        assert!(all.names().is_empty());
        assert_eq!(all.to_string(), "*");
    }

    #[test]
    fn operator_properties() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
        assert_eq!(BinaryOp::GtEq.to_string(), ">=");
    }
}
