//! The FrameQL lexer.

// blazeit-lint: allow-file(panic-site::index) -- single-pass byte scanner: every index is guarded
// by an explicit bound check against bytes.len()

use crate::{FrameQlError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword or identifier (keywords are recognized case-insensitively by the
    /// parser; the lexer preserves the original spelling).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A single-quoted string literal.
    StringLit(String),
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `%`
    Percent,
    /// `;`
    Semicolon,
}

impl Token {
    /// If the token is an identifier, returns it upper-cased (for keyword matching).
    pub fn as_keyword(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Lexes a FrameQL query string into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Ok(tokenize_spanned(input)?.into_iter().map(|(token, _)| token).collect())
}

/// Lexes a FrameQL query string into `(token, byte position)` pairs.
///
/// The position is the byte offset of the token's first character in `input`; the
/// parser uses it to render caret-annotated error messages.
pub fn tokenize_spanned(input: &str) -> Result<Vec<(Token, usize)>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, i));
                i += 1;
            }
            '(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, i));
                i += 1;
            }
            '%' => {
                tokens.push((Token::Percent, i));
                i += 1;
            }
            ';' => {
                tokens.push((Token::Semicolon, i));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Eq, i));
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push((Token::NotEq, i));
                    i += 2;
                } else {
                    return Err(FrameQlError::LexError {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push((Token::LtEq, i));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] as char == '>' {
                    tokens.push((Token::NotEq, i));
                    i += 2;
                } else {
                    tokens.push((Token::Lt, i));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push((Token::GtEq, i));
                    i += 2;
                } else {
                    tokens.push((Token::Gt, i));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(FrameQlError::LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push((Token::StringLit(input[start..j].to_string()), i));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                if j < bytes.len() && bytes[j] as char == '.' {
                    return Err(FrameQlError::LexError {
                        position: start,
                        message: "invalid number literal (multiple decimal points)".into(),
                    });
                }
                let text = &input[start..j];
                let value: f64 = text.parse().map_err(|_| FrameQlError::LexError {
                    position: start,
                    message: format!("invalid number literal '{text}'"),
                })?;
                tokens.push((Token::Number(value), start));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '-' || d == '.' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Ident(input[start..j].to_string()), start));
                i = j;
            }
            other => {
                return Err(FrameQlError::LexError {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_select() {
        let tokens = tokenize("SELECT * FROM taipei").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("SELECT".into()),
                Token::Star,
                Token::Ident("FROM".into()),
                Token::Ident("taipei".into()),
            ]
        );
    }

    #[test]
    fn lex_operators_and_numbers() {
        let tokens =
            tokenize("a >= 17.5 AND b <> 3 OR c != 1 AND d <= 2 AND e < 5 AND f > 0.1").unwrap();
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::Number(17.5)));
        assert_eq!(tokens.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(tokens.contains(&Token::LtEq));
        assert!(tokens.contains(&Token::Lt));
        assert!(tokens.contains(&Token::Gt));
    }

    #[test]
    fn lex_string_literals() {
        let tokens = tokenize("class = 'car'").unwrap();
        assert_eq!(
            tokens,
            vec![Token::Ident("class".into()), Token::Eq, Token::StringLit("car".into())]
        );
    }

    #[test]
    fn lex_percent_and_parens() {
        let tokens = tokenize("CONFIDENCE 95% COUNT(*)").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("CONFIDENCE".into()),
                Token::Number(95.0),
                Token::Percent,
                Token::Ident("COUNT".into()),
                Token::LParen,
                Token::Star,
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lex_hyphenated_stream_names() {
        let tokens = tokenize("FROM night-street").unwrap();
        assert_eq!(tokens[1], Token::Ident("night-street".into()));
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(tokenize("a = 'unterminated"), Err(FrameQlError::LexError { .. })));
        assert!(matches!(tokenize("a ! b"), Err(FrameQlError::LexError { .. })));
        assert!(matches!(tokenize("a = #"), Err(FrameQlError::LexError { .. })));
        assert!(matches!(tokenize("x = 1.2.3"), Err(FrameQlError::LexError { .. })));
    }

    #[test]
    fn spanned_tokens_record_byte_positions() {
        let spanned = tokenize_spanned("SELECT *  FROM night-street").unwrap();
        assert_eq!(
            spanned,
            vec![
                (Token::Ident("SELECT".into()), 0),
                (Token::Star, 7),
                (Token::Ident("FROM".into()), 10),
                (Token::Ident("night-street".into()), 15),
            ]
        );
        // The unspanned view is exactly the spanned one with positions dropped.
        let plain = tokenize("SELECT *  FROM night-street").unwrap();
        assert_eq!(plain, spanned.into_iter().map(|(t, _)| t).collect::<Vec<_>>());
    }

    #[test]
    fn keyword_helper_uppercases() {
        let t = Token::Ident("select".into());
        assert_eq!(t.as_keyword(), Some("SELECT".into()));
        assert_eq!(Token::Star.as_keyword(), None);
    }
}
