//! The FrameQL data schema and value model (Table 1 of the paper).
//!
//! Each row of the virtual relation represents one object visible in one frame:
//! `timestamp` (seconds), `class`, `mask` (bounding box), `trackid`, `content` (the
//! pixels inside the mask — represented here by the frame index plus the mask, so UDFs
//! can read the pixels lazily) and `features` (the detector's feature embedding).

use blazeit_videostore::{BoundingBox, FrameIndex, ObjectClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scalar value produced by evaluating FrameQL expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing / inapplicable.
    Null,
    /// Boolean.
    Bool(bool),
    /// Double-precision number (all FrameQL numerics are f64).
    Number(f64),
    /// String.
    Str(String),
    /// A bounding box (the `mask` column).
    Mask(BoundingBox),
}

impl Value {
    /// Interprets the value as a boolean (SQL-ish semantics: numbers are true when
    /// non-zero, strings when non-empty, NULL is false).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Number(n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Mask(_) => true,
        }
    }

    /// Interprets the value as a number, if possible (booleans become 0/1).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interprets the value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Mask(m) => {
                write!(f, "[{:.1},{:.1},{:.1},{:.1}]", m.xmin, m.ymin, m.xmax, m.ymax)
            }
        }
    }
}

/// One row of the FrameQL relation: an object visible in a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameQlRow {
    /// Timestamp in seconds from the start of the video.
    pub timestamp: f64,
    /// Frame index the row was materialized from (not part of the paper's schema, but
    /// needed to lazily fetch `content` pixels).
    pub frame: FrameIndex,
    /// Object class.
    pub class: ObjectClass,
    /// The object's mask (bounding box).
    pub mask: BoundingBox,
    /// Track identifier assigned by the entity-resolution method.
    pub trackid: u64,
    /// Detector confidence for this object.
    pub confidence: f32,
    /// The detector's feature embedding.
    pub features: Vec<f32>,
}

impl FrameQlRow {
    /// Reads a named column of the row. `content` is intentionally *not* readable here:
    /// it requires frame pixels and is evaluated through the UDF context instead.
    pub fn column(&self, name: &str) -> Option<Value> {
        match name {
            "timestamp" => Some(Value::Number(self.timestamp)),
            "frame" => Some(Value::Number(self.frame as f64)),
            "class" => Some(Value::Str(self.class.name().to_string())),
            "mask" => Some(Value::Mask(self.mask)),
            "trackid" => Some(Value::Number(self.trackid as f64)),
            "confidence" => Some(Value::Number(f64::from(self.confidence))),
            _ => None,
        }
    }

    /// The names of the schema columns (Table 1), in presentation order.
    pub fn column_names() -> &'static [&'static str] {
        &["timestamp", "class", "mask", "trackid", "content", "features"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> FrameQlRow {
        FrameQlRow {
            timestamp: 1.5,
            frame: 45,
            class: ObjectClass::Bus,
            mask: BoundingBox::new(10.0, 20.0, 110.0, 220.0),
            trackid: 7,
            confidence: 0.93,
            features: vec![0.1, 0.2],
        }
    }

    #[test]
    fn column_access() {
        let r = row();
        assert_eq!(r.column("timestamp"), Some(Value::Number(1.5)));
        assert_eq!(r.column("class"), Some(Value::Str("bus".into())));
        assert_eq!(r.column("trackid"), Some(Value::Number(7.0)));
        assert!(matches!(r.column("mask"), Some(Value::Mask(_))));
        assert_eq!(r.column("no_such_column"), None);
        assert_eq!(r.column("content"), None);
    }

    #[test]
    fn value_truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Number(0.0).truthy());
        assert!(Value::Number(3.0).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Number(2.5).as_number(), Some(2.5));
        assert_eq!(Value::Bool(true).as_number(), Some(1.0));
        assert_eq!(Value::Str("car".into()).as_number(), None);
        assert_eq!(Value::Str("car".into()).as_str(), Some("car"));
        assert_eq!(Value::Number(1.0).as_str(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("bus".into()).to_string(), "bus");
        assert_eq!(Value::Number(2.0).to_string(), "2");
    }

    #[test]
    fn schema_columns_match_paper() {
        let names = FrameQlRow::column_names();
        assert!(names.contains(&"timestamp"));
        assert!(names.contains(&"mask"));
        assert!(names.contains(&"content"));
        assert_eq!(names.len(), 6);
    }
}
