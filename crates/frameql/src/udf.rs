//! User-defined functions over masks and content.
//!
//! UDFs (Section 3 of the paper) are functions of a timestamp, mask and the rectangular
//! set of pixels inside the mask. BlazeIt ships `redness`-style color UDFs, `area` over
//! the mask, and a toy fine-grained `classify`. A UDF additionally declares whether it
//! is *liftable to the frame level*: a liftable UDF returns a continuous value that is
//! still meaningful when evaluated over the whole frame, which is what lets the
//! optimizer turn `redness(content) >= 17.5` into a cheap frame-level content filter
//! (Section 8.1).

use crate::schema::Value;
use crate::{FrameQlError, Result};
use blazeit_videostore::{BoundingBox, Frame};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The signature of a UDF implementation: frame pixels + the object mask.
pub type UdfFn = dyn Fn(&Frame, &BoundingBox) -> Value + Send + Sync;

/// A registered UDF.
#[derive(Clone)]
pub struct Udf {
    /// Lower-case name used in queries.
    pub name: String,
    /// Whether the UDF returns a continuous value that is meaningful at the frame level
    /// (and can therefore be used as an inferred content filter).
    pub frame_liftable: bool,
    /// The implementation.
    pub func: Arc<UdfFn>,
}

impl std::fmt::Debug for Udf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Udf")
            .field("name", &self.name)
            .field("frame_liftable", &self.frame_liftable)
            .finish()
    }
}

/// A registry of UDFs available to query evaluation and filter inference.
#[derive(Debug, Clone, Default)]
pub struct UdfRegistry {
    udfs: BTreeMap<String, Udf>,
}

impl UdfRegistry {
    /// Creates an empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Registers a UDF (replacing any existing UDF of the same name).
    pub fn register(
        &mut self,
        name: &str,
        frame_liftable: bool,
        func: impl Fn(&Frame, &BoundingBox) -> Value + Send + Sync + 'static,
    ) {
        let name = name.to_ascii_lowercase();
        self.udfs.insert(name.clone(), Udf { name, frame_liftable, func: Arc::new(func) });
    }

    /// Looks up a UDF by name.
    pub fn get(&self, name: &str) -> Option<&Udf> {
        self.udfs.get(&name.to_ascii_lowercase())
    }

    /// Whether `name` refers to a registered UDF.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Evaluates a UDF over a frame region.
    pub fn call(&self, name: &str, frame: &Frame, mask: &BoundingBox) -> Result<Value> {
        let udf = self.get(name).ok_or_else(|| FrameQlError::UnknownUdf(name.to_string()))?;
        Ok((udf.func)(frame, mask))
    }

    /// Names of all registered UDFs.
    pub fn names(&self) -> Vec<String> {
        self.udfs.keys().cloned().collect()
    }
}

/// Builds the registry of built-in UDFs used by the paper's example queries.
///
/// * `redness(content)` / `blueness(content)` — mean red/blue channel dominance of the
///   masked pixels (frame-liftable, continuous).
/// * `area(mask)` — area of the mask in nominal pixels (not content-dependent).
/// * `luminance(content)` — mean brightness (frame-liftable).
/// * `classify(content)` — a toy fine-grained classifier distinguishing `sedan` from
///   `suv` by the mask's aspect ratio (not frame-liftable: it returns a discrete label).
pub fn builtin_udfs() -> UdfRegistry {
    let mut registry = UdfRegistry::new();
    registry
        .register("redness", true, |frame, mask| Value::Number(f64::from(frame.redness_in(mask))));
    registry.register("blueness", true, |frame, mask| {
        Value::Number(f64::from(frame.blueness_in(mask)))
    });
    registry.register("luminance", true, |frame, mask| {
        let (r, g, b) = frame.mean_color_in(mask);
        Value::Number(f64::from(0.299 * r + 0.587 * g + 0.114 * b))
    });
    registry.register("area", false, |_frame, mask| Value::Number(f64::from(mask.area())));
    registry.register("classify", false, |_frame, mask| {
        let aspect = mask.width() / mask.height().max(1.0);
        Value::Str(if aspect >= 1.5 { "sedan".to_string() } else { "suv".to_string() })
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::object::Color;

    fn red_frame() -> Frame {
        Frame::filled(0, 0.0, (1280.0, 720.0), (96, 54), Color::RED)
    }

    #[test]
    fn builtin_registry_contents() {
        let reg = builtin_udfs();
        for name in ["redness", "blueness", "area", "classify", "luminance"] {
            assert!(reg.contains(name), "missing builtin {name}");
        }
        assert!(!reg.contains("nope"));
        assert_eq!(reg.names().len(), 5);
    }

    #[test]
    fn redness_udf_on_red_frame() {
        let reg = builtin_udfs();
        let frame = red_frame();
        let mask = BoundingBox::new(0.0, 0.0, 1280.0, 720.0);
        let v = reg.call("redness", &frame, &mask).unwrap();
        assert!(v.as_number().unwrap() > 100.0);
        let b = reg.call("blueness", &frame, &mask).unwrap();
        assert!(b.as_number().unwrap() < 0.0);
    }

    #[test]
    fn area_udf_uses_mask_only() {
        let reg = builtin_udfs();
        let frame = red_frame();
        let mask = BoundingBox::new(0.0, 0.0, 200.0, 500.0);
        assert_eq!(reg.call("area", &frame, &mask).unwrap(), Value::Number(100_000.0));
    }

    #[test]
    fn classify_udf_by_aspect_ratio() {
        let reg = builtin_udfs();
        let frame = red_frame();
        let wide = BoundingBox::new(0.0, 0.0, 300.0, 100.0);
        let tall = BoundingBox::new(0.0, 0.0, 100.0, 100.0);
        assert_eq!(reg.call("classify", &frame, &wide).unwrap(), Value::Str("sedan".into()));
        assert_eq!(reg.call("classify", &frame, &tall).unwrap(), Value::Str("suv".into()));
    }

    #[test]
    fn unknown_udf_is_an_error() {
        let reg = builtin_udfs();
        let frame = red_frame();
        let mask = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert!(matches!(reg.call("sharpness", &frame, &mask), Err(FrameQlError::UnknownUdf(_))));
    }

    #[test]
    fn custom_udf_registration_and_liftability() {
        let mut reg = builtin_udfs();
        reg.register("always_one", true, |_, _| Value::Number(1.0));
        assert!(reg.get("always_one").unwrap().frame_liftable);
        assert!(reg.get("classify").map(|u| !u.frame_liftable).unwrap());
        let frame = red_frame();
        assert_eq!(
            reg.call("ALWAYS_ONE", &frame, &BoundingBox::new(0.0, 0.0, 1.0, 1.0)).unwrap(),
            Value::Number(1.0)
        );
    }
}
