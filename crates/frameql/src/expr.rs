//! Evaluation of FrameQL expressions against rows and frames.
//!
//! Two evaluation contexts exist:
//!
//! * **Row-level** ([`evaluate_row`]): a `WHERE` predicate evaluated against a single
//!   object row (optionally with the frame's pixels available for content UDFs).
//! * **Frame-level** ([`evaluate_frame_having`]): a `HAVING` predicate evaluated
//!   against all rows of one frame after `GROUP BY timestamp` — this is how scrubbing
//!   queries like `HAVING SUM(class='bus') >= 1 AND SUM(class='car') >= 5` are defined.

use crate::ast::{BinaryOp, Expr};
use crate::schema::{FrameQlRow, Value};
use crate::udf::UdfRegistry;
use crate::{FrameQlError, Result};
use blazeit_videostore::Frame;

/// Mask-accessor helpers available in expressions without registration:
/// `xmin(mask)`, `xmax(mask)`, `ymin(mask)`, `ymax(mask)`, `width(mask)`, `height(mask)`.
pub const MASK_ACCESSORS: [&str; 6] = ["xmin", "xmax", "ymin", "ymax", "width", "height"];

fn mask_accessor(name: &str, row: &FrameQlRow) -> Option<Value> {
    let m = &row.mask;
    let v = match name {
        "xmin" => m.xmin,
        "xmax" => m.xmax,
        "ymin" => m.ymin,
        "ymax" => m.ymax,
        "width" => m.width(),
        "height" => m.height(),
        _ => return None,
    };
    Some(Value::Number(f64::from(v)))
}

/// Evaluates an expression against one row.
///
/// `frame` must be provided when the expression references content UDFs (`redness`,
/// `classify`, ...); mask-only functions (`area`, `xmin`, ...) work without it.
pub fn evaluate_row(
    expr: &Expr,
    row: &FrameQlRow,
    frame: Option<&Frame>,
    udfs: &UdfRegistry,
) -> Result<Value> {
    match expr {
        Expr::Number(n) => Ok(Value::Number(*n)),
        Expr::StringLit(s) => Ok(Value::Str(s.clone())),
        Expr::Star => Ok(Value::Number(1.0)),
        Expr::Column(name) => row
            .column(name)
            .ok_or_else(|| FrameQlError::EvalError(format!("unknown column '{name}'"))),
        Expr::FunctionCall { name, args } => {
            if MASK_ACCESSORS.contains(&name.as_str()) {
                return mask_accessor(name, row)
                    .ok_or_else(|| FrameQlError::EvalError(format!("bad mask accessor {name}")));
            }
            // `area(mask)` depends only on the mask, so it never needs frame pixels.
            if name == "area" && args.len() == 1 {
                return Ok(Value::Number(f64::from(row.mask.area())));
            }
            if udfs.contains(name) {
                let frame = frame.ok_or_else(|| {
                    FrameQlError::EvalError(format!(
                        "UDF '{name}' requires frame content, which is not available in this context"
                    ))
                })?;
                return udfs.call(name, frame, &row.mask);
            }
            // `area` is registered as a UDF, but be tolerant if a caller supplies a
            // registry without the builtins.
            if name == "area" && args.len() == 1 {
                return Ok(Value::Number(f64::from(row.mask.area())));
            }
            Err(FrameQlError::UnknownUdf(name.clone()))
        }
        Expr::Binary { left, op, right } => {
            let l = evaluate_row(left, row, frame, udfs)?;
            if matches!(op, BinaryOp::And) {
                if !l.truthy() {
                    return Ok(Value::Bool(false));
                }
                let r = evaluate_row(right, row, frame, udfs)?;
                return Ok(Value::Bool(r.truthy()));
            }
            if matches!(op, BinaryOp::Or) {
                if l.truthy() {
                    return Ok(Value::Bool(true));
                }
                let r = evaluate_row(right, row, frame, udfs)?;
                return Ok(Value::Bool(r.truthy()));
            }
            let r = evaluate_row(right, row, frame, udfs)?;
            compare(&l, *op, &r)
        }
    }
}

/// Evaluates a `HAVING` expression against all rows of one frame
/// (`GROUP BY timestamp` semantics).
pub fn evaluate_frame_having(
    expr: &Expr,
    rows: &[FrameQlRow],
    frame: Option<&Frame>,
    udfs: &UdfRegistry,
) -> Result<Value> {
    match expr {
        Expr::Number(n) => Ok(Value::Number(*n)),
        Expr::StringLit(s) => Ok(Value::Str(s.clone())),
        Expr::FunctionCall { name, args } => match name.as_str() {
            "sum" => {
                let arg = args
                    .first()
                    .ok_or_else(|| FrameQlError::EvalError("SUM requires an argument".into()))?;
                let mut total = 0.0;
                for row in rows {
                    let v = evaluate_row(arg, row, frame, udfs)?;
                    total += v.as_number().unwrap_or(if v.truthy() { 1.0 } else { 0.0 });
                }
                Ok(Value::Number(total))
            }
            "count" => Ok(Value::Number(rows.len() as f64)),
            "avg" => {
                let arg = args
                    .first()
                    .ok_or_else(|| FrameQlError::EvalError("AVG requires an argument".into()))?;
                if rows.is_empty() {
                    return Ok(Value::Number(0.0));
                }
                let mut total = 0.0;
                for row in rows {
                    let v = evaluate_row(arg, row, frame, udfs)?;
                    total += v.as_number().unwrap_or(if v.truthy() { 1.0 } else { 0.0 });
                }
                Ok(Value::Number(total / rows.len() as f64))
            }
            _ => Err(FrameQlError::EvalError(format!(
                "function '{name}' is not an aggregate usable in HAVING"
            ))),
        },
        Expr::Binary { left, op, right } => {
            let l = evaluate_frame_having(left, rows, frame, udfs)?;
            match op {
                BinaryOp::And => {
                    if !l.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = evaluate_frame_having(right, rows, frame, udfs)?;
                    Ok(Value::Bool(r.truthy()))
                }
                BinaryOp::Or => {
                    if l.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = evaluate_frame_having(right, rows, frame, udfs)?;
                    Ok(Value::Bool(r.truthy()))
                }
                _ => {
                    let r = evaluate_frame_having(right, rows, frame, udfs)?;
                    compare(&l, *op, &r)
                }
            }
        }
        Expr::Column(name) => Err(FrameQlError::EvalError(format!(
            "bare column '{name}' is not valid in a frame-level HAVING"
        ))),
        Expr::Star => Ok(Value::Number(rows.len() as f64)),
    }
}

fn compare(left: &Value, op: BinaryOp, right: &Value) -> Result<Value> {
    // Numeric comparison when both sides are numeric (or boolean).
    if let (Some(l), Some(r)) = (left.as_number(), right.as_number()) {
        let result = match op {
            BinaryOp::Eq => (l - r).abs() < f64::EPSILON,
            BinaryOp::NotEq => (l - r).abs() >= f64::EPSILON,
            BinaryOp::Lt => l < r,
            BinaryOp::LtEq => l <= r,
            BinaryOp::Gt => l > r,
            BinaryOp::GtEq => l >= r,
            BinaryOp::And | BinaryOp::Or => {
                return Err(FrameQlError::EvalError(
                    "logical operator reached value comparison (the caller short-circuits \
                     AND/OR before comparing)"
                        .into(),
                ))
            }
        };
        return Ok(Value::Bool(result));
    }
    // String comparison.
    if let (Value::Str(l), Value::Str(r)) = (left, right) {
        let result = match op {
            BinaryOp::Eq => l.eq_ignore_ascii_case(r),
            BinaryOp::NotEq => !l.eq_ignore_ascii_case(r),
            BinaryOp::Lt => l < r,
            BinaryOp::LtEq => l <= r,
            BinaryOp::Gt => l > r,
            BinaryOp::GtEq => l >= r,
            BinaryOp::And | BinaryOp::Or => {
                return Err(FrameQlError::EvalError(
                    "logical operator reached value comparison (the caller short-circuits \
                     AND/OR before comparing)"
                        .into(),
                ))
            }
        };
        return Ok(Value::Bool(result));
    }
    // NULL comparisons are false (SQL-ish).
    if matches!(left, Value::Null) || matches!(right, Value::Null) {
        return Ok(Value::Bool(false));
    }
    Err(FrameQlError::EvalError(format!("cannot compare {left:?} {op} {right:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::udf::builtin_udfs;
    use blazeit_videostore::object::Color;
    use blazeit_videostore::{BoundingBox, ObjectClass};

    fn row(class: ObjectClass, x: f32) -> FrameQlRow {
        FrameQlRow {
            timestamp: 3.0,
            frame: 90,
            class,
            mask: BoundingBox::new(x, 100.0, x + 400.0, 400.0),
            trackid: 1,
            confidence: 0.9,
            features: vec![],
        }
    }

    fn red_frame() -> Frame {
        Frame::filled(90, 3.0, (1280.0, 720.0), (96, 54), Color::RED)
    }

    fn where_of(sql: &str) -> Expr {
        parse_query(sql).unwrap().where_clause.unwrap()
    }

    #[test]
    fn class_equality_predicate() {
        let udfs = builtin_udfs();
        let e = where_of("SELECT * FROM v WHERE class = 'bus'");
        let bus = row(ObjectClass::Bus, 100.0);
        let car = row(ObjectClass::Car, 100.0);
        assert_eq!(evaluate_row(&e, &bus, None, &udfs).unwrap(), Value::Bool(true));
        assert_eq!(evaluate_row(&e, &car, None, &udfs).unwrap(), Value::Bool(false));
    }

    #[test]
    fn udf_predicate_with_content() {
        let udfs = builtin_udfs();
        let e = where_of("SELECT * FROM v WHERE redness(content) >= 17.5");
        let r = row(ObjectClass::Bus, 100.0);
        let frame = red_frame();
        assert_eq!(evaluate_row(&e, &r, Some(&frame), &udfs).unwrap(), Value::Bool(true));
        // Without the frame, a content UDF cannot be evaluated.
        assert!(evaluate_row(&e, &r, None, &udfs).is_err());
    }

    #[test]
    fn area_and_mask_accessors() {
        let udfs = builtin_udfs();
        let e = where_of("SELECT * FROM v WHERE area(mask) > 100000");
        let r = row(ObjectClass::Bus, 100.0); // 400 x 300 = 120,000 px
        assert_eq!(evaluate_row(&e, &r, None, &udfs).unwrap(), Value::Bool(true));
        let e2 = where_of("SELECT * FROM v WHERE xmax(mask) < 720");
        assert_eq!(evaluate_row(&e2, &r, None, &udfs).unwrap(), Value::Bool(true));
        let far = row(ObjectClass::Bus, 900.0);
        assert_eq!(evaluate_row(&e2, &far, None, &udfs).unwrap(), Value::Bool(false));
    }

    #[test]
    fn and_or_short_circuit() {
        let udfs = builtin_udfs();
        // The right-hand UDF would fail without a frame, but the left side decides.
        let e = where_of("SELECT * FROM v WHERE class = 'car' AND redness(content) > 10");
        let bus = row(ObjectClass::Bus, 0.0);
        assert_eq!(evaluate_row(&e, &bus, None, &udfs).unwrap(), Value::Bool(false));
        let e_or = where_of("SELECT * FROM v WHERE class = 'bus' OR redness(content) > 10");
        assert_eq!(evaluate_row(&e_or, &bus, None, &udfs).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unknown_column_and_udf_errors() {
        let udfs = builtin_udfs();
        let e = where_of("SELECT * FROM v WHERE speed > 10");
        assert!(evaluate_row(&e, &row(ObjectClass::Car, 0.0), None, &udfs).is_err());
        let e2 = where_of("SELECT * FROM v WHERE sharpness(content) > 10");
        assert!(matches!(
            evaluate_row(&e2, &row(ObjectClass::Car, 0.0), Some(&red_frame()), &udfs),
            Err(FrameQlError::UnknownUdf(_))
        ));
    }

    #[test]
    fn having_sum_of_class_predicates() {
        let udfs = builtin_udfs();
        let having = parse_query(
            "SELECT timestamp FROM v GROUP BY timestamp \
             HAVING SUM(class='bus')>=1 AND SUM(class='car')>=2 LIMIT 1",
        )
        .unwrap()
        .having
        .unwrap();
        let rows_match = vec![
            row(ObjectClass::Bus, 0.0),
            row(ObjectClass::Car, 300.0),
            row(ObjectClass::Car, 600.0),
        ];
        let rows_no_match = vec![row(ObjectClass::Car, 0.0), row(ObjectClass::Car, 300.0)];
        assert_eq!(
            evaluate_frame_having(&having, &rows_match, None, &udfs).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            evaluate_frame_having(&having, &rows_no_match, None, &udfs).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(evaluate_frame_having(&having, &[], None, &udfs).unwrap(), Value::Bool(false));
    }

    #[test]
    fn having_count_star() {
        let udfs = builtin_udfs();
        let having = parse_query("SELECT * FROM v GROUP BY trackid HAVING COUNT(*) > 2")
            .unwrap()
            .having
            .unwrap();
        let rows3 = vec![
            row(ObjectClass::Bus, 0.0),
            row(ObjectClass::Bus, 1.0),
            row(ObjectClass::Bus, 2.0),
        ];
        assert_eq!(evaluate_frame_having(&having, &rows3, None, &udfs).unwrap(), Value::Bool(true));
        assert_eq!(
            evaluate_frame_having(&having, &rows3[..2], None, &udfs).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn string_comparison_is_case_insensitive() {
        assert_eq!(
            compare(&Value::Str("Car".into()), BinaryOp::Eq, &Value::Str("car".into())).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            compare(&Value::Str("bus".into()), BinaryOp::NotEq, &Value::Str("car".into())).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn null_comparisons_are_false() {
        assert_eq!(
            compare(&Value::Null, BinaryOp::Eq, &Value::Number(1.0)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn incompatible_comparison_is_error() {
        assert!(compare(&Value::Str("car".into()), BinaryOp::Lt, &Value::Number(1.0)).is_err());
    }
}
