//! # blazeit-frameql
//!
//! FrameQL: the SQL-like declarative query language for spatiotemporal information of
//! objects in video (Section 4 of the BlazeIt paper).
//!
//! FrameQL exposes each video as a virtual relation with one row per *(object, frame)*
//! pair (Table 1): `timestamp`, `class`, `mask`, `trackid`, `content`, `features`.
//! On top of standard SQL selection / projection / aggregation it adds the paper's
//! syntactic sugar (Table 2):
//!
//! * `FCOUNT(*)` — frame-averaged count (`COUNT(*) / MAX(timestamp)` over frames);
//! * `ERROR WITHIN e [AT] CONFIDENCE c%` — absolute error tolerance for aggregates;
//! * `FPR WITHIN` / `FNR WITHIN` — allowed false positive / negative rates;
//! * `LIMIT n GAP g` — cardinality-limited (scrubbing) queries with a minimum spacing
//!   between returned frames.
//!
//! The crate is organized as lexer → parser → AST ([`ast::Query`]), plus the schema /
//! value model ([`schema`]), expression evaluation ([`expr`]), the UDF registry
//! ([`udf`]) and query classification ([`query`]) used by BlazeIt's rule-based
//! optimizer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod query;
pub mod schema;
pub mod udf;

pub use ast::{BinaryOp, Expr, Query, SelectItem};
pub use parser::parse_query;
pub use query::{ClassRequirement, QueryClass, QueryPlanInfo};
pub use schema::{FrameQlRow, Value};
pub use udf::{builtin_udfs, Udf, UdfRegistry};

/// Errors produced while lexing, parsing or analyzing FrameQL.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameQlError {
    /// A character or token could not be lexed.
    LexError {
        /// Byte position of the offending character.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// The token stream did not match the grammar.
    ParseError {
        /// Description of what was expected.
        message: String,
    },
    /// The query is syntactically valid but semantically unsupported or inconsistent.
    SemanticError {
        /// Description of the problem.
        message: String,
    },
    /// A referenced UDF is not registered.
    UnknownUdf(String),
    /// Evaluation error (type mismatch, missing column, ...).
    EvalError(String),
}

impl std::fmt::Display for FrameQlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameQlError::LexError { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            FrameQlError::ParseError { message } => write!(f, "parse error: {message}"),
            FrameQlError::SemanticError { message } => write!(f, "semantic error: {message}"),
            FrameQlError::UnknownUdf(name) => write!(f, "unknown UDF: {name}"),
            FrameQlError::EvalError(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for FrameQlError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, FrameQlError>;
