//! Table 4: query-rewriting error (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Table 4: query-rewriting error ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::table4(scale));
}
