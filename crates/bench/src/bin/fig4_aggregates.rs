//! Figure 4: end-to-end runtime of aggregate queries (see EXPERIMENTS.md).
//! Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Figure 4: aggregate query runtimes (error 0.1, confidence 95%) ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    let (_rows, report) = experiments::fig4(scale);
    println!("{report}");
}
