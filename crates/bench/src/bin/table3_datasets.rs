//! Table 3: dataset characteristics (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Table 3: dataset characteristics ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::table3(scale));
}
