//! Table 6: scrubbing query details (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Table 6: scrubbing query details ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::table6(scale));
}
