//! Figure 6: scrubbing runtimes (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Figure 6: scrubbing runtimes ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::fig6(scale));
}
