//! Table 5: predicted vs actual counts on two days (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Table 5: predicted vs actual counts on two days ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::table5(scale));
}
