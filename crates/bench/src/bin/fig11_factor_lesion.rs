//! Figure 11: filter factor analysis and lesion study (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Figure 11: filter factor analysis and lesion study ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::fig11(scale));
}
