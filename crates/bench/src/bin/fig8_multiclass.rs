//! Figure 8: multi-class scrubbing runtime (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Figure 8: multi-class scrubbing runtime ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::fig8(scale));
}
