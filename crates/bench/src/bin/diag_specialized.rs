//! Diagnostic: how well does the specialized counting NN track the detector's
//! frame-averaged counts across days? Used to tune training hyperparameters; not part
//! of the paper's experiment suite.

use blazeit_core::{baselines, BlazeItConfig, Catalog};
use blazeit_nn::train::TrainConfig;
use blazeit_videostore::{DatasetPreset, ObjectClass};

fn main() {
    let frames: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4_000);
    let epochs: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let lr: f32 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let hidden: usize = std::env::args().nth(4).and_then(|s| s.parse().ok()).unwrap_or(48);

    for preset in [DatasetPreset::Taipei, DatasetPreset::NightStreet, DatasetPreset::Rialto] {
        let class = preset.primary_class();
        let mut config = BlazeItConfig::for_preset(preset);
        config.train = TrainConfig { epochs, ..TrainConfig::default() };
        config.train.sgd.learning_rate = lr;
        config.specialized_hidden = vec![hidden];
        if let Ok(g) = std::env::var("GRID") {
            config.features.grid_side = g.parse().unwrap_or(12);
        }
        let catalog = Catalog::new();
        catalog.register_preset_with_config(preset, frames, config).expect("register");
        let engine = catalog.context(preset.name()).expect("registered");
        let engine = &*engine;

        let max_count = engine.default_max_count(class, 1);
        let nn = engine.specialized_for(&[(class, max_count)]).expect("train");

        // Held-out day error estimate.
        let heldout = engine.labeled().heldout();
        let est = nn
            .estimate_fcount_error(
                engine.labeled().heldout_video(),
                &heldout.frames,
                &heldout.class_counts(class),
                class,
                50,
                1,
            )
            .expect("estimate");

        // Test-day rewrite vs detector ground truth.
        let rewrite = blazeit_core::aggregate::rewrite_fcount(engine, &nn, class).expect("rewrite");
        let (truth, _) = baselines::oracle_fcount(engine, Some(class));

        // Does the per-frame prediction vary at all, and does it correlate with truth?
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for f in (0..engine.video().len()).step_by(17) {
            preds.push(nn.expected_count(&engine.video(), f, class).unwrap());
            truths.push(engine.video().ground_truth_count(f, class).unwrap() as f64);
        }
        let pstd = std(&preds);
        let corr = blazeit_core::stats::correlation(&preds, &truths);
        // Training-day correlation: distinguishes underfitting from day-to-day shift.
        let mut tr_preds = Vec::new();
        let mut tr_truths = Vec::new();
        for f in (0..engine.labeled().train_video().len()).step_by(17) {
            tr_preds.push(nn.expected_count(engine.labeled().train_video(), f, class).unwrap());
            tr_truths
                .push(engine.labeled().train_video().ground_truth_count(f, class).unwrap() as f64);
        }
        let tr_corr = blazeit_core::stats::correlation(&tr_preds, &tr_truths);

        // Train-day means for reference.
        let train_mean = mean(&engine.labeled().train().class_counts(class));
        let _heldout_mean = mean(&heldout.class_counts(class));

        println!(
            "{:<14} class={:<5} K={} | train_mean={:.3} heldout: pred={:.3} true={:.3} err={:.3} | test: pred={:.3} true={:.3} err={:.3} | pred_std={:.3} corr={:.3} train_corr={:.3}",
            preset.name(),
            class.name(),
            max_count,
            train_mean,
            est.mean_predicted,
            est.mean_true,
            est.abs_error,
            rewrite,
            truth,
            (rewrite - truth).abs(),
            pstd,
            corr,
            tr_corr
        );
    }
    let _ = ObjectClass::Car;
}

fn mean(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<usize>() as f64 / values.len() as f64
}

fn std(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}
