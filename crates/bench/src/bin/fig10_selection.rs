//! Figure 10: content-based selection runtime (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Figure 10: content-based selection runtime ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::fig10(scale));
}
