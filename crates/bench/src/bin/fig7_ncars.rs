//! Figure 7: sample complexity vs number of cars (see EXPERIMENTS.md). Scale via BLAZEIT_FRAMES / BLAZEIT_RUNS.

use blazeit_bench::{experiments, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Figure 7: sample complexity vs number of cars ==");
    println!("scale: {} frames/day, {} runs\n", scale.frames_per_day, scale.runs);
    println!("{}", experiments::fig7(scale));
}
