//! One function per table / figure of the paper's evaluation (Section 10).
//!
//! Every function returns a formatted, human-readable report whose rows correspond to
//! the rows / series of the original table or figure. Runtimes are simulated GPU
//! seconds from the shared cost model (decode excluded), exactly the accounting the
//! paper uses; "samples" are object-detection invocations.

use crate::{catalog_for, context_of, ExperimentScale, AGGREGATION_PRESETS, ALL_PRESETS};
use blazeit_core::aggregate::{
    control_variate_fcount_with_scores, naive_aqp_fcount, specialized_scores, SamplingOptions,
};
use blazeit_core::baselines;
use blazeit_core::metrics::{format_speedup_table, RuntimeReport};
use blazeit_core::scrub::{
    blazeit_scrub, score_frames, specialized_for_requirements, verify_ranked, ScrubOptions,
};
use blazeit_core::select::{
    execute_with_options, ground_truth_tracks, red_bus_query, SelectionOptions,
};
use blazeit_core::VideoContext;
use blazeit_detect::clock::CostBreakdown;
use blazeit_frameql::parse_query;
use blazeit_frameql::query::analyze;
use blazeit_videostore::stats::VideoStats;
use blazeit_videostore::{DatasetPreset, ObjectClass};
use std::fmt::Write as _;

fn cost_since(ctx: &VideoContext, before: &CostBreakdown) -> CostBreakdown {
    ctx.clock().breakdown().since(before)
}

/// The red-bus selection query used for Figures 10 and 11, with thresholds adapted to
/// the synthetic streams (the structure matches Figure 3c of the paper exactly).
pub fn selection_query(video: &str) -> String {
    red_bus_query(video, 10.0, 20_000.0, 15)
}

// ---------------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------------

/// Table 3: dataset characteristics of the six synthetic streams (test day).
pub fn table3(scale: ExperimentScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<6} {:>9} {:>12} {:>10} {:>7} {:>10} {:>9}",
        "video", "object", "occupancy", "avg dur (s)", "distinct", "fps", "frames", "hours"
    );
    for preset in ALL_PRESETS {
        let video = preset
            .generate_with_frames(blazeit_videostore::DAY_TEST, scale.frames_per_day)
            .expect("video generation");
        let stats =
            VideoStats::compute_classes(&video, &[preset.primary_class(), ObjectClass::Bus]);
        let mut classes: Vec<ObjectClass> = vec![preset.primary_class()];
        if preset == DatasetPreset::Taipei {
            classes.push(ObjectClass::Bus);
        }
        for class in classes {
            if let Some(cs) = stats.class(class) {
                let _ = writeln!(
                    out,
                    "{:<14} {:<6} {:>8.1}% {:>12.2} {:>10} {:>7.0} {:>10} {:>9.2}",
                    preset.name(),
                    class.name(),
                    cs.occupancy * 100.0,
                    cs.avg_duration_secs,
                    cs.distinct_count,
                    video.fps(),
                    video.len(),
                    stats.length_hours,
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------------
// Figure 4 + Table 4
// ---------------------------------------------------------------------------------

/// One video's row of the Figure 4 aggregate-runtime comparison.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Video name.
    pub video: String,
    /// Per-method runtime reports (naive, noscope, aqp, blazeit, blazeit-no-train).
    pub reports: Vec<RuntimeReport>,
    /// The BlazeIt estimate's absolute error versus the detector ground truth.
    pub blazeit_error: f64,
    /// How BlazeIt answered (query rewriting vs control variates).
    pub method: String,
}

/// Figure 4: end-to-end runtime of aggregate queries (error 0.1, confidence 95%).
pub fn fig4(scale: ExperimentScale) -> (Vec<Fig4Row>, String) {
    let mut rows = Vec::new();
    for preset in AGGREGATION_PRESETS {
        let catalog = catalog_for(preset, scale);
        let engine = context_of(&catalog, preset);
        let engine = &*engine;
        let class = preset.primary_class();
        let (truth, _) = baselines::oracle_fcount(engine, Some(class));

        // Naive.
        let before = engine.clock().breakdown();
        let (_, naive_calls) = baselines::naive_fcount(engine, Some(class)).expect("naive");
        let naive = RuntimeReport::from_cost("naive", cost_since(engine, &before), naive_calls);

        // NoScope oracle.
        let before = engine.clock().breakdown();
        let (_, ns_calls) = baselines::noscope_fcount(engine, class).expect("noscope");
        let noscope =
            RuntimeReport::from_cost("noscope (oracle)", cost_since(engine, &before), ns_calls);

        // Naive AQP.
        let before = engine.clock().breakdown();
        let aqp_outcome = naive_aqp_fcount(
            engine,
            Some(class),
            SamplingOptions::new(0.1, 0.95, engine.config().sampling_seed),
        )
        .expect("aqp");
        let aqp = RuntimeReport::from_cost(
            "aqp (naive)",
            cost_since(engine, &before),
            aqp_outcome.samples,
        );

        // BlazeIt (Algorithm 1), including training time.
        let sql = format!(
            "SELECT FCOUNT(*) FROM {} WHERE class = '{}' ERROR WITHIN 0.1 AT CONFIDENCE 95%",
            preset.name().replace('-', "_"),
            class.name()
        );
        let result = catalog.session().query(&sql).expect("blazeit aggregate");
        let blazeit_value = result.output.aggregate_value().unwrap_or(0.0);
        let method = match &result.output {
            blazeit_core::QueryOutput::Aggregate { method, .. } => format!("{method:?}"),
            _ => "unknown".into(),
        };
        let blazeit =
            RuntimeReport::from_cost("blazeit", result.cost, result.output.detection_calls());
        let mut no_train = blazeit.clone();
        no_train.name = "blazeit (no train)".into();
        no_train.runtime_secs = blazeit.runtime_excluding_training();

        rows.push(Fig4Row {
            video: preset.name().to_string(),
            reports: vec![naive, noscope, aqp, blazeit, no_train],
            blazeit_error: (blazeit_value - truth).abs(),
            method,
        });
    }

    let mut out = String::new();
    for row in &rows {
        let _ = writeln!(
            out,
            "--- {} (BlazeIt plan: {}, |error| = {:.3}) ---",
            row.video, row.method, row.blazeit_error
        );
        out.push_str(&format_speedup_table(&row.reports));
        out.push('\n');
    }
    (rows, out)
}

/// Table 4: absolute error of specialized-NN query rewriting on the unseen day,
/// averaged over `scale.runs` independently-seeded trainings.
pub fn table4(scale: ExperimentScale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} {:>12} {:>8}", "video", "avg |error|", "runs");
    for preset in AGGREGATION_PRESETS {
        let class = preset.primary_class();
        let mut errors = Vec::new();
        for run in 0..scale.runs {
            let config =
                blazeit_core::BlazeItConfig::for_preset(preset).with_seed(0xB1A2_E175 + run * 7919);
            let catalog = crate::catalog_with_config(preset, scale, config);
            let engine = context_of(&catalog, preset);
            let engine = &*engine;
            let nn = engine
                .specialized_for(&[(class, engine.default_max_count(class, 1))])
                .expect("train specialized NN");
            let value =
                blazeit_core::aggregate::rewrite_fcount(engine, &nn, class).expect("rewrite");
            let (truth, _) = baselines::oracle_fcount(engine, Some(class));
            errors.push((value - truth).abs());
        }
        let avg = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        let _ = writeln!(out, "{:<14} {:>12.3} {:>8}", preset.name(), avg, errors.len());
    }
    out
}

/// Table 5: specialized NNs do not just learn the average — predicted vs actual counts
/// on two different days of video.
pub fn table5(scale: ExperimentScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "video", "pred (day 1)", "actual (day1)", "pred (day 2)", "actual (day2)"
    );
    for preset in [
        DatasetPreset::Taipei,
        DatasetPreset::NightStreet,
        DatasetPreset::Rialto,
        DatasetPreset::GrandCanal,
    ] {
        let catalog = catalog_for(preset, scale);
        let engine = context_of(&catalog, preset);
        let engine = &*engine;
        let class = preset.primary_class();
        let nn = engine
            .specialized_for(&[(class, engine.default_max_count(class, 1))])
            .expect("train specialized NN");

        // Day 1 = held-out day, Day 2 = test day (two genuinely different days).
        let heldout = engine.labeled().heldout();
        let heldout_video = engine.labeled().heldout_video();
        let mut pred1 = 0.0;
        for &f in &heldout.frames {
            pred1 += nn.expected_count(heldout_video, f, class).expect("score");
        }
        pred1 /= heldout.frames.len().max(1) as f64;
        let actual1 = heldout.class_counts(class).iter().sum::<usize>() as f64
            / heldout.frames.len().max(1) as f64;

        let pred2 = blazeit_core::aggregate::rewrite_fcount(engine, &nn, class).expect("rewrite");
        let (actual2, _) = baselines::oracle_fcount(engine, Some(class));

        let _ = writeln!(
            out,
            "{:<14} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            preset.name(),
            pred1,
            actual1,
            pred2,
            actual2
        );
    }
    out
}

// ---------------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------------

/// The error targets swept in Figure 5.
pub const FIG5_ERRORS: [f64; 6] = [0.01, 0.02, 0.03, 0.04, 0.05, 0.1];

/// Figure 5: sample complexity (detector calls) of naive AQP vs control variates.
pub fn fig5(scale: ExperimentScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>14} {:>16} {:>10}",
        "video", "error", "naive samples", "control variate", "reduction"
    );
    for preset in ALL_PRESETS {
        let catalog = catalog_for(preset, scale);
        let engine = context_of(&catalog, preset);
        let engine = &*engine;
        let class = preset.primary_class();
        let nn = engine
            .specialized_for(&[(class, engine.default_max_count(class, 1))])
            .expect("train specialized NN");
        let scores = specialized_scores(engine, &nn, class).expect("scores");
        for &error in &FIG5_ERRORS {
            let mut naive_total = 0u64;
            let mut cv_total = 0u64;
            for run in 0..scale.runs {
                let seed = engine.config().sampling_seed + run * 104_729;
                let naive =
                    naive_aqp_fcount(engine, Some(class), SamplingOptions::new(error, 0.95, seed))
                        .expect("naive aqp");
                let cv = control_variate_fcount_with_scores(
                    engine,
                    &scores,
                    class,
                    SamplingOptions::new(error, 0.95, seed),
                )
                .expect("control variates");
                naive_total += naive.samples;
                cv_total += cv.samples;
            }
            let naive_avg = naive_total as f64 / scale.runs.max(1) as f64;
            let cv_avg = cv_total as f64 / scale.runs.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<14} {:>8.2} {:>14.0} {:>16.0} {:>9.2}x",
                preset.name(),
                error,
                naive_avg,
                cv_avg,
                naive_avg / cv_avg.max(1.0)
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------------
// Table 6 + Figures 6-9 (scrubbing)
// ---------------------------------------------------------------------------------

/// The scrubbing query chosen for one video: "at least N of the primary class", where N
/// is the largest threshold with at least `min_instances` event frames on the test day
/// (the paper's own selection rule for Table 6).
#[derive(Debug, Clone, Copy)]
pub struct ScrubQuerySpec {
    /// The dataset.
    pub preset: DatasetPreset,
    /// The object class.
    pub class: ObjectClass,
    /// The count threshold N.
    pub threshold: usize,
    /// Number of frames on the test day satisfying the predicate.
    pub instances: u64,
}

/// Chooses the Table 6 scrubbing query for each video.
pub fn table6_specs(scale: ExperimentScale) -> Vec<ScrubQuerySpec> {
    ALL_PRESETS
        .iter()
        .map(|&preset| {
            let catalog = catalog_for(preset, scale);
            let engine = context_of(&catalog, preset);
            let engine = &*engine;
            let class = preset.primary_class();
            let counts = baselines::oracle_counts(engine, &engine.video());
            let max = counts.iter().map(|c| c.get(class)).max().unwrap_or(0);
            let instances_of =
                |n: usize| counts.iter().filter(|c| c.get(class) >= n).count() as u64;
            let mut threshold = 1;
            for n in (1..=max.max(1)).rev() {
                if instances_of(n) >= 20 {
                    threshold = n;
                    break;
                }
            }
            ScrubQuerySpec { preset, class, threshold, instances: instances_of(threshold) }
        })
        .collect()
}

/// Table 6: the scrubbing query details (object, threshold N, number of instances).
pub fn table6(scale: ExperimentScale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} {:<7} {:>8} {:>10}", "video", "object", "N", "instances");
    for spec in table6_specs(scale) {
        let _ = writeln!(
            out,
            "{:<14} {:<7} {:>8} {:>10}",
            spec.preset.name(),
            spec.class.name(),
            spec.threshold,
            spec.instances
        );
    }
    out
}

/// Runs the four scrubbing variants of Figure 6 for one requirement set and returns the
/// runtime reports (naive, noscope, blazeit, blazeit-indexed).
pub fn scrub_variants(
    ctx: &VideoContext,
    requirements: &[(ObjectClass, usize)],
    opts: ScrubOptions,
) -> Vec<RuntimeReport> {
    // Naive sequential scan.
    let before = ctx.clock().breakdown();
    let (_, naive_calls) =
        baselines::naive_scrub(ctx, requirements, opts.limit, opts.gap).expect("naive scrub");
    let naive = RuntimeReport::from_cost("naive", cost_since(ctx, &before), naive_calls);

    // NoScope oracle.
    let before = ctx.clock().breakdown();
    let (_, ns_calls) =
        baselines::noscope_scrub(ctx, requirements, opts.limit, opts.gap).expect("noscope scrub");
    let noscope = RuntimeReport::from_cost("noscope (oracle)", cost_since(ctx, &before), ns_calls);

    // BlazeIt: training + scoring + verification.
    let before = ctx.clock().breakdown();
    let nn = specialized_for_requirements(ctx, requirements).expect("specialized NN");
    let ranked = score_frames(ctx, &nn, requirements).expect("scoring");
    let after_scoring = ctx.clock().breakdown();
    let outcome = verify_ranked(ctx, &ranked, requirements, opts);
    let total = cost_since(ctx, &before);
    let verification_only = ctx.clock().breakdown().since(&after_scoring);
    let blazeit = RuntimeReport::from_cost("blazeit", total, outcome.detection_calls);
    // Indexed: the specialized NN was trained and run ahead of time (e.g. by a previous
    // aggregate query), so only detector verification is charged.
    let indexed =
        RuntimeReport::from_cost("blazeit (indexed)", verification_only, outcome.detection_calls);
    vec![naive, noscope, blazeit, indexed]
}

/// Figure 6: end-to-end scrubbing runtime on each video's Table 6 query (LIMIT 10).
pub fn fig6(scale: ExperimentScale) -> String {
    let mut out = String::new();
    for spec in table6_specs(scale) {
        let catalog = catalog_for(spec.preset, scale);
        let engine = context_of(&catalog, spec.preset);
        let engine = &*engine;
        let requirements = [(spec.class, spec.threshold)];
        let reports = scrub_variants(engine, &requirements, ScrubOptions { limit: 10, gap: 300 });
        let _ = writeln!(
            out,
            "--- {} (>= {} {}, {} instances) ---",
            spec.preset.name(),
            spec.threshold,
            spec.class.name(),
            spec.instances
        );
        out.push_str(&format_speedup_table(&reports));
        out.push('\n');
    }
    out
}

/// Figure 7: sample complexity (detector calls) when searching for at least N cars in
/// taipei, N = 1..=6, LIMIT 10.
pub fn fig7(scale: ExperimentScale) -> String {
    let catalog = catalog_for(DatasetPreset::Taipei, scale);
    let engine = context_of(&catalog, DatasetPreset::Taipei);
    let engine = &*engine;
    let opts = ScrubOptions { limit: 10, gap: 300 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} {:>14} {:>16} {:>14} {:>10}",
        "N cars", "naive samples", "noscope samples", "blazeit", "instances"
    );
    let counts = baselines::oracle_counts(engine, &engine.video());
    for n in 1..=6usize {
        let requirements = [(ObjectClass::Car, n)];
        let instances = counts.iter().filter(|c| c.get(ObjectClass::Car) >= n).count();
        let (_, naive_calls) =
            baselines::naive_scrub(engine, &requirements, opts.limit, opts.gap).expect("naive");
        let (_, ns_calls) =
            baselines::noscope_scrub(engine, &requirements, opts.limit, opts.gap).expect("noscope");
        let nn = specialized_for_requirements(engine, &requirements).expect("specialized NN");
        let outcome = blazeit_scrub(engine, &nn, &requirements, opts).expect("blazeit scrub");
        let _ = writeln!(
            out,
            "{:>7} {:>14} {:>16} {:>14} {:>10}",
            n, naive_calls, ns_calls, outcome.detection_calls, instances
        );
    }
    out
}

/// The multi-class scrubbing requirement used for Figures 8 and 9: at least one bus and
/// at least N cars in taipei, with N chosen so the conjunction has at least
/// `min_instances` event frames (the paper's query uses N = 5 on its much longer days).
pub fn multiclass_requirements(
    ctx: &VideoContext,
    min_instances: usize,
) -> (Vec<(ObjectClass, usize)>, u64) {
    let counts = baselines::oracle_counts(ctx, &ctx.video());
    let instances_of = |n: usize| {
        counts
            .iter()
            .filter(|c| c.get(ObjectClass::Bus) >= 1 && c.get(ObjectClass::Car) >= n)
            .count() as u64
    };
    let mut chosen = 1usize;
    for n in (1..=5usize).rev() {
        if instances_of(n) >= min_instances as u64 {
            chosen = n;
            break;
        }
    }
    (vec![(ObjectClass::Bus, 1), (ObjectClass::Car, chosen)], instances_of(chosen))
}

/// Figure 8: end-to-end runtime for the multi-class scrubbing query on taipei.
pub fn fig8(scale: ExperimentScale) -> String {
    let catalog = catalog_for(DatasetPreset::Taipei, scale);
    let engine = context_of(&catalog, DatasetPreset::Taipei);
    let engine = &*engine;
    let (requirements, instances) = multiclass_requirements(engine, 15);
    let reports = scrub_variants(engine, &requirements, ScrubOptions { limit: 10, gap: 300 });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "multi-class query on taipei: >=1 bus AND >={} cars ({} instances)",
        requirements[1].1, instances
    );
    out.push_str(&format_speedup_table(&reports));
    out
}

/// Figure 9: sample complexity as a function of the LIMIT for the multi-class query.
pub fn fig9(scale: ExperimentScale) -> String {
    let catalog = catalog_for(DatasetPreset::Taipei, scale);
    let engine = context_of(&catalog, DatasetPreset::Taipei);
    let engine = &*engine;
    let (requirements, _) = multiclass_requirements(engine, 15);
    let nn = specialized_for_requirements(engine, &requirements).expect("specialized NN");
    let ranked = score_frames(engine, &nn, &requirements).expect("scoring");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>16} {:>14}",
        "limit", "naive samples", "noscope samples", "blazeit"
    );
    for limit in [1u64, 5, 10, 15, 20, 25, 30] {
        let opts = ScrubOptions { limit, gap: 300 };
        let (_, naive_calls) =
            baselines::naive_scrub(engine, &requirements, limit, opts.gap).expect("naive");
        let (_, ns_calls) =
            baselines::noscope_scrub(engine, &requirements, limit, opts.gap).expect("noscope");
        let outcome = verify_ranked(engine, &ranked, &requirements, opts);
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>16} {:>14}",
            limit, naive_calls, ns_calls, outcome.detection_calls
        );
    }
    out
}

// ---------------------------------------------------------------------------------
// Figures 10 and 11 (content-based selection)
// ---------------------------------------------------------------------------------

/// Figure 10: end-to-end runtime of the red-bus content-based selection query.
pub fn fig10(scale: ExperimentScale) -> String {
    let catalog = catalog_for(DatasetPreset::Taipei, scale);
    let engine = context_of(&catalog, DatasetPreset::Taipei);
    let engine = &*engine;
    let sql = selection_query("taipei");
    let query = parse_query(&sql).expect("parse");
    let info = analyze(&query, &engine.udfs()).expect("analyze");

    // Naive: detection on every frame (the unfiltered plan).
    let before = engine.clock().breakdown();
    let naive_outcome =
        execute_with_options(engine, &query, &info, &SelectionOptions::none()).expect("naive");
    let naive = RuntimeReport::from_cost(
        "naive",
        cost_since(engine, &before),
        naive_outcome.detection_calls,
    );

    // NoScope oracle: detection on frames with any bus present.
    let before = engine.clock().breakdown();
    let (_, ns_calls) =
        baselines::noscope_selection_scan(engine, ObjectClass::Bus).expect("noscope");
    let noscope =
        RuntimeReport::from_cost("noscope (oracle)", cost_since(engine, &before), ns_calls);

    // BlazeIt with all inferred filters.
    let before = engine.clock().breakdown();
    let blazeit_outcome =
        execute_with_options(engine, &query, &info, &SelectionOptions::all()).expect("blazeit");
    let blazeit = RuntimeReport::from_cost(
        "blazeit",
        cost_since(engine, &before),
        blazeit_outcome.detection_calls,
    );

    // False-negative rate at the (ground-truth) track level versus the naive result
    // set. Tracker ids are scan-local, so result sets are compared through the scene's
    // ground-truth track identities.
    let naive_tracks = ground_truth_tracks(engine, &naive_outcome.rows);
    let blazeit_tracks = ground_truth_tracks(engine, &blazeit_outcome.rows);
    let found = naive_tracks.iter().filter(|t| blazeit_tracks.contains(t)).count();
    let fnr =
        if naive_tracks.is_empty() { 0.0 } else { 1.0 - found as f64 / naive_tracks.len() as f64 };

    let mut out = String::new();
    let _ = writeln!(out, "query: {sql}");
    out.push_str(&format_speedup_table(&[naive, noscope, blazeit]));
    let _ = writeln!(
        out,
        "blazeit false-negative rate vs naive (tracks): {:.3} ({} of {} tracks found)",
        fnr,
        found,
        naive_tracks.len()
    );
    out
}

/// Figure 11: factor analysis (adding filters one at a time) and lesion study (removing
/// each filter from the full plan) for the red-bus query.
pub fn fig11(scale: ExperimentScale) -> String {
    let catalog = catalog_for(DatasetPreset::Taipei, scale);
    let engine = context_of(&catalog, DatasetPreset::Taipei);
    let engine = &*engine;
    let sql = selection_query("taipei");
    let query = parse_query(&sql).expect("parse");
    let info = analyze(&query, &engine.udfs()).expect("analyze");
    let video_frames = engine.video().len() as f64;

    let run = |opts: &SelectionOptions| -> (f64, u64) {
        let before = engine.clock().breakdown();
        let outcome = execute_with_options(engine, &query, &info, opts).expect("selection");
        let cost = cost_since(engine, &before);
        (cost.total() - cost.decode, outcome.detection_calls)
    };

    let configs_factor: Vec<(&str, SelectionOptions)> = vec![
        ("naive", SelectionOptions::none()),
        ("+spatial", SelectionOptions { use_spatial_filter: true, ..SelectionOptions::none() }),
        (
            "+temporal",
            SelectionOptions {
                use_spatial_filter: true,
                use_temporal_filter: true,
                ..SelectionOptions::none()
            },
        ),
        (
            "+content",
            SelectionOptions {
                use_spatial_filter: true,
                use_temporal_filter: true,
                use_content_filter: true,
                ..SelectionOptions::none()
            },
        ),
        ("+label", SelectionOptions::all()),
    ];
    let configs_lesion: Vec<(&str, SelectionOptions)> = vec![
        ("combined", SelectionOptions::all()),
        ("-spatial", SelectionOptions { use_spatial_filter: false, ..SelectionOptions::all() }),
        ("-temporal", SelectionOptions { use_temporal_filter: false, ..SelectionOptions::all() }),
        ("-content", SelectionOptions { use_content_filter: false, ..SelectionOptions::all() }),
        ("-label", SelectionOptions { use_label_filter: false, ..SelectionOptions::all() }),
    ];

    let mut out = String::new();
    let mut naive_runtime = None;
    let _ = writeln!(out, "factor analysis (filters added one at a time):");
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>16} {:>10}",
        "config", "runtime (s)", "det. calls", "throughput (fps)", "speedup"
    );
    for (name, opts) in &configs_factor {
        let (runtime, calls) = run(opts);
        if naive_runtime.is_none() {
            naive_runtime = Some(runtime);
        }
        let speedup = naive_runtime.unwrap() / runtime.max(1e-9);
        let _ = writeln!(
            out,
            "{:<12} {:>14.1} {:>14} {:>16.1} {:>9.1}x",
            name,
            runtime,
            calls,
            video_frames / runtime.max(1e-9),
            speedup
        );
    }
    let _ = writeln!(out, "\nlesion study (filters removed one at a time from the full plan):");
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>16} {:>10}",
        "config", "runtime (s)", "det. calls", "throughput (fps)", "speedup"
    );
    for (name, opts) in &configs_lesion {
        let (runtime, calls) = run(opts);
        let speedup = naive_runtime.unwrap_or(runtime) / runtime.max(1e-9);
        let _ = writeln!(
            out,
            "{:<12} {:>14.1} {:>14} {:>16.1} {:>9.1}x",
            name,
            runtime,
            calls,
            video_frames / runtime.max(1e-9),
            speedup
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale { frames_per_day: 1_200, runs: 1 }
    }

    #[test]
    fn table3_lists_every_video() {
        let report = table3(tiny());
        for preset in ALL_PRESETS {
            assert!(report.contains(preset.name()), "missing {}", preset.name());
        }
    }

    #[test]
    fn table6_specs_have_enough_instances() {
        for spec in table6_specs(tiny()) {
            assert!(spec.threshold >= 1);
            // Either the chosen threshold has >= 20 instances or the class is so rare
            // that even N=1 falls short (acceptable for the tiny smoke scale).
            if spec.threshold > 1 {
                assert!(spec.instances >= 20);
            }
        }
    }

    #[test]
    fn fig7_and_fig9_headers_present() {
        let scale = tiny();
        let f7 = fig7(scale);
        assert!(f7.contains("N cars"));
        assert_eq!(f7.lines().count(), 7);
        let f9 = fig9(scale);
        assert!(f9.contains("limit"));
        assert_eq!(f9.lines().count(), 8);
    }

    #[test]
    fn fig10_reports_three_methods() {
        let report = fig10(tiny());
        assert!(report.contains("naive"));
        assert!(report.contains("noscope"));
        assert!(report.contains("blazeit"));
        assert!(report.contains("false-negative"));
    }
}
