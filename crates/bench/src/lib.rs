//! # blazeit-bench
//!
//! Experiment harnesses reproducing every table and figure of the BlazeIt paper's
//! evaluation (Section 10) against the synthetic substrate.
//!
//! Each experiment is a function in [`experiments`] returning a structured result and a
//! formatted table; one thin binary per table/figure (`table3_datasets`,
//! `fig4_aggregates`, ...) prints it, and the Criterion bench `experiments` runs
//! scaled-down versions of the same functions so `cargo bench` exercises every
//! harness end to end.
//!
//! Scale is controlled by [`ExperimentScale`]: the default is a 10-simulated-minute day
//! per stream (small enough for a laptop, large enough for every relative comparison);
//! set `BLAZEIT_FRAMES` (frames per day) and `BLAZEIT_RUNS` (sampling repetitions) to
//! run closer to paper scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;

use std::sync::Arc;

use blazeit_core::{BlazeItConfig, Catalog, VideoContext};
use blazeit_videostore::DatasetPreset;

/// How large to make each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Frames per synthetic day (train, held-out and test days are all this long).
    pub frames_per_day: u64,
    /// Number of repetitions for sampling-based experiments.
    pub runs: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale { frames_per_day: 18_000, runs: 3 }
    }
}

impl ExperimentScale {
    /// Reads the scale from `BLAZEIT_FRAMES` / `BLAZEIT_RUNS`, falling back to defaults.
    pub fn from_env() -> ExperimentScale {
        let default = ExperimentScale::default();
        let frames_per_day = std::env::var("BLAZEIT_FRAMES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default.frames_per_day);
        let runs =
            std::env::var("BLAZEIT_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(default.runs);
        ExperimentScale { frames_per_day, runs }
    }

    /// A small scale for smoke tests and `cargo bench`.
    pub fn smoke() -> ExperimentScale {
        ExperimentScale { frames_per_day: 3_000, runs: 1 }
    }
}

/// Builds a one-video catalog for a preset at the given scale (three days generated,
/// labeled set built offline, test day registered). Query it through
/// [`Catalog::session`]; reach the per-video caches through [`context_of`].
pub fn catalog_for(preset: DatasetPreset, scale: ExperimentScale) -> Catalog {
    let catalog = Catalog::new();
    catalog.register_preset(preset, scale.frames_per_day).expect("catalog registration");
    catalog
}

/// Builds a one-video catalog with an explicit configuration.
pub fn catalog_with_config(
    preset: DatasetPreset,
    scale: ExperimentScale,
    config: BlazeItConfig,
) -> Catalog {
    let catalog = Catalog::new();
    catalog
        .register_preset_with_config(preset, scale.frames_per_day, config)
        .expect("catalog registration");
    catalog
}

/// The registered context of a preset inside `catalog`.
pub fn context_of(catalog: &Catalog, preset: DatasetPreset) -> Arc<VideoContext> {
    catalog.context(preset.name()).expect("preset is registered in this catalog")
}

/// The five videos used for the aggregation experiments (Figure 4 / Table 4); the paper
/// excludes archie because its specialized NN cannot hit the error target there either.
pub const AGGREGATION_PRESETS: [DatasetPreset; 5] = [
    DatasetPreset::Taipei,
    DatasetPreset::NightStreet,
    DatasetPreset::Rialto,
    DatasetPreset::GrandCanal,
    DatasetPreset::Amsterdam,
];

/// All six videos (Table 3 / Figures 5 and 6).
pub const ALL_PRESETS: [DatasetPreset; 6] = DatasetPreset::ALL;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing_defaults() {
        let s = ExperimentScale::default();
        assert_eq!(s.frames_per_day, 18_000);
        assert!(ExperimentScale::smoke().frames_per_day < s.frames_per_day);
    }

    #[test]
    fn catalog_for_builds() {
        let catalog = catalog_for(
            DatasetPreset::NightStreet,
            ExperimentScale { frames_per_day: 600, runs: 1 },
        );
        assert_eq!(context_of(&catalog, DatasetPreset::NightStreet).video().len(), 600);
    }
}
