//! Incremental streaming ingestion vs cold re-scoring.
//!
//! For each stream length, the stream is ingested in 8 appends. Three costs are
//! compared:
//!
//! * **incremental** — what the streaming subsystem actually does: score the
//!   initial prefix once, then score only the newly appended frames at each
//!   ingest (the cached index grows in place).
//! * **cold once** — scoring the full-length video in one batched pass (the
//!   lower bound any indexer pays at least once).
//! * **naive re-score** — what a system without incremental indexes would do:
//!   re-score the whole grown prefix from scratch at every append (the cost the
//!   streaming subsystem eliminates; grows quadratically in the append count).
//!
//! Wall-clock and simulated specialized-inference seconds for every mode land
//! in `BENCH_stream.json` at the workspace root. The incremental path also
//! asserts its index is bit-identical to the cold pass — a benchmark comparing
//! diverging outputs would be meaningless.

use blazeit_core::stream::DriftConfig;
use blazeit_core::Catalog;
use blazeit_videostore::{DatasetPreset, ObjectClass};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

const APPENDS: u64 = 8;

fn bench_sizes() -> Vec<u64> {
    match std::env::var("BLAZEIT_BENCH_STREAM_FRAMES") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![1_000, 4_000, 16_000],
    }
}

struct Row {
    frames: u64,
    incremental_secs: f64,
    cold_once_secs: f64,
    naive_rescore_secs: f64,
    incremental_sim_secs: f64,
    naive_sim_secs: f64,
}

fn measure(frames: u64) -> Row {
    let preset = DatasetPreset::Taipei;
    let chunk = frames / APPENDS;
    let heads = |ctx: &blazeit_core::VideoContext| {
        vec![(ObjectClass::Car, ctx.default_max_count(ObjectClass::Car, 1))]
    };

    // Incremental: initial chunk scored at subscribe time, then 7 appends of
    // `chunk` frames each — every frame is scored exactly once.
    let catalog = Catalog::new();
    catalog
        .register_stream_preset(preset, frames, chunk, DriftConfig::disabled())
        .expect("register stream");
    let ctx = catalog.context(preset.name()).unwrap();
    let nn = ctx.specialized_for(&heads(&ctx)).unwrap();
    let stream = catalog.stream(preset.name()).unwrap();
    let sim_before = catalog.clock().breakdown().specialized;
    let started = Instant::now();
    let _ = ctx.score_index(&nn).unwrap();
    while !stream.is_exhausted() {
        stream.advance(chunk).unwrap();
    }
    let incremental_secs = started.elapsed().as_secs_f64();
    let incremental_sim_secs = catalog.clock().breakdown().specialized - sim_before;
    let incremental_index = ctx.score_index(&nn).unwrap();

    // Cold once: one batched pass over the full-length video with the same
    // (deterministically identical) network.
    let cold = Catalog::new();
    cold.register_preset(preset, frames).expect("register cold");
    let cold_ctx = cold.context(preset.name()).unwrap();
    let cold_nn = cold_ctx.specialized_for(&heads(&cold_ctx)).unwrap();
    assert_eq!(nn.weights_fingerprint(), cold_nn.weights_fingerprint());
    let started = Instant::now();
    let cold_index = cold_ctx.score_index(&cold_nn).unwrap();
    let cold_once_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        incremental_index.probs(),
        cold_index.probs(),
        "incremental index must be bit-identical to the cold pass"
    );

    // Naive re-score: the whole grown prefix from scratch at every append
    // boundary (what repeated cold queries over a growing video would pay).
    let capacity = cold_ctx.video();
    let sim_before = cold.clock().breakdown().specialized;
    let started = Instant::now();
    for boundary in 1..=APPENDS {
        let prefix = capacity.prefix(boundary * chunk).unwrap();
        black_box(cold_nn.score_video(&prefix).unwrap());
    }
    let naive_rescore_secs = started.elapsed().as_secs_f64();
    let naive_sim_secs = cold.clock().breakdown().specialized - sim_before;

    Row {
        frames,
        incremental_secs,
        cold_once_secs,
        naive_rescore_secs,
        incremental_sim_secs,
        naive_sim_secs,
    }
}

fn bench_stream_ingest(c: &mut Criterion) {
    let mut rows = Vec::new();
    for frames in bench_sizes() {
        let row = measure(frames);
        println!(
            "stream_ingest {frames:>6} frames: incremental {:.3}s | cold-once {:.3}s | \
             naive re-score {:.3}s ({:.1}x saved; sim {:.1}s vs {:.1}s)",
            row.incremental_secs,
            row.cold_once_secs,
            row.naive_rescore_secs,
            row.naive_rescore_secs / row.incremental_secs.max(1e-9),
            row.incremental_sim_secs,
            row.naive_sim_secs,
        );
        rows.push(row);
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"dataset\": \"taipei\",\n    \"frames\": {},\n    \
                 \"appends\": {APPENDS},\n    \"incremental_secs\": {:.6},\n    \
                 \"cold_once_secs\": {:.6},\n    \"naive_rescore_secs\": {:.6},\n    \
                 \"speedup_vs_naive\": {:.2},\n    \
                 \"incremental_sim_specialized_secs\": {:.6},\n    \
                 \"naive_sim_specialized_secs\": {:.6}\n  }}",
                r.frames,
                r.incremental_secs,
                r.cold_once_secs,
                r.naive_rescore_secs,
                r.naive_rescore_secs / r.incremental_secs.max(1e-9),
                r.incremental_sim_secs,
                r.naive_sim_secs,
            )
        })
        .collect();
    let report = format!("[\n{}\n]\n", entries.join(",\n"));
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_stream.json");
    std::fs::write(&out_path, report).expect("write BENCH_stream.json");
    println!("wrote {}", out_path.display());

    // Steady-state cost of one append on a warm stream, for the criterion
    // report: 256 fresh frames scored and appended per iteration.
    let catalog = Catalog::new();
    catalog
        .register_stream_preset(DatasetPreset::Taipei, 120_000, 256, DriftConfig::disabled())
        .expect("register steady-state stream");
    let ctx = catalog.context("taipei").unwrap();
    let nn = ctx
        .specialized_for(&[(ObjectClass::Car, ctx.default_max_count(ObjectClass::Car, 1))])
        .unwrap();
    let _ = ctx.score_index(&nn).unwrap();
    let stream = catalog.stream("taipei").unwrap();
    c.bench_function("stream_append_256_frames", |b| {
        b.iter(|| {
            assert!(!stream.is_exhausted(), "raise the steady-state capacity");
            black_box(stream.advance(256).unwrap());
        })
    });
}

criterion_group!(benches, bench_stream_ingest);
criterion_main!(benches);
