//! Serving-layer saturation: latency and throughput vs concurrent clients.
//!
//! For each client count, a fresh [`Server`] is opened over one shared,
//! pre-warmed catalog and every client replays the same query script (a
//! small mixed pool, so duplicates collide on purpose). Clients start on a
//! barrier and the followers hold until the leader's first computation is in
//! flight — the first wave hits the coalescing path at full width, later
//! repeats answer from the result cache. Per-query wall latency (p50 / p99),
//! aggregate QPS, and the server's hit / miss / coalesce counters for every
//! client count land in `BENCH_serving.json` at the workspace root. After the
//! rows, the process-wide metrics registry (`obs::prometheus_exposition`) is
//! scraped and cross-checked against the summed per-server counters.

use blazeit_core::{Catalog, Server};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// The replayed script: mixed selection / aggregation / scrubbing / EXPLAIN
/// over one video, so concurrent clients dedupe against each other. The
/// first entry is a full-scan *selection* with a mask UDF — per-frame pixel
/// rendering that no engine cache absorbs, so the computation stays
/// wall-slow even warm: the aligned first wave collides on it, which is
/// what drives the coalescing path at width.
const POOL: [&str; 5] = [
    "SELECT * FROM taipei WHERE class = 'car' AND area(mask) > 20000",
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%",
    "SELECT timestamp FROM taipei GROUP BY timestamp HAVING SUM(class='car') >= 1 LIMIT 2 GAP 30",
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.3 AT CONFIDENCE 90%",
    "EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%",
];

const QUERIES_PER_CLIENT: usize = 12;

fn client_counts() -> Vec<usize> {
    match std::env::var("BLAZEIT_BENCH_SERVING_CLIENTS") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![1, 8, 32],
    }
}

fn frames() -> u64 {
    std::env::var("BLAZEIT_BENCH_SERVING_FRAMES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2_000)
}

struct Row {
    clients: usize,
    queries: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    hits: u64,
    misses: u64,
    coalesced: u64,
}

/// Value of one un-labeled sample in a Prometheus text exposition.
fn scrape(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find(|l| l.strip_prefix(name).is_some_and(|rest| rest.starts_with(' ')))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or_else(|| panic!("metric {name} missing from the exposition"))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn measure(clients: usize, catalog: &Arc<Catalog>) -> Row {
    // A fresh server per row: the engine caches stay warm (shared catalog),
    // the result cache starts cold so every row exercises the full
    // miss → coalesce → hit progression at its own concurrency.
    let server = Server::new(Arc::clone(catalog));
    let barrier = Barrier::new(clients);
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let session = server.session();
                let server = &server;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    // Client 0 opens the row with the first miss; everyone
                    // else spins until that computation is demonstrably in
                    // flight before issuing the identical query, so the
                    // first wave collides (coalesce or hit) by construction
                    // rather than by scheduler luck.
                    if i > 0 {
                        while server.stats().misses == 0 {
                            std::hint::spin_loop();
                        }
                    }
                    (0..QUERIES_PER_CLIENT)
                        .map(|q| {
                            let t = Instant::now();
                            black_box(session.query(POOL[q % POOL.len()]).expect("served query"));
                            t.elapsed().as_secs_f64()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let stats = server.stats();
    Row {
        clients,
        queries: clients * QUERIES_PER_CLIENT,
        qps: (clients * QUERIES_PER_CLIENT) as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&latencies, 0.50) * 1e3,
        p99_ms: percentile(&latencies, 0.99) * 1e3,
        hits: stats.hits,
        misses: stats.misses,
        coalesced: stats.coalesced,
    }
}

fn bench_serving_saturation(c: &mut Criterion) {
    let catalog = Arc::new(Catalog::new());
    catalog
        .register_preset(blazeit_videostore::DatasetPreset::Taipei, frames())
        .expect("register taipei");
    // Warm the engine-level caches once (specialized NN + score index), so
    // the rows measure the serving layer, not first-touch training.
    for sql in POOL {
        catalog.session().query(sql).expect("warmup query");
    }

    let mut rows = Vec::new();
    for clients in client_counts() {
        let row = measure(clients, &catalog);
        println!(
            "serving_saturation {:>3} clients: {:>8.1} qps | p50 {:>7.3}ms p99 {:>7.3}ms | \
             {} hits / {} misses / {} coalesced",
            row.clients, row.qps, row.p50_ms, row.p99_ms, row.hits, row.misses, row.coalesced,
        );
        rows.push(row);
    }

    let total_hits: u64 = rows.iter().map(|r| r.hits).sum();
    let total_misses: u64 = rows.iter().map(|r| r.misses).sum();
    let total_coalesced: u64 = rows.iter().map(|r| r.coalesced).sum();
    assert!(
        total_hits > 0 && total_coalesced > 0,
        "the duplicate-heavy script must both answer from the cache and \
         coalesce in-flight duplicates (hits {total_hits}, coalesced {total_coalesced})"
    );

    // Scrape the process-wide metrics registry and cross-check it against the
    // per-server counters summed over every row: each served query incremented
    // both, so the registry (cumulative across the fresh-server rows) must
    // agree exactly with the ServeStats the rows reported.
    let exposition = blazeit_core::obs::prometheus_exposition();
    assert_eq!(scrape(&exposition, "blazeit_serving_cache_hits_total"), total_hits);
    assert_eq!(scrape(&exposition, "blazeit_serving_cache_misses_total"), total_misses);
    assert_eq!(scrape(&exposition, "blazeit_serving_coalesced_total"), total_coalesced);
    let total_queries: u64 = rows.iter().map(|r| r.queries as u64).sum();
    assert_eq!(
        scrape(&exposition, "blazeit_serving_queries_total"),
        total_queries,
        "every served query (including EXPLAIN) counts once"
    );

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"dataset\": \"taipei\",\n    \"clients\": {},\n    \
                 \"queries\": {},\n    \"qps\": {:.2},\n    \"p50_ms\": {:.4},\n    \
                 \"p99_ms\": {:.4},\n    \"hits\": {},\n    \"misses\": {},\n    \
                 \"coalesced\": {}\n  }}",
                r.clients, r.queries, r.qps, r.p50_ms, r.p99_ms, r.hits, r.misses, r.coalesced,
            )
        })
        .collect();
    let report = format!("[\n{}\n]\n", entries.join(",\n"));
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_serving.json");
    std::fs::write(&out_path, report).expect("write BENCH_serving.json");
    println!("wrote {}", out_path.display());

    // Steady-state served-query latency for the criterion report: a warm
    // result cache answering one client.
    let server = Server::new(Arc::clone(&catalog));
    server.query(POOL[0]).expect("prime the cache");
    c.bench_function("served_query_warm_cache", |b| {
        b.iter(|| black_box(server.query(POOL[0]).expect("served query")))
    });
}

criterion_group!(benches, bench_serving_saturation);
criterion_main!(benches);
