//! Criterion microbenchmarks for the hot primitives of the pipeline: frame rendering,
//! featurization, specialized-NN inference (serial and batched), detection simulation,
//! the FrameQL parser, IoU, and the adaptive-sampling estimator.
//!
//! The `inference_pipeline` group additionally times full-day scoring through both
//! paths (`score_frames_serial` = per-frame [`SpecializedNN::score_frame`],
//! `score_frames_batched` = [`SpecializedNN::score_video`]), verifies they agree
//! element-wise, and records frames/sec for both in `BENCH_inference.json` at the
//! workspace root.

use blazeit_core::aggregate::{naive_aqp_fcount, SamplingOptions};
use blazeit_core::BlazeIt;
use blazeit_detect::ObjectDetector;
use blazeit_frameql::parse_query;
use blazeit_nn::features::FrameFeaturizer;
use blazeit_videostore::{BoundingBox, DatasetPreset, ObjectClass, DAY_TEST};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn bench_video_substrate(c: &mut Criterion) {
    let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 4_000).unwrap();
    c.bench_function("render_frame", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % 4_000;
            black_box(video.frame(i).unwrap())
        })
    });
    c.bench_function("ground_truth_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % 4_000;
            black_box(video.ground_truth(i).unwrap())
        })
    });
    let featurizer = FrameFeaturizer::default();
    let frame = video.frame(123).unwrap();
    c.bench_function("featurize_frame", |b| {
        b.iter(|| black_box(featurizer.features(&frame).unwrap()))
    });
}

fn bench_detection_and_nn(c: &mut Criterion) {
    let engine = BlazeIt::for_preset(DatasetPreset::Taipei, 2_000).unwrap();
    c.bench_function("simulated_detection", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 2_000;
            black_box(engine.detector().detect(&engine.video(), i))
        })
    });
    let nn = engine
        .specialized_for(&[(ObjectClass::Car, engine.default_max_count(ObjectClass::Car, 1))])
        .unwrap();
    c.bench_function("specialized_nn_score", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 2_000;
            black_box(nn.score_frame(&engine.video(), i).unwrap())
        })
    });
}

fn bench_frameql(c: &mut Criterion) {
    let sql = "SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 17.5 \
               AND area(mask) > 100000 GROUP BY trackid HAVING COUNT(*) > 15";
    c.bench_function("parse_selection_query", |b| b.iter(|| black_box(parse_query(sql).unwrap())));
    let a = BoundingBox::new(0.0, 0.0, 100.0, 100.0);
    let b2 = BoundingBox::new(50.0, 40.0, 160.0, 170.0);
    c.bench_function("bbox_iou", |b| b.iter(|| black_box(a.iou(&b2))));
}

fn bench_sampling(c: &mut Criterion) {
    let engine = BlazeIt::for_preset(DatasetPreset::Amsterdam, 2_000).unwrap();
    c.bench_function("naive_aqp_error_0.1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                naive_aqp_fcount(
                    &engine,
                    Some(ObjectClass::Car),
                    SamplingOptions::new(0.1, 0.95, seed),
                )
                .unwrap(),
            )
        })
    });
}

/// Frames per synthetic day for the inference-pipeline comparison (a "preset day"
/// at bench scale; override with `BLAZEIT_BENCH_FRAMES`).
fn inference_bench_frames() -> u64 {
    std::env::var("BLAZEIT_BENCH_FRAMES").ok().and_then(|v| v.parse().ok()).unwrap_or(4_000)
}

fn bench_inference_pipeline(c: &mut Criterion) {
    let frames_per_day = inference_bench_frames();
    let engine = BlazeIt::for_preset(DatasetPreset::Taipei, frames_per_day).unwrap();
    let video = engine.video();
    let video = &*video;
    let nn = engine
        .specialized_for(&[(ObjectClass::Car, engine.default_max_count(ObjectClass::Car, 1))])
        .unwrap();

    // Warm both paths (lazy allocations, page faults) before the timed passes.
    nn.score_frame(video, 0).unwrap();
    nn.score_batch(video, &[0, 1, 2, 3]).unwrap();

    let started = Instant::now();
    let mut serial = Vec::with_capacity(frames_per_day as usize);
    for frame in 0..frames_per_day {
        serial.push(nn.score_frame(video, frame).unwrap());
    }
    let serial_secs = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let batched = nn.score_video(video).unwrap();
    let batched_secs = started.elapsed().as_secs_f64();

    // The two paths must agree element-wise, or the comparison is meaningless.
    for (frame, expected) in serial.iter().enumerate() {
        assert_eq!(batched.frame_probs(frame), *expected, "scores diverge at frame {frame}");
    }

    let serial_fps = frames_per_day as f64 / serial_secs;
    let batched_fps = frames_per_day as f64 / batched_secs;
    let speedup = serial_secs / batched_secs;
    println!(
        "score_frames_serial   {frames_per_day} frames in {serial_secs:.3} s ({serial_fps:.0} fps)"
    );
    println!(
        "score_frames_batched  {frames_per_day} frames in {batched_secs:.3} s ({batched_fps:.0} fps, {speedup:.1}x)"
    );

    let report = format!(
        "{{\n  \"dataset\": \"taipei\",\n  \"frames\": {frames_per_day},\n  \
         \"serial_secs\": {serial_secs:.6},\n  \"batched_secs\": {batched_secs:.6},\n  \
         \"serial_fps\": {serial_fps:.1},\n  \"batched_fps\": {batched_fps:.1},\n  \
         \"speedup\": {speedup:.2}\n}}\n"
    );
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_inference.json");
    std::fs::write(&out_path, report).expect("write BENCH_inference.json");
    println!("wrote {}", out_path.display());

    // Per-frame steady-state costs of each path, for the criterion report.
    c.bench_function("score_frame_serial", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % frames_per_day;
            black_box(nn.score_frame(video, i).unwrap())
        })
    });
    let window: Vec<u64> = (0..256).collect();
    c.bench_function("score_batch_256", |b| {
        b.iter(|| black_box(nn.score_batch(video, &window).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_video_substrate,
    bench_detection_and_nn,
    bench_frameql,
    bench_sampling,
    bench_inference_pipeline
);
criterion_main!(benches);
