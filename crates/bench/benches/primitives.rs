//! Criterion microbenchmarks for the hot primitives of the pipeline: frame rendering,
//! featurization, specialized-NN inference, detection simulation, the FrameQL parser,
//! IoU, and the adaptive-sampling estimator.

use blazeit_core::aggregate::{naive_aqp_fcount, SamplingOptions};
use blazeit_core::BlazeIt;
use blazeit_detect::ObjectDetector;
use blazeit_frameql::parse_query;
use blazeit_nn::features::FrameFeaturizer;
use blazeit_videostore::{BoundingBox, DatasetPreset, ObjectClass, DAY_TEST};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_video_substrate(c: &mut Criterion) {
    let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 4_000).unwrap();
    c.bench_function("render_frame", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % 4_000;
            black_box(video.frame(i).unwrap())
        })
    });
    c.bench_function("ground_truth_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % 4_000;
            black_box(video.ground_truth(i).unwrap())
        })
    });
    let featurizer = FrameFeaturizer::default();
    let frame = video.frame(123).unwrap();
    c.bench_function("featurize_frame", |b| b.iter(|| black_box(featurizer.features(&frame).unwrap())));
}

fn bench_detection_and_nn(c: &mut Criterion) {
    let engine = BlazeIt::for_preset(DatasetPreset::Taipei, 2_000).unwrap();
    c.bench_function("simulated_detection", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 2_000;
            black_box(engine.detector().detect(engine.video(), i))
        })
    });
    let nn = engine
        .specialized_for(&[(ObjectClass::Car, engine.default_max_count(ObjectClass::Car, 1))])
        .unwrap();
    c.bench_function("specialized_nn_score", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 2_000;
            black_box(nn.score_frame(engine.video(), i).unwrap())
        })
    });
}

fn bench_frameql(c: &mut Criterion) {
    let sql = "SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 17.5 \
               AND area(mask) > 100000 GROUP BY trackid HAVING COUNT(*) > 15";
    c.bench_function("parse_selection_query", |b| b.iter(|| black_box(parse_query(sql).unwrap())));
    let a = BoundingBox::new(0.0, 0.0, 100.0, 100.0);
    let b2 = BoundingBox::new(50.0, 40.0, 160.0, 170.0);
    c.bench_function("bbox_iou", |b| b.iter(|| black_box(a.iou(&b2))));
}

fn bench_sampling(c: &mut Criterion) {
    let engine = BlazeIt::for_preset(DatasetPreset::Amsterdam, 2_000).unwrap();
    c.bench_function("naive_aqp_error_0.1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                naive_aqp_fcount(
                    &engine,
                    Some(ObjectClass::Car),
                    SamplingOptions::new(0.1, 0.95, seed),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_video_substrate,
    bench_detection_and_nn,
    bench_frameql,
    bench_sampling
);
criterion_main!(benches);
