//! Cold-load vs warm-load comparison for the durable index store.
//!
//! The "cold" pass opens a fresh store, registers a preset, and runs the first
//! FCOUNT query — paying specialized-NN training and full-video scoring, and
//! persisting both artifacts as write-behind. The "warm" pass opens a *new*
//! catalog over the now-populated store and repeats the query: everything loads
//! from disk, so the simulated clock records **zero** specialized-inference and
//! training seconds (asserted here, since a comparison against a silently
//! retraining catalog would be meaningless). Wall-clock times for both passes
//! and the simulated-cost breakdown land in `BENCH_index.json` at the workspace
//! root.

use blazeit_core::Catalog;
use blazeit_videostore::DatasetPreset;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::Instant;

const QUERY: &str =
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";

fn bench_frames() -> u64 {
    std::env::var("BLAZEIT_BENCH_FRAMES").ok().and_then(|v| v.parse().ok()).unwrap_or(4_000)
}

fn scratch_store_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blazeit-bench-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_catalog(dir: &PathBuf, frames: u64) -> Catalog {
    let catalog = Catalog::with_index_store(dir).expect("open index store");
    catalog.register_preset(DatasetPreset::Taipei, frames).expect("register taipei");
    catalog
}

fn bench_index_store(c: &mut Criterion) {
    let frames = bench_frames();
    let dir = scratch_store_dir();

    // Cold: train + score + persist (registration excluded from the timing —
    // generating the synthetic days is not index work).
    let catalog = store_catalog(&dir, frames);
    let started = Instant::now();
    let cold_value = catalog.session().query(QUERY).unwrap().output.aggregate_value().unwrap();
    let cold_secs = started.elapsed().as_secs_f64();
    let cold_sim = catalog.clock().breakdown();
    drop(catalog);

    // Warm: a fresh catalog over the populated store answers from disk.
    let catalog = store_catalog(&dir, frames);
    let started = Instant::now();
    let warm_value = catalog.session().query(QUERY).unwrap().output.aggregate_value().unwrap();
    let warm_secs = started.elapsed().as_secs_f64();
    let warm_sim = catalog.clock().breakdown();
    assert_eq!(cold_value, warm_value, "warm load must reproduce the cold answer exactly");
    assert_eq!(warm_sim.specialized, 0.0, "warm load must charge zero specialized inference");
    assert_eq!(warm_sim.training, 0.0, "warm load must charge zero training");

    let speedup = cold_secs / warm_secs.max(1e-12);
    println!("index_cold_query  {frames} frames in {cold_secs:.3} s (train + score + persist)");
    println!(
        "index_warm_query  {frames} frames in {warm_secs:.3} s ({speedup:.1}x, loads from disk)"
    );

    let report = format!(
        "{{\n  \"dataset\": \"taipei\",\n  \"frames\": {frames},\n  \
         \"cold_secs\": {cold_secs:.6},\n  \"warm_secs\": {warm_secs:.6},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"cold_sim_training_secs\": {:.6},\n  \"cold_sim_specialized_secs\": {:.6},\n  \
         \"warm_sim_training_secs\": {:.6},\n  \"warm_sim_specialized_secs\": {:.6}\n}}\n",
        cold_sim.training, cold_sim.specialized, warm_sim.training, warm_sim.specialized,
    );
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_index.json");
    std::fs::write(&out_path, report).expect("write BENCH_index.json");
    println!("wrote {}", out_path.display());

    // Steady-state cost of one disk load (decode + checksum of the whole-video
    // score matrix), for the criterion report.
    let store = catalog.index_store().expect("catalog has a store").clone();
    let ctx = catalog.context("taipei").unwrap();
    let heads = vec![(
        blazeit_videostore::ObjectClass::Car,
        ctx.default_max_count(blazeit_videostore::ObjectClass::Car, 1),
    )];
    let nn = ctx.specialized_for(&heads).unwrap();
    let scores = ctx.score_index(&nn).unwrap();
    store.store_scores("bench", "bench-key", &scores).unwrap();
    c.bench_function("index_store_load_scores", |b| {
        b.iter(|| black_box(store.load_scores("bench", "bench-key").unwrap().unwrap()))
    });
    c.bench_function("index_store_load_network", |b| {
        let ctx = catalog.context("taipei").unwrap();
        store.store_network("bench", "bench-nn", &nn).unwrap();
        b.iter(|| black_box(store.load_network("bench", "bench-nn", ctx.clock()).unwrap().unwrap()))
    });

    drop(catalog);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_index_store);
criterion_main!(benches);
