//! Tracing overhead: the cost of the `obs` span machinery, armed and disarmed.
//!
//! The observability contract (see `docs/ARCHITECTURE.md`) is that an
//! *untraced* query pays almost nothing for the instrumentation: with no
//! collector installed, [`obs::span`] is one thread-local read returning an
//! inert guard. This bench pins that claim in CI: the disarmed per-span cost
//! is measured over a large loop and **asserted** under a generous bound, and
//! the armed cost plus warm-query wall times (plain vs `EXPLAIN ANALYZE`)
//! land in `BENCH_obs.json` at the workspace root for trend tracking.

use blazeit_core::{obs, Catalog};
use blazeit_detect::SimClock;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

/// Hard ceiling on the disarmed per-span cost. The real cost is a handful of
/// nanoseconds (one TLS read, no allocation); the bound is two orders of
/// magnitude looser so CI machines under load never flake, while still
/// catching a regression that puts a lock or an allocation on the path.
const DISARMED_NS_BOUND: f64 = 200.0;

const SPAN_ITERS: u32 = 1_000_000;

/// Nanoseconds per disarmed span over `SPAN_ITERS` open/close pairs; the
/// minimum of `rounds` runs (minimum, not mean — scheduler noise only ever
/// adds time, so the minimum is the honest cost of the code path).
fn measure_disarmed(rounds: usize) -> f64 {
    assert!(obs::trace_context().is_none(), "bench must start untraced");
    (0..rounds)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..SPAN_ITERS {
                black_box(obs::span("bench"));
            }
            t.elapsed().as_secs_f64() * 1e9 / f64::from(SPAN_ITERS)
        })
        .fold(f64::INFINITY, f64::min)
}

/// Nanoseconds per *armed* span (collector installed): reported, not bounded —
/// traced queries opt into the cost.
fn measure_armed(rounds: usize) -> f64 {
    let clock = SimClock::new();
    (0..rounds)
        .map(|_| {
            let guard = obs::install_collector(Arc::clone(&clock));
            let t = Instant::now();
            for _ in 0..SPAN_ITERS / 100 {
                black_box(obs::span("bench"));
            }
            let per_op = t.elapsed().as_secs_f64() * 1e9 / f64::from(SPAN_ITERS / 100);
            drop(guard.finish());
            per_op
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let disarmed_ns = measure_disarmed(5);
    assert!(
        disarmed_ns < DISARMED_NS_BOUND,
        "disarmed span cost regressed: {disarmed_ns:.1}ns/span exceeds the \
         {DISARMED_NS_BOUND}ns bound — something heavy crept onto the untraced path"
    );
    let armed_ns = measure_armed(5);

    // Warm-query comparison: the same cached aggregate executed plain and
    // under EXPLAIN ANALYZE. Both answer from warm engine caches, so the gap
    // is the tracing machinery (collector install, spans, assembly).
    let catalog = Catalog::new();
    catalog.register_preset(blazeit_videostore::DatasetPreset::Taipei, 1_000).expect("register");
    let sql = "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
    let session = catalog.session();
    session.query(sql).expect("warmup");
    let timed = |q: &str| -> f64 {
        (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(session.query(q).expect("warm query"));
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let warm_query_ms = timed(sql);
    let warm_analyze_ms = timed(&format!("EXPLAIN ANALYZE {sql}"));

    println!(
        "obs_overhead: disarmed {disarmed_ns:.1}ns/span (bound {DISARMED_NS_BOUND}ns) | \
         armed {armed_ns:.1}ns/span | warm query {warm_query_ms:.3}ms plain vs \
         {warm_analyze_ms:.3}ms analyzed"
    );

    let report = format!(
        "{{\n  \"disarmed_ns_per_span\": {disarmed_ns:.2},\n  \
         \"disarmed_ns_bound\": {DISARMED_NS_BOUND},\n  \
         \"armed_ns_per_span\": {armed_ns:.2},\n  \
         \"warm_query_ms\": {warm_query_ms:.4},\n  \
         \"warm_analyze_ms\": {warm_analyze_ms:.4}\n}}\n"
    );
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_obs.json");
    std::fs::write(&out_path, report).expect("write BENCH_obs.json");
    println!("wrote {}", out_path.display());

    // Criterion entry for the disarmed path only: an armed entry would
    // accumulate one span record per iteration (millions over the measurement
    // budget); the bounded `measure_armed` loop above reports that cost.
    c.bench_function("span_disarmed", |b| b.iter(|| black_box(obs::span("bench"))));
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
