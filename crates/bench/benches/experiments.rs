//! `cargo bench` harness that runs every table/figure experiment once at a reduced
//! scale and prints the resulting tables (plus wall-clock timings). This is a plain
//! harness (not Criterion): each experiment is a substantial end-to-end run whose
//! *output tables* are the interesting artifact, not nanosecond-level statistics.
//!
//! For paper-shaped output (longer days, more sampling runs), run the individual
//! binaries, e.g. `BLAZEIT_FRAMES=54000 cargo run --release -p blazeit-bench --bin
//! fig4_aggregates`.

use blazeit_bench::{experiments, ExperimentScale};
use std::time::Instant;

fn run(name: &str, f: impl FnOnce() -> String) {
    let started = Instant::now();
    let report = f();
    let elapsed = started.elapsed().as_secs_f64();
    println!("=== {name} (completed in {elapsed:.1} s wall clock) ===");
    println!("{report}");
}

fn main() {
    // Respect --bench filtering arguments passed by cargo but otherwise run everything.
    let args: Vec<String> = std::env::args().collect();
    let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
    let should_run = |name: &str| filter.as_deref().map(|f| name.contains(f)).unwrap_or(true);

    let scale = if std::env::var("BLAZEIT_FRAMES").is_ok() {
        ExperimentScale::from_env()
    } else {
        ExperimentScale { frames_per_day: 6_000, runs: 1 }
    };
    println!(
        "BlazeIt experiment suite — scale: {} frames/day, {} sampling runs\n",
        scale.frames_per_day, scale.runs
    );

    if should_run("table3") {
        run("Table 3: dataset characteristics", || experiments::table3(scale));
    }
    if should_run("fig4") {
        run("Figure 4: aggregate query runtimes", || experiments::fig4(scale).1);
    }
    if should_run("table4") {
        run("Table 4: query-rewriting error", || experiments::table4(scale));
    }
    if should_run("table5") {
        run("Table 5: predicted vs actual counts on two days", || experiments::table5(scale));
    }
    if should_run("fig5") {
        run("Figure 5: sample complexity, naive AQP vs control variates", || {
            experiments::fig5(scale)
        });
    }
    if should_run("table6") {
        run("Table 6: scrubbing query details", || experiments::table6(scale));
    }
    if should_run("fig6") {
        run("Figure 6: scrubbing runtimes", || experiments::fig6(scale));
    }
    if should_run("fig7") {
        run("Figure 7: sample complexity vs number of cars", || experiments::fig7(scale));
    }
    if should_run("fig8") {
        run("Figure 8: multi-class scrubbing runtime", || experiments::fig8(scale));
    }
    if should_run("fig9") {
        run("Figure 9: sample complexity vs LIMIT", || experiments::fig9(scale));
    }
    if should_run("fig10") {
        run("Figure 10: content-based selection runtime", || experiments::fig10(scale));
    }
    if should_run("fig11") {
        run("Figure 11: filter factor analysis and lesion study", || experiments::fig11(scale));
    }
}
