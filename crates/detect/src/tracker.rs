//! Entity resolution: the motion-IoU tracker.
//!
//! Section 9 of the paper: "Given the set of objects in two consecutive frames, we
//! compute the pairwise IoU of each object in the two frames. We use a cutoff of 0.7 to
//! call an object the same across consecutive frames." The tracker below implements
//! exactly that, assigning a fresh `trackid` whenever no previous-frame detection of the
//! same class overlaps enough. Tracks also expire if not observed for a configurable
//! number of frames (so subsampled scans still resolve slow objects).

use crate::detector::Detection;
use blazeit_videostore::FrameIndex;
use serde::{Deserialize, Serialize};

/// A detection annotated with the track id assigned by the tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedDetection {
    /// The tracker-assigned identifier (FrameQL's `trackid`).
    pub track_id: u64,
    /// The underlying detection.
    pub detection: Detection,
}

#[derive(Debug, Clone)]
struct ActiveTrack {
    id: u64,
    last_frame: FrameIndex,
    last: Detection,
}

/// The motion-IoU entity-resolution method.
#[derive(Debug, Clone)]
pub struct IouTracker {
    iou_threshold: f32,
    max_gap_frames: u64,
    next_id: u64,
    active: Vec<ActiveTrack>,
}

impl Default for IouTracker {
    fn default() -> Self {
        IouTracker::new(0.7, 1)
    }
}

impl IouTracker {
    /// Creates a tracker with an IoU threshold and a maximum frame gap.
    ///
    /// `max_gap_frames = 1` is the paper's consecutive-frame matching; larger values
    /// let the tracker bridge subsampled scans.
    pub fn new(iou_threshold: f32, max_gap_frames: u64) -> Self {
        IouTracker { iou_threshold, max_gap_frames, next_id: 1, active: Vec::new() }
    }

    /// The IoU threshold used to match detections across frames.
    pub fn iou_threshold(&self) -> f32 {
        self.iou_threshold
    }

    /// Number of distinct track ids assigned so far.
    pub fn tracks_created(&self) -> u64 {
        self.next_id - 1
    }

    /// Processes the detections of `frame` (which must be non-decreasing across calls)
    /// and returns them annotated with track ids.
    pub fn update(&mut self, frame: FrameIndex, detections: &[Detection]) -> Vec<TrackedDetection> {
        // Expire stale tracks.
        let max_gap = self.max_gap_frames;
        self.active.retain(|t| frame.saturating_sub(t.last_frame) <= max_gap);

        let mut used_tracks = vec![false; self.active.len()];
        let mut out = Vec::with_capacity(detections.len());

        for det in detections {
            // Greedy best-IoU match against unconsumed active tracks of the same class.
            let mut best: Option<(usize, f32)> = None;
            for (i, track) in self.active.iter().enumerate() {
                // blazeit-lint: allow(panic-site::index) -- i comes from enumerating self.active,
                // so it indexes the same vec
                if used_tracks[i] || track.last.class != det.class || track.last_frame >= frame {
                    continue;
                }
                let iou = track.last.bbox.iou(&det.bbox);
                if iou >= self.iou_threshold && best.map(|(_, b)| iou > b).unwrap_or(true) {
                    best = Some((i, iou));
                }
            }
            let id = match best {
                Some((i, _)) => {
                    // blazeit-lint: allow(panic-site::index) -- used_tracks is sized active.len()
                    // and i enumerates active
                    used_tracks[i] = true;
                    // blazeit-lint: allow(panic-site::index) -- i comes from enumerating
                    // self.active, so it indexes the same vec
                    self.active[i].id
                }
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    id
                }
            };
            out.push(TrackedDetection { track_id: id, detection: det.clone() });
        }

        // Update / insert active tracks from this frame's assignments.
        for td in &out {
            match self.active.iter_mut().find(|t| t.id == td.track_id) {
                Some(t) => {
                    t.last_frame = frame;
                    t.last = td.detection.clone();
                }
                None => self.active.push(ActiveTrack {
                    id: td.track_id,
                    last_frame: frame,
                    last: td.detection.clone(),
                }),
            }
        }
        out
    }

    /// Resets the tracker, forgetting all active tracks (ids keep incrementing so
    /// track ids remain globally unique within a session).
    pub fn reset(&mut self) {
        self.active.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::{BoundingBox, ObjectClass};

    fn det(class: ObjectClass, x: f32) -> Detection {
        Detection::new(class, BoundingBox::new(x, 100.0, x + 100.0, 200.0), 0.9)
    }

    #[test]
    fn same_object_keeps_its_id() {
        let mut tracker = IouTracker::default();
        let a = tracker.update(0, &[det(ObjectClass::Car, 100.0)]);
        let b = tracker.update(1, &[det(ObjectClass::Car, 105.0)]);
        assert_eq!(a[0].track_id, b[0].track_id);
        assert_eq!(tracker.tracks_created(), 1);
    }

    #[test]
    fn far_apart_objects_get_new_ids() {
        let mut tracker = IouTracker::default();
        let a = tracker.update(0, &[det(ObjectClass::Car, 100.0)]);
        let b = tracker.update(1, &[det(ObjectClass::Car, 700.0)]);
        assert_ne!(a[0].track_id, b[0].track_id);
        assert_eq!(tracker.tracks_created(), 2);
    }

    #[test]
    fn different_classes_never_match() {
        let mut tracker = IouTracker::default();
        let a = tracker.update(0, &[det(ObjectClass::Car, 100.0)]);
        let b = tracker.update(1, &[det(ObjectClass::Bus, 100.0)]);
        assert_ne!(a[0].track_id, b[0].track_id);
    }

    #[test]
    fn track_expires_after_gap() {
        let mut tracker = IouTracker::new(0.7, 1);
        let a = tracker.update(0, &[det(ObjectClass::Car, 100.0)]);
        // Nothing at frames 1-2; object reappears at frame 3 in the same place.
        let b = tracker.update(3, &[det(ObjectClass::Car, 100.0)]);
        assert_ne!(a[0].track_id, b[0].track_id, "expired track must not be revived");
    }

    #[test]
    fn larger_gap_allowance_bridges_subsampling() {
        let mut tracker = IouTracker::new(0.7, 10);
        let a = tracker.update(0, &[det(ObjectClass::Car, 100.0)]);
        let b = tracker.update(7, &[det(ObjectClass::Car, 102.0)]);
        assert_eq!(a[0].track_id, b[0].track_id);
    }

    #[test]
    fn two_objects_tracked_independently() {
        let mut tracker = IouTracker::default();
        let frame0 = vec![det(ObjectClass::Car, 100.0), det(ObjectClass::Car, 600.0)];
        let frame1 = vec![det(ObjectClass::Car, 605.0), det(ObjectClass::Car, 103.0)];
        let a = tracker.update(0, &frame0);
        let b = tracker.update(1, &frame1);
        assert_eq!(a[0].track_id, b[1].track_id);
        assert_eq!(a[1].track_id, b[0].track_id);
        assert_eq!(tracker.tracks_created(), 2);
    }

    #[test]
    fn reset_forgets_active_tracks() {
        let mut tracker = IouTracker::default();
        let a = tracker.update(0, &[det(ObjectClass::Car, 100.0)]);
        tracker.reset();
        let b = tracker.update(1, &[det(ObjectClass::Car, 100.0)]);
        assert_ne!(a[0].track_id, b[0].track_id);
    }

    #[test]
    fn one_track_not_matched_twice_in_a_frame() {
        let mut tracker = IouTracker::default();
        tracker.update(0, &[det(ObjectClass::Car, 100.0)]);
        // Two nearly identical detections in the next frame: only one may inherit the id.
        let out = tracker.update(1, &[det(ObjectClass::Car, 101.0), det(ObjectClass::Car, 99.0)]);
        assert_ne!(out[0].track_id, out[1].track_id);
    }
}
