//! The registry of detection methods and their throughput / accuracy characteristics.
//!
//! Section 5 of the paper motivates BlazeIt's optimizations with the throughput gap
//! between detectors and specialized NNs: the most accurate Mask R-CNN configuration
//! runs at ~3 fps (mAP 45.2 on MS-COCO), FGFA is comparable, YOLOv2 runs at ~80 fps but
//! with much lower accuracy (mAP 25.4), while specialized NNs run at ~10,000 fps and
//! simple filters at ~100,000 fps. These numbers parameterize the simulated cost model.

use serde::{Deserialize, Serialize};

/// A named object-detection method with its simulated performance characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionMethod {
    /// Mask R-CNN (X-152-32x8d-FPN, Detectron weights): ~3 fps, mAP 45.2.
    MaskRcnn,
    /// Flow-guided feature aggregation: ~2 fps, video-specific detector.
    Fgfa,
    /// YOLOv2: ~80 fps, mAP 25.4 — fast but noticeably less accurate.
    YoloV2,
}

impl DetectionMethod {
    /// All registered methods.
    pub const ALL: [DetectionMethod; 3] =
        [DetectionMethod::MaskRcnn, DetectionMethod::Fgfa, DetectionMethod::YoloV2];

    /// Short name used in configuration and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DetectionMethod::MaskRcnn => "mask-rcnn",
            DetectionMethod::Fgfa => "fgfa",
            DetectionMethod::YoloV2 => "yolov2",
        }
    }

    /// Parses a method from its name.
    pub fn parse(name: &str) -> Option<DetectionMethod> {
        let lower = name.to_ascii_lowercase();
        DetectionMethod::ALL.iter().copied().find(|m| m.name() == lower)
    }

    /// Simulated throughput in frames per second on a full 720p frame.
    pub fn throughput_fps(&self) -> f64 {
        match self {
            DetectionMethod::MaskRcnn => 3.0,
            DetectionMethod::Fgfa => 2.0,
            DetectionMethod::YoloV2 => 80.0,
        }
    }

    /// Simulated cost in GPU-seconds per full 720p frame.
    pub fn cost_per_frame_secs(&self) -> f64 {
        1.0 / self.throughput_fps()
    }

    /// Nominal mAP on MS-COCO, used to scale the noise model (higher mAP = fewer
    /// misses / spurious detections).
    pub fn map_score(&self) -> f64 {
        match self {
            DetectionMethod::MaskRcnn => 45.2,
            DetectionMethod::Fgfa => 41.0,
            DetectionMethod::YoloV2 => 25.4,
        }
    }

    /// Base probability of missing a fully-visible object, derived from the method's
    /// accuracy. Visibility-dependent adjustments are applied on top of this by the
    /// noise model.
    pub fn base_miss_rate(&self) -> f64 {
        match self {
            DetectionMethod::MaskRcnn => 0.02,
            DetectionMethod::Fgfa => 0.03,
            DetectionMethod::YoloV2 => 0.12,
        }
    }

    /// Expected number of spurious (false-positive) detections per frame before
    /// confidence thresholding.
    pub fn spurious_rate(&self) -> f64 {
        match self {
            DetectionMethod::MaskRcnn => 0.02,
            DetectionMethod::Fgfa => 0.03,
            DetectionMethod::YoloV2 => 0.15,
        }
    }

    /// Standard deviation of bounding-box localization jitter as a fraction of the
    /// object's size.
    pub fn box_jitter(&self) -> f32 {
        match self {
            DetectionMethod::MaskRcnn => 0.02,
            DetectionMethod::Fgfa => 0.03,
            DetectionMethod::YoloV2 => 0.06,
        }
    }
}

impl std::fmt::Display for DetectionMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for m in DetectionMethod::ALL {
            assert_eq!(DetectionMethod::parse(m.name()), Some(m));
        }
        assert_eq!(DetectionMethod::parse("ssd"), None);
    }

    #[test]
    fn accuracy_and_speed_tradeoff() {
        // The whole premise of the paper: the accurate detectors are slow.
        assert!(DetectionMethod::MaskRcnn.map_score() > DetectionMethod::YoloV2.map_score());
        assert!(
            DetectionMethod::MaskRcnn.throughput_fps() < DetectionMethod::YoloV2.throughput_fps()
        );
        assert!(
            DetectionMethod::MaskRcnn.base_miss_rate() < DetectionMethod::YoloV2.base_miss_rate()
        );
    }

    #[test]
    fn cost_is_inverse_throughput() {
        for m in DetectionMethod::ALL {
            assert!((m.cost_per_frame_secs() * m.throughput_fps() - 1.0).abs() < 1e-9);
        }
    }
}
