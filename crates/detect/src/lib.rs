//! # blazeit-detect
//!
//! The object-detection substrate for the BlazeIt reproduction.
//!
//! BlazeIt treats the object detection method (Mask R-CNN, FGFA, YOLOv2 in the paper)
//! as a configurable, expensive, ground-truth-defining black box: all accuracy is
//! measured *relative to* the detector's output, and all optimizations exist to call it
//! as rarely as possible. This crate provides:
//!
//! * [`Detection`] / [`ObjectDetector`] — the detector interface and its output type.
//! * [`SimulatedDetector`] — a detector that observes the
//!   synthetic scene's ground truth through a configurable noise model (misses, spurious
//!   boxes, localization jitter, confidence scores) and charges simulated GPU time per
//!   call.
//! * [`DetectionMethod`] — the registry of detector "models"
//!   with the throughput / accuracy trade-offs the paper quotes (Mask R-CNN at 3 fps,
//!   FGFA at ~2 fps, YOLOv2 at 80 fps).
//! * [`SimClock`] — the simulated-time cost model every BlazeIt
//!   component charges; end-to-end "runtimes" in the experiment harnesses are read off
//!   this clock, mirroring how the paper extrapolates runtime from detector-call counts.
//! * [`IouTracker`] — the motion-IoU entity-resolution method
//!   (Section 9) that assigns `trackid`s to detections across consecutive frames.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod counts;
pub mod detector;
pub mod methods;
pub mod simulated;
pub mod tracker;

pub use clock::{CostProfile, SimClock};
pub use counts::{count_class, count_classes, CountVector};
pub use detector::{Detection, DetectorStats, ObjectDetector};
pub use methods::DetectionMethod;
pub use simulated::{NoiseModel, SimulatedDetector};
pub use tracker::IouTracker;
