//! The simulated-time cost model.
//!
//! Every expensive operation in the pipeline — detector invocations, specialized-NN
//! inference, filter evaluation, model training, video decode — charges a shared
//! [`SimClock`]. The experiment harnesses report end-to-end "runtime" from this clock,
//! which is exactly how the paper reports several of its figures (it extrapolates
//! runtime from the number of object-detection calls times the per-call cost, because
//! actually running the detector everywhere would take GPU-years).
//!
//! Costs are expressed in *simulated GPU seconds*. The [`CostProfile`] collects the
//! throughput constants quoted in Section 5 of the paper: object detection at ~3 fps,
//! specialized NNs at ~10,000 fps, simple filters at ~100,000 fps.

use blazeit_videostore::sync::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Categories of simulated work, used for cost breakdowns in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCategory {
    /// Full object-detection invocations.
    Detection,
    /// Specialized-NN inference.
    SpecializedInference,
    /// Specialized-NN (and filter) training.
    Training,
    /// Cheap filter evaluation (content / temporal / spatial filters, UDF lifting).
    Filter,
    /// Video decode / ingestion.
    Decode,
    /// Anything else.
    Other,
}

impl CostCategory {
    /// All categories in display order.
    pub const ALL: [CostCategory; 6] = [
        CostCategory::Detection,
        CostCategory::SpecializedInference,
        CostCategory::Training,
        CostCategory::Filter,
        CostCategory::Decode,
        CostCategory::Other,
    ];

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CostCategory::Detection => "detection",
            CostCategory::SpecializedInference => "specialized",
            CostCategory::Training => "training",
            CostCategory::Filter => "filter",
            CostCategory::Decode => "decode",
            CostCategory::Other => "other",
        }
    }
}

/// Per-category accumulated simulated time, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Seconds spent in full object detection.
    pub detection: f64,
    /// Seconds spent in specialized-NN inference.
    pub specialized: f64,
    /// Seconds spent training models.
    pub training: f64,
    /// Seconds spent in cheap filters.
    pub filter: f64,
    /// Seconds spent decoding video.
    pub decode: f64,
    /// Seconds spent elsewhere.
    pub other: f64,
}

impl CostBreakdown {
    /// Total simulated seconds across all categories.
    pub fn total(&self) -> f64 {
        self.detection + self.specialized + self.training + self.filter + self.decode + self.other
    }

    /// Total excluding training time — the paper's "BlazeIt (no train)" accounting,
    /// which assumes specialized models were indexed ahead of time.
    pub fn total_excluding_training(&self) -> f64 {
        self.total() - self.training
    }

    fn slot(&mut self, category: CostCategory) -> &mut f64 {
        match category {
            CostCategory::Detection => &mut self.detection,
            CostCategory::SpecializedInference => &mut self.specialized,
            CostCategory::Training => &mut self.training,
            CostCategory::Filter => &mut self.filter,
            CostCategory::Decode => &mut self.decode,
            CostCategory::Other => &mut self.other,
        }
    }

    /// Reads one category.
    pub fn get(&self, category: CostCategory) -> f64 {
        match category {
            CostCategory::Detection => self.detection,
            CostCategory::SpecializedInference => self.specialized,
            CostCategory::Training => self.training,
            CostCategory::Filter => self.filter,
            CostCategory::Decode => self.decode,
            CostCategory::Other => self.other,
        }
    }

    /// The difference `self - earlier`, category by category.
    pub fn since(&self, earlier: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            detection: self.detection - earlier.detection,
            specialized: self.specialized - earlier.specialized,
            training: self.training - earlier.training,
            filter: self.filter - earlier.filter,
            decode: self.decode - earlier.decode,
            other: self.other - earlier.other,
        }
    }
}

/// A thread-safe simulated clock shared by detectors, models, filters and the engine.
#[derive(Debug, Default)]
pub struct SimClock {
    inner: Mutex<CostBreakdown>,
}

impl SimClock {
    /// Creates a fresh clock at zero.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// Charges `seconds` of simulated time to `category`.
    ///
    /// Negative or non-finite charges are ignored (they would indicate a bug upstream
    /// and must never corrupt the experiment accounting).
    pub fn charge(&self, category: CostCategory, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            *self.inner.lock().slot(category) += seconds;
        }
    }

    /// A snapshot of the per-category totals.
    pub fn breakdown(&self) -> CostBreakdown {
        *self.inner.lock()
    }

    /// Total simulated seconds so far.
    pub fn total(&self) -> f64 {
        self.breakdown().total()
    }

    /// Resets the clock to zero.
    pub fn reset(&self) {
        *self.inner.lock() = CostBreakdown::default();
    }
}

/// Throughput constants for the simulated pipeline (Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Specialized-NN inference throughput in frames per second (~10,000 in the paper).
    pub specialized_fps: f64,
    /// Specialized-NN training throughput in frames per second (forward + backward).
    pub training_fps: f64,
    /// Cheap-filter throughput in frames per second (~100,000 in the paper).
    pub filter_fps: f64,
    /// Video decode throughput in frames per second (excluded from the paper's
    /// runtimes; tracked separately here and likewise excluded from reports).
    pub decode_fps: f64,
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile {
            specialized_fps: 10_000.0,
            training_fps: 2_500.0,
            filter_fps: 100_000.0,
            decode_fps: 1_000.0,
        }
    }
}

impl CostProfile {
    /// Cost of one specialized-NN inference, in seconds.
    pub fn specialized_inference_cost(&self) -> f64 {
        1.0 / self.specialized_fps
    }

    /// Cost of one training example (one forward+backward pass), in seconds.
    pub fn training_cost_per_example(&self) -> f64 {
        1.0 / self.training_fps
    }

    /// Cost of one filter evaluation, in seconds.
    pub fn filter_cost(&self) -> f64 {
        1.0 / self.filter_fps
    }

    /// Cost of decoding one frame, in seconds.
    pub fn decode_cost(&self) -> f64 {
        1.0 / self.decode_fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Detection, 1.5);
        clock.charge(CostCategory::Detection, 0.5);
        clock.charge(CostCategory::Filter, 0.25);
        assert!((clock.total() - 2.25).abs() < 1e-12);
        let b = clock.breakdown();
        assert!((b.detection - 2.0).abs() < 1e-12);
        assert!((b.filter - 0.25).abs() < 1e-12);
        assert_eq!(b.training, 0.0);
    }

    #[test]
    fn invalid_charges_ignored() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Other, -5.0);
        clock.charge(CostCategory::Other, f64::NAN);
        clock.charge(CostCategory::Other, f64::INFINITY);
        assert_eq!(clock.total(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Training, 10.0);
        clock.reset();
        assert_eq!(clock.total(), 0.0);
    }

    #[test]
    fn breakdown_since() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Detection, 1.0);
        let snap = clock.breakdown();
        clock.charge(CostCategory::Detection, 2.0);
        clock.charge(CostCategory::Training, 3.0);
        let delta = clock.breakdown().since(&snap);
        assert!((delta.detection - 2.0).abs() < 1e-12);
        assert!((delta.training - 3.0).abs() < 1e-12);
        assert!((delta.total() - 5.0).abs() < 1e-12);
        assert!((delta.total_excluding_training() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_profile_matches_paper_ordering() {
        let p = CostProfile::default();
        // Filters are cheaper than specialized NNs, which are vastly cheaper than
        // detection (detection cost lives in DetectionMethod).
        assert!(p.filter_cost() < p.specialized_inference_cost());
        assert!(p.specialized_inference_cost() < 1.0 / 3.0);
        assert!(p.training_cost_per_example() > p.specialized_inference_cost());
    }

    #[test]
    fn concurrent_charges_are_not_lost() {
        let clock = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&clock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.charge(CostCategory::Filter, 0.001);
                    }
                });
            }
        });
        assert!((clock.total() - 8.0).abs() < 1e-9);
    }
}
