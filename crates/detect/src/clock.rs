//! The simulated-time cost model.
//!
//! Every expensive operation in the pipeline — detector invocations, specialized-NN
//! inference, filter evaluation, model training, video decode — charges a shared
//! [`SimClock`]. The experiment harnesses report end-to-end "runtime" from this clock,
//! which is exactly how the paper reports several of its figures (it extrapolates
//! runtime from the number of object-detection calls times the per-call cost, because
//! actually running the detector everywhere would take GPU-years).
//!
//! Costs are expressed in *simulated GPU seconds*. The [`CostProfile`] collects the
//! throughput constants quoted in Section 5 of the paper: object detection at ~3 fps,
//! specialized NNs at ~10,000 fps, simple filters at ~100,000 fps.

use blazeit_videostore::sync::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

thread_local! {
    /// The charge tag of the session this thread is currently working for.
    /// Tag 0 is "untagged" (library use outside any serving session). A plain
    /// `Cell` — not a sync primitive — because the tag is thread-local by
    /// construction and crosses threads only via [`SimClock::with_charge_tag`].
    static CURRENT_TAG: Cell<u64> = const { Cell::new(0) };
}

/// Categories of simulated work, used for cost breakdowns in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCategory {
    /// Full object-detection invocations.
    Detection,
    /// Specialized-NN inference.
    SpecializedInference,
    /// Specialized-NN (and filter) training.
    Training,
    /// Cheap filter evaluation (content / temporal / spatial filters, UDF lifting).
    Filter,
    /// Video decode / ingestion.
    Decode,
    /// Anything else.
    Other,
}

impl CostCategory {
    /// All categories in display order.
    pub const ALL: [CostCategory; 6] = [
        CostCategory::Detection,
        CostCategory::SpecializedInference,
        CostCategory::Training,
        CostCategory::Filter,
        CostCategory::Decode,
        CostCategory::Other,
    ];

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CostCategory::Detection => "detection",
            CostCategory::SpecializedInference => "specialized",
            CostCategory::Training => "training",
            CostCategory::Filter => "filter",
            CostCategory::Decode => "decode",
            CostCategory::Other => "other",
        }
    }
}

/// Per-category accumulated simulated time, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Seconds spent in full object detection.
    pub detection: f64,
    /// Seconds spent in specialized-NN inference.
    pub specialized: f64,
    /// Seconds spent training models.
    pub training: f64,
    /// Seconds spent in cheap filters.
    pub filter: f64,
    /// Seconds spent decoding video.
    pub decode: f64,
    /// Seconds spent elsewhere.
    pub other: f64,
}

impl CostBreakdown {
    /// Total simulated seconds across all categories.
    pub fn total(&self) -> f64 {
        self.detection + self.specialized + self.training + self.filter + self.decode + self.other
    }

    /// Total excluding training time — the paper's "BlazeIt (no train)" accounting,
    /// which assumes specialized models were indexed ahead of time.
    pub fn total_excluding_training(&self) -> f64 {
        self.total() - self.training
    }

    fn slot(&mut self, category: CostCategory) -> &mut f64 {
        match category {
            CostCategory::Detection => &mut self.detection,
            CostCategory::SpecializedInference => &mut self.specialized,
            CostCategory::Training => &mut self.training,
            CostCategory::Filter => &mut self.filter,
            CostCategory::Decode => &mut self.decode,
            CostCategory::Other => &mut self.other,
        }
    }

    /// Reads one category.
    pub fn get(&self, category: CostCategory) -> f64 {
        match category {
            CostCategory::Detection => self.detection,
            CostCategory::SpecializedInference => self.specialized,
            CostCategory::Training => self.training,
            CostCategory::Filter => self.filter,
            CostCategory::Decode => self.decode,
            CostCategory::Other => self.other,
        }
    }

    /// The difference `self - earlier`, category by category.
    pub fn since(&self, earlier: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            detection: self.detection - earlier.detection,
            specialized: self.specialized - earlier.specialized,
            training: self.training - earlier.training,
            filter: self.filter - earlier.filter,
            decode: self.decode - earlier.decode,
            other: self.other - earlier.other,
        }
    }

    /// The sum `self + other`, category by category. [`SimClock::breakdown`]
    /// folds the per-tag ledgers with exactly this operation in ascending tag
    /// order, so callers that repeat the same fold over
    /// [`SimClock::breakdown_for`] reproduce the global totals bit for bit.
    pub fn plus(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            detection: self.detection + other.detection,
            specialized: self.specialized + other.specialized,
            training: self.training + other.training,
            filter: self.filter + other.filter,
            decode: self.decode + other.decode,
            other: self.other + other.other,
        }
    }
}

/// A thread-safe simulated clock shared by detectors, models, filters and the engine.
///
/// The clock keeps one [`CostBreakdown`] ledger per *charge tag* — an opaque
/// `u64` the serving layer assigns per session. Library callers never set a
/// tag and charge ledger 0; the serving layer wraps each query's execution in
/// [`SimClock::with_charge_tag`] so concurrent sessions sharing one catalog get
/// honest per-session cost attribution. The global view ([`breakdown`]) is
/// *derived* from the ledgers (folded with [`CostBreakdown::plus`] in
/// ascending tag order), so the per-tag ledgers sum to the global clock
/// exactly — not merely to within floating-point noise.
///
/// [`breakdown`]: SimClock::breakdown
#[derive(Debug, Default)]
pub struct SimClock {
    ledgers: Mutex<BTreeMap<u64, CostBreakdown>>,
}

impl SimClock {
    /// Creates a fresh clock at zero.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// The charge tag active on this thread (0 when untagged).
    pub fn charge_tag() -> u64 {
        CURRENT_TAG.with(Cell::get)
    }

    /// Runs `f` with `tag` as this thread's charge tag, restoring the previous
    /// tag afterwards (including on unwind). The `nn::parallel` pool uses this
    /// to carry the submitting session's tag onto worker threads, so fan-out
    /// work is attributed to the session that asked for it.
    pub fn with_charge_tag<R>(tag: u64, f: impl FnOnce() -> R) -> R {
        struct Restore(u64);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_TAG.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_TAG.with(|c| c.replace(tag)));
        f()
    }

    /// Sets this thread's charge tag and returns the previous one. The raw
    /// sibling of [`SimClock::with_charge_tag`] for callers whose scope is a
    /// value lifetime rather than a closure — a `Drop` guard (the trace
    /// collector's span guards) swaps its tag in on construction and must swap
    /// the previous tag back in its own `drop`, which a closure cannot express.
    /// Callers own the restore obligation `with_charge_tag` discharges
    /// automatically.
    pub fn swap_charge_tag(tag: u64) -> u64 {
        CURRENT_TAG.with(|c| c.replace(tag))
    }

    /// Folds the ledger of `from` into the ledger of `into` (with
    /// [`CostBreakdown::plus`]) and removes `from`, all under one lock
    /// acquisition. The trace collector gives every span a private tag and
    /// re-attributes each span's charges to the enclosing session's ledger by
    /// merging in ascending span order — the same fold [`SimClock::breakdown`]
    /// performs — so a trace's per-span costs sum to the session's ledger
    /// delta *exactly*, not merely within floating-point noise. A `from` tag
    /// with no charges is a no-op; merging a tag into itself is also a no-op.
    pub fn merge_tag(&self, from: u64, into: u64) {
        if from == into {
            return;
        }
        let mut ledgers = self.ledgers.lock();
        let Some(charged) = ledgers.remove(&from) else { return };
        let slot = ledgers.entry(into).or_default();
        *slot = slot.plus(&charged);
    }

    /// Charges `seconds` of simulated time to `category`, on the ledger of
    /// this thread's current charge tag.
    ///
    /// Negative or non-finite charges are ignored (they would indicate a bug upstream
    /// and must never corrupt the experiment accounting).
    pub fn charge(&self, category: CostCategory, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            let tag = Self::charge_tag();
            *self.ledgers.lock().entry(tag).or_default().slot(category) += seconds;
        }
    }

    /// A snapshot of the per-category totals across every charge tag.
    pub fn breakdown(&self) -> CostBreakdown {
        self.ledgers.lock().values().fold(CostBreakdown::default(), |acc, ledger| acc.plus(ledger))
    }

    /// A snapshot of the totals charged under `tag` alone.
    pub fn breakdown_for(&self, tag: u64) -> CostBreakdown {
        self.ledgers.lock().get(&tag).copied().unwrap_or_default()
    }

    /// The tags with at least one charge, in ascending order — the same order
    /// [`breakdown`](SimClock::breakdown) folds them in.
    pub fn charged_tags(&self) -> Vec<u64> {
        self.ledgers.lock().keys().copied().collect()
    }

    /// Total simulated seconds so far.
    pub fn total(&self) -> f64 {
        self.breakdown().total()
    }

    /// Resets the clock to zero, dropping every per-tag ledger.
    pub fn reset(&self) {
        self.ledgers.lock().clear();
    }
}

/// Throughput constants for the simulated pipeline (Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Specialized-NN inference throughput in frames per second (~10,000 in the paper).
    pub specialized_fps: f64,
    /// Specialized-NN training throughput in frames per second (forward + backward).
    pub training_fps: f64,
    /// Cheap-filter throughput in frames per second (~100,000 in the paper).
    pub filter_fps: f64,
    /// Video decode throughput in frames per second (excluded from the paper's
    /// runtimes; tracked separately here and likewise excluded from reports).
    pub decode_fps: f64,
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile {
            specialized_fps: 10_000.0,
            training_fps: 2_500.0,
            filter_fps: 100_000.0,
            decode_fps: 1_000.0,
        }
    }
}

impl CostProfile {
    /// Cost of one specialized-NN inference, in seconds.
    pub fn specialized_inference_cost(&self) -> f64 {
        1.0 / self.specialized_fps
    }

    /// Cost of one training example (one forward+backward pass), in seconds.
    pub fn training_cost_per_example(&self) -> f64 {
        1.0 / self.training_fps
    }

    /// Cost of one filter evaluation, in seconds.
    pub fn filter_cost(&self) -> f64 {
        1.0 / self.filter_fps
    }

    /// Cost of decoding one frame, in seconds.
    pub fn decode_cost(&self) -> f64 {
        1.0 / self.decode_fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Detection, 1.5);
        clock.charge(CostCategory::Detection, 0.5);
        clock.charge(CostCategory::Filter, 0.25);
        assert!((clock.total() - 2.25).abs() < 1e-12);
        let b = clock.breakdown();
        assert!((b.detection - 2.0).abs() < 1e-12);
        assert!((b.filter - 0.25).abs() < 1e-12);
        assert_eq!(b.training, 0.0);
    }

    #[test]
    fn invalid_charges_ignored() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Other, -5.0);
        clock.charge(CostCategory::Other, f64::NAN);
        clock.charge(CostCategory::Other, f64::INFINITY);
        assert_eq!(clock.total(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Training, 10.0);
        clock.reset();
        assert_eq!(clock.total(), 0.0);
    }

    #[test]
    fn breakdown_since() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Detection, 1.0);
        let snap = clock.breakdown();
        clock.charge(CostCategory::Detection, 2.0);
        clock.charge(CostCategory::Training, 3.0);
        let delta = clock.breakdown().since(&snap);
        assert!((delta.detection - 2.0).abs() < 1e-12);
        assert!((delta.training - 3.0).abs() < 1e-12);
        assert!((delta.total() - 5.0).abs() < 1e-12);
        assert!((delta.total_excluding_training() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_profile_matches_paper_ordering() {
        let p = CostProfile::default();
        // Filters are cheaper than specialized NNs, which are vastly cheaper than
        // detection (detection cost lives in DetectionMethod).
        assert!(p.filter_cost() < p.specialized_inference_cost());
        assert!(p.specialized_inference_cost() < 1.0 / 3.0);
        assert!(p.training_cost_per_example() > p.specialized_inference_cost());
    }

    #[test]
    fn concurrent_charges_are_not_lost() {
        let clock = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&clock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.charge(CostCategory::Filter, 0.001);
                    }
                });
            }
        });
        assert!((clock.total() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn charge_tag_scopes_nest_and_restore() {
        assert_eq!(SimClock::charge_tag(), 0);
        let observed = SimClock::with_charge_tag(7, || {
            let inner = SimClock::with_charge_tag(9, SimClock::charge_tag);
            (SimClock::charge_tag(), inner)
        });
        assert_eq!(observed, (7, 9));
        assert_eq!(SimClock::charge_tag(), 0);

        // The previous tag is restored even when the scope unwinds.
        let clock = SimClock::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SimClock::with_charge_tag(3, || {
                clock.charge(CostCategory::Other, 1.0);
                panic!("mid-scope unwind")
            })
        }));
        assert!(outcome.is_err());
        assert_eq!(SimClock::charge_tag(), 0);
        assert_eq!(clock.breakdown_for(3).other, 1.0);
    }

    #[test]
    fn swap_charge_tag_is_the_raw_pair_of_with_charge_tag() {
        assert_eq!(SimClock::charge_tag(), 0);
        let prev = SimClock::swap_charge_tag(41);
        assert_eq!(prev, 0);
        assert_eq!(SimClock::charge_tag(), 41);
        let prev = SimClock::swap_charge_tag(prev);
        assert_eq!(prev, 41);
        assert_eq!(SimClock::charge_tag(), 0);
    }

    /// Merging per-span tags into an ambient tag in ascending span order must
    /// reproduce, bitwise, the fold a direct sum of the span ledgers computes —
    /// the exactness contract EXPLAIN ANALYZE's trace totals rely on.
    #[test]
    fn merge_tag_folds_exactly_and_removes_the_source() {
        let clock = SimClock::new();
        let span_tags = [100u64, 101, 102];
        for (i, &tag) in span_tags.iter().enumerate() {
            SimClock::with_charge_tag(tag, || {
                // Awkward decimals again: exactness must come from fold order.
                clock.charge(CostCategory::SpecializedInference, 0.1 + i as f64 * 1e-7);
                clock.charge(CostCategory::Detection, 0.3 + i as f64 * 1e-9);
            });
        }
        let expected = span_tags
            .iter()
            .map(|&t| clock.breakdown_for(t))
            .fold(CostBreakdown::default(), |acc, b| acc.plus(&b));
        for &tag in &span_tags {
            clock.merge_tag(tag, 7);
        }
        let merged = clock.breakdown_for(7);
        for category in CostCategory::ALL {
            assert_eq!(merged.get(category), expected.get(category), "{}", category.label());
        }
        assert_eq!(clock.charged_tags(), vec![7], "merged tags are removed");

        // Merging an uncharged tag, or a tag into itself, changes nothing.
        clock.merge_tag(999, 7);
        clock.merge_tag(7, 7);
        assert_eq!(clock.breakdown_for(7), merged);
        assert_eq!(clock.charged_tags(), vec![7]);
    }

    /// The satellite invariant: per-tag ledgers sum to the global clock
    /// **exactly** (bitwise `==` per category, not within an epsilon). The
    /// global breakdown is derived by folding the ledgers in ascending tag
    /// order, so repeating that fold over `breakdown_for` must reproduce it.
    #[test]
    fn tagged_ledgers_sum_to_the_global_clock_exactly() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Decode, 0.125); // untagged → tag 0
        std::thread::scope(|s| {
            for tag in 1..=4u64 {
                let c = Arc::clone(&clock);
                s.spawn(move || {
                    SimClock::with_charge_tag(tag, || {
                        for i in 0..100 {
                            // Deliberately awkward decimals: exactness must
                            // come from the fold order, not from round floats.
                            c.charge(CostCategory::SpecializedInference, 0.1 + (i as f64) * 1e-7);
                            c.charge(CostCategory::Training, 0.3);
                        }
                    });
                });
            }
        });

        let tags = clock.charged_tags();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        let summed = tags
            .iter()
            .map(|&t| clock.breakdown_for(t))
            .fold(CostBreakdown::default(), |acc, b| acc.plus(&b));
        let global = clock.breakdown();
        for category in CostCategory::ALL {
            assert_eq!(
                summed.get(category),
                global.get(category),
                "ledger sum must equal the global clock exactly for {}",
                category.label()
            );
        }
        assert!(clock.breakdown_for(1).specialized > 0.0);
        assert_eq!(clock.breakdown_for(0).decode, 0.125);
        assert_eq!(clock.breakdown_for(99), CostBreakdown::default());
    }
}
