//! The simulated object detector.
//!
//! The detector observes the synthetic scene's ground truth through a noise model:
//! objects can be missed (more likely when small or partially visible), spurious
//! detections can appear, bounding boxes are jittered, and each detection carries a
//! confidence score. Detections below the configured confidence threshold (Table 3
//! assigns 0.2 to taipei's FGFA and 0.8 to the Mask R-CNN streams) are discarded —
//! exactly the preprocessing the paper applies.
//!
//! Determinism: the noise for a given `(video seed, day, frame, method)` tuple is fixed,
//! so repeated detections of the same frame agree, as they would when caching a real
//! detector's output.

use crate::clock::{CostCategory, SimClock};
use crate::detector::{Detection, ObjectDetector};
use crate::methods::DetectionMethod;
use blazeit_videostore::ingest::detection_cost_fraction;
use blazeit_videostore::{BoundingBox, FrameIndex, GroundTruthObject, ObjectClass, Video};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Parameters of the detection noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Base probability of missing a fully-visible object.
    pub base_miss_rate: f64,
    /// How strongly low visibility (small / clipped objects) increases the miss rate.
    pub visibility_miss_scale: f64,
    /// Expected number of spurious detections per frame (before thresholding).
    pub spurious_rate: f64,
    /// Standard deviation of box jitter as a fraction of object size.
    pub box_jitter: f32,
    /// Mean confidence assigned to a true detection of a fully-visible object.
    pub confidence_mean: f64,
    /// Standard deviation of the confidence noise.
    pub confidence_std: f64,
}

impl NoiseModel {
    /// The noise model implied by a detection method's accuracy characteristics.
    pub fn for_method(method: DetectionMethod) -> NoiseModel {
        NoiseModel {
            base_miss_rate: method.base_miss_rate(),
            visibility_miss_scale: 0.6,
            spurious_rate: method.spurious_rate(),
            box_jitter: method.box_jitter(),
            confidence_mean: 0.95,
            confidence_std: 0.08,
        }
    }

    /// A perfectly accurate, noiseless model (useful in tests).
    pub fn perfect() -> NoiseModel {
        NoiseModel {
            base_miss_rate: 0.0,
            visibility_miss_scale: 0.0,
            spurious_rate: 0.0,
            box_jitter: 0.0,
            confidence_mean: 0.99,
            confidence_std: 0.0,
        }
    }
}

/// A simulated object detector over synthetic video.
#[derive(Debug, Clone)]
pub struct SimulatedDetector {
    method: DetectionMethod,
    noise: NoiseModel,
    threshold: f32,
    clock: Arc<SimClock>,
}

impl SimulatedDetector {
    /// Creates a detector for `method` with the given confidence threshold, charging
    /// simulated time to `clock`.
    pub fn new(method: DetectionMethod, threshold: f32, clock: Arc<SimClock>) -> Self {
        SimulatedDetector { method, noise: NoiseModel::for_method(method), threshold, clock }
    }

    /// Overrides the noise model (used by tests and ablations).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The detection method this detector simulates.
    pub fn method(&self) -> DetectionMethod {
        self.method
    }

    /// The confidence threshold applied to detections.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    fn frame_rng(&self, video: &Video, frame: FrameIndex) -> StdRng {
        let cfg = video.config();
        let mut seed = cfg.seed ^ 0xD6E8_FEB8_6659_FD93u64;
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(cfg.day as u64);
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(frame);
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(self.method as u64);
        StdRng::seed_from_u64(seed)
    }

    fn feature_embedding(obj_class: ObjectClass, bbox: &BoundingBox, confidence: f32) -> Vec<f32> {
        vec![
            obj_class.index() as f32 / 8.0,
            bbox.width() / 1000.0,
            bbox.height() / 1000.0,
            bbox.area() / 1.0e6,
            bbox.center().x / 1000.0,
            bbox.center().y / 1000.0,
            confidence,
            (bbox.width() / bbox.height().max(1.0)).min(8.0),
        ]
    }

    fn observe(&self, rng: &mut StdRng, gt: &GroundTruthObject) -> Option<Detection> {
        let miss_prob = (self.noise.base_miss_rate
            + self.noise.visibility_miss_scale * (1.0 - gt.visibility as f64))
            .clamp(0.0, 0.98);
        if rng.gen_bool(miss_prob) {
            return None;
        }
        // Jitter the box.
        let jitter = self.noise.box_jitter;
        let dx = rng.gen_range(-1.0..1.0) * jitter * gt.bbox.width();
        let dy = rng.gen_range(-1.0..1.0) * jitter * gt.bbox.height();
        let dw = 1.0 + rng.gen_range(-1.0..1.0) * jitter;
        let dh = 1.0 + rng.gen_range(-1.0..1.0) * jitter;
        let center = gt.bbox.center();
        let bbox = BoundingBox::from_center(
            blazeit_videostore::Point::new(center.x + dx, center.y + dy),
            gt.bbox.width() * dw,
            gt.bbox.height() * dh,
        );
        // Confidence degrades with visibility.
        let conf_mean = self.noise.confidence_mean * (0.4 + 0.6 * gt.visibility as f64);
        let confidence = (conf_mean + rng.gen_range(-1.0..1.0) * self.noise.confidence_std)
            .clamp(0.01, 0.999) as f32;
        let features = Self::feature_embedding(gt.class, &bbox, confidence);
        Some(Detection { class: gt.class, bbox, confidence, features })
    }

    fn spurious(&self, rng: &mut StdRng, video: &Video) -> Vec<Detection> {
        let mut out = Vec::new();
        let (width, height) = video.resolution();
        let expected = self.noise.spurious_rate;
        // Bernoulli approximation of a Poisson with small rate: at most two per frame.
        let n = if rng.gen_bool(expected.clamp(0.0, 1.0)) { 1 } else { 0 }
            + if rng.gen_bool((expected * expected / 2.0).clamp(0.0, 1.0)) { 1 } else { 0 };
        for _ in 0..n {
            // blazeit-lint: allow(panic-site::index) -- the index is drawn from
            // gen_range(0..ALL.len()), in range by construction
            let class = ObjectClass::ALL[rng.gen_range(0..ObjectClass::ALL.len())];
            let w = rng.gen_range(30.0..200.0);
            let h = rng.gen_range(30.0..150.0);
            let x = rng.gen_range(0.0..width.max(1.0));
            let y = rng.gen_range(0.0..height.max(1.0));
            let bbox = BoundingBox::new(x, y, (x + w).min(width), (y + h).min(height));
            // Spurious detections are mostly low-confidence, so realistic thresholds
            // (0.8) remove almost all of them while a permissive threshold (0.2) keeps
            // some — matching why Table 3 tunes the threshold per stream.
            let confidence = rng.gen_range(0.05..0.6) as f32;
            let features = Self::feature_embedding(class, &bbox, confidence);
            out.push(Detection { class, bbox, confidence, features });
        }
        out
    }

    /// Detects objects in `frame`, restricted to an optional region of interest.
    ///
    /// Only detections whose box center lies inside the region are returned, and the
    /// simulated cost is scaled by the region's detector-input area (smaller, squarer
    /// regions are cheaper — the basis of the spatial filter in Section 8).
    pub fn detect_in_region(
        &self,
        video: &Video,
        frame: FrameIndex,
        region: Option<&BoundingBox>,
    ) -> Vec<Detection> {
        let (width, height) = video.resolution();
        let frac = detection_cost_fraction(width, height, region);
        self.clock.charge(
            CostCategory::Detection,
            self.method.cost_per_frame_secs() * self.resolution_cost_scale(video) * frac,
        );
        self.detect_uncharged(video, frame, region)
    }

    /// Runs detection on a batch of frames restricted to an optional region of
    /// interest — the region-aware sibling of [`ObjectDetector::detect_batch`].
    ///
    /// Results and total simulated cost are identical to calling
    /// [`SimulatedDetector::detect_in_region`] per frame: the clock is charged
    /// once for the whole batch (same region cost fraction), then each frame's
    /// detections are generated deterministically. This is what lets the
    /// selection executor's filtered scan pipeline its detector calls through a
    /// prefetch window without changing what any query pays.
    pub fn detect_batch_in_region(
        &self,
        video: &Video,
        frames: &[FrameIndex],
        region: Option<&BoundingBox>,
    ) -> Vec<Vec<Detection>> {
        let (width, height) = video.resolution();
        let frac = detection_cost_fraction(width, height, region);
        self.clock.charge(
            CostCategory::Detection,
            frames.len() as f64
                * self.method.cost_per_frame_secs()
                * self.resolution_cost_scale(video)
                * frac,
        );
        frames.iter().map(|&frame| self.detect_uncharged(video, frame, region)).collect()
    }

    /// Generates one frame's detections without touching the clock (the caller
    /// has already charged for it, possibly as part of a batch).
    fn detect_uncharged(
        &self,
        video: &Video,
        frame: FrameIndex,
        region: Option<&BoundingBox>,
    ) -> Vec<Detection> {
        let mut rng = self.frame_rng(video, frame);
        let ground_truth = video.scene().visible_at(frame);
        let mut detections: Vec<Detection> =
            ground_truth.iter().filter_map(|gt| self.observe(&mut rng, gt)).collect();
        detections.extend(self.spurious(&mut rng, video));
        detections.retain(|d| d.confidence >= self.threshold);
        if let Some(r) = region {
            detections.retain(|d| r.contains(&d.bbox.center()));
        }
        detections.sort_by(|a, b| {
            b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal)
        });
        detections
    }

    /// Cost multiplier for higher-resolution streams.
    ///
    /// Detectors resize to a fixed short edge, so the per-frame cost is roughly
    /// resolution-independent; we keep a mild multiplier for the 4K stream to reflect
    /// the extra decode/resize work the paper mentions for archie.
    fn resolution_cost_scale(&self, video: &Video) -> f64 {
        let (w, _) = video.resolution();
        if w > 3000.0 {
            1.15
        } else {
            1.0
        }
    }
}

impl ObjectDetector for SimulatedDetector {
    fn detect(&self, video: &Video, frame: FrameIndex) -> Vec<Detection> {
        self.detect_in_region(video, frame, None)
    }

    fn detect_batch(&self, video: &Video, frames: &[FrameIndex]) -> Vec<Vec<Detection>> {
        // One clock charge for the whole batch (identical total to per-frame
        // charging) and one resolution/cost lookup, then per-frame generation.
        self.detect_batch_in_region(video, frames, None)
    }

    fn cost_per_frame(&self, video: &Video) -> f64 {
        self.method.cost_per_frame_secs() * self.resolution_cost_scale(video)
    }

    fn name(&self) -> &str {
        self.method.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::{DatasetPreset, DAY_TEST};

    fn video() -> Video {
        DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 3_000).unwrap()
    }

    fn detector(video_threshold: f32) -> (SimulatedDetector, Arc<SimClock>) {
        let clock = SimClock::new();
        (
            SimulatedDetector::new(DetectionMethod::MaskRcnn, video_threshold, Arc::clone(&clock)),
            clock,
        )
    }

    #[test]
    fn detect_batch_matches_per_frame_detection_and_cost() {
        let v = video();
        let (batch_detector, batch_clock) = detector(0.5);
        let (serial_detector, serial_clock) = detector(0.5);
        let frames: Vec<FrameIndex> = (0..300).collect();
        let batched = batch_detector.detect_batch(&v, &frames);
        let serial: Vec<_> = frames.iter().map(|&f| serial_detector.detect(&v, f)).collect();
        assert_eq!(batched, serial);
        assert!(
            (batch_clock.breakdown().detection - serial_clock.breakdown().detection).abs() < 1e-9
        );
        assert!(batch_clock.breakdown().detection > 0.0);
        assert!(batch_detector.detect_batch(&v, &[]).is_empty());
    }

    #[test]
    fn detection_is_deterministic_per_frame() {
        let v = video();
        let (d, _) = detector(0.5);
        assert_eq!(d.detect(&v, 123), d.detect(&v, 123));
    }

    #[test]
    fn detection_charges_the_clock() {
        let v = video();
        let (d, clock) = detector(0.5);
        d.detect(&v, 0);
        d.detect(&v, 1);
        let expected = 2.0 * DetectionMethod::MaskRcnn.cost_per_frame_secs();
        assert!((clock.breakdown().detection - expected).abs() < 1e-9);
    }

    #[test]
    fn perfect_noise_recovers_ground_truth_counts() {
        let v = video();
        let clock = SimClock::new();
        let d = SimulatedDetector::new(DetectionMethod::MaskRcnn, 0.1, clock)
            .with_noise(NoiseModel::perfect());
        for f in (0..3_000).step_by(211) {
            let gt = v.ground_truth(f).unwrap();
            let det = d.detect(&v, f);
            assert_eq!(det.len(), gt.len(), "frame {f}");
        }
    }

    #[test]
    fn noisy_detector_is_well_correlated_with_ground_truth() {
        let v = video();
        let (d, _) = detector(0.5);
        let mut agree = 0usize;
        let mut total = 0usize;
        for f in (0..3_000).step_by(37) {
            let gt = v.ground_truth_count(f, ObjectClass::Car).unwrap();
            let det = d.detect(&v, f).iter().filter(|x| x.class == ObjectClass::Car).count();
            if gt == det {
                agree += 1;
            }
            total += 1;
        }
        assert!(
            agree as f64 / total as f64 > 0.7,
            "detector agrees with ground truth on only {agree}/{total} frames"
        );
    }

    #[test]
    fn high_threshold_removes_low_confidence_detections() {
        let v = video();
        let (permissive, _) = detector(0.05);
        let (strict, _) = detector(0.9);
        let mut n_perm = 0usize;
        let mut n_strict = 0usize;
        for f in (0..3_000).step_by(101) {
            n_perm += permissive.detect(&v, f).len();
            n_strict += strict.detect(&v, f).len();
        }
        assert!(n_strict <= n_perm);
    }

    #[test]
    fn region_restriction_filters_and_costs_less() {
        let v = video();
        let (d, clock) = detector(0.2);
        let region = BoundingBox::new(0.0, 0.0, 720.0, 720.0);
        let full = d.detect(&v, 500);
        let before = clock.breakdown().detection;
        let in_region = d.detect_in_region(&v, 500, Some(&region));
        let region_cost = clock.breakdown().detection - before;
        assert!(in_region.len() <= full.len());
        assert!(region_cost < DetectionMethod::MaskRcnn.cost_per_frame_secs());
        for det in &in_region {
            assert!(region.contains(&det.bbox.center()));
        }
    }

    #[test]
    fn detections_sorted_by_confidence() {
        let v = video();
        let (d, _) = detector(0.1);
        for f in [10u64, 700, 2000] {
            let dets = d.detect(&v, f);
            for pair in dets.windows(2) {
                assert!(pair[0].confidence >= pair[1].confidence);
            }
        }
    }

    #[test]
    fn features_are_populated() {
        let v = video();
        let (d, _) = detector(0.1);
        let dets = d.detect(&v, 1500);
        for det in dets {
            assert_eq!(det.features.len(), 8);
        }
    }
}
