//! The detector interface and its output types.

use blazeit_videostore::{BoundingBox, FrameIndex, ObjectClass, Video};
use serde::{Deserialize, Serialize};

/// One detected object in one frame, as produced by an [`ObjectDetector`].
///
/// This is the detector-facing analogue of the FrameQL row: the query layer combines
/// detections with the entity-resolution method's track ids and UDF outputs to build
/// the full relation of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Object class label.
    pub class: ObjectClass,
    /// Bounding box in nominal-resolution coordinates.
    pub bbox: BoundingBox,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f32,
    /// A small feature embedding for the detection.
    ///
    /// The paper's schema exposes the detector's feature vector for downstream tasks
    /// (e.g. fine-grained classification). The simulated detector emits a compact
    /// deterministic embedding derived from class, size and color so downstream code
    /// exercising the `features` column has something real to consume.
    pub features: Vec<f32>,
}

impl Detection {
    /// Creates a detection with no feature embedding.
    pub fn new(class: ObjectClass, bbox: BoundingBox, confidence: f32) -> Self {
        Detection { class, bbox, confidence, features: Vec::new() }
    }
}

/// Aggregate statistics about detector usage, used by tests and harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Total number of frames the detector was invoked on.
    pub frames_processed: u64,
    /// Total number of detections emitted.
    pub detections_emitted: u64,
}

/// The object-detection interface BlazeIt is configured with.
///
/// Implementations are expected to be deterministic per `(video identity, frame index)`
/// so that repeated queries over the same video see a consistent relation — the same
/// property real cached detector outputs would have.
pub trait ObjectDetector: Send + Sync {
    /// Runs detection on one frame of `video` and returns the surviving detections
    /// (after the method's confidence threshold).
    fn detect(&self, video: &Video, frame: FrameIndex) -> Vec<Detection>;

    /// Runs detection on a batch of frames, returning one detection list per
    /// frame (same order as `frames`).
    ///
    /// Results and total simulated cost are identical to calling
    /// [`ObjectDetector::detect`] per frame; implementations may amortize
    /// bookkeeping (e.g. charge their clock once per batch), which is what makes
    /// full-video baseline scans cheap to drive. The default implementation just
    /// loops.
    fn detect_batch(&self, video: &Video, frames: &[FrameIndex]) -> Vec<Vec<Detection>> {
        frames.iter().map(|&frame| self.detect(video, frame)).collect()
    }

    /// The simulated cost, in GPU-seconds, of one invocation on a full frame of `video`.
    fn cost_per_frame(&self, video: &Video) -> f64;

    /// A short human-readable name (e.g. `"mask-rcnn"`).
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_construction() {
        let d = Detection::new(ObjectClass::Car, BoundingBox::new(0.0, 0.0, 10.0, 10.0), 0.9);
        assert_eq!(d.class, ObjectClass::Car);
        assert!(d.features.is_empty());
        assert!((d.confidence - 0.9).abs() < 1e-6);
    }

    #[test]
    fn stats_default_is_zero() {
        let s = DetectorStats::default();
        assert_eq!(s.frames_processed, 0);
        assert_eq!(s.detections_emitted, 0);
    }
}
