//! Per-frame, per-class count helpers.
//!
//! BlazeIt's aggregation and scrubbing optimizations operate on per-frame object
//! counts. [`CountVector`] is a compact, fixed-size count per class used both as the
//! label for training specialized NNs and as the statistic estimated by the samplers.

// blazeit-lint: allow-file(panic-site::index) -- counts is [u16; ObjectClass::ALL.len()] indexed by
// ObjectClass::index(), the variant's position in ALL

use crate::detector::Detection;
use blazeit_videostore::{GroundTruthObject, ObjectClass};
use serde::{Deserialize, Serialize};

/// Counts of objects per class in a single frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CountVector {
    counts: [u16; ObjectClass::ALL.len()],
}

impl CountVector {
    /// An all-zero count vector.
    pub fn zero() -> Self {
        CountVector::default()
    }

    /// Builds a count vector from detections.
    pub fn from_detections(detections: &[Detection]) -> Self {
        let mut v = CountVector::default();
        for d in detections {
            v.increment(d.class);
        }
        v
    }

    /// Builds a count vector from ground-truth objects.
    pub fn from_ground_truth(objects: &[GroundTruthObject]) -> Self {
        let mut v = CountVector::default();
        for o in objects {
            v.increment(o.class);
        }
        v
    }

    /// Increments the count for `class` (saturating).
    pub fn increment(&mut self, class: ObjectClass) {
        let i = class.index();
        self.counts[i] = self.counts[i].saturating_add(1);
    }

    /// The count for `class`.
    pub fn get(&self, class: ObjectClass) -> usize {
        self.counts[class.index()] as usize
    }

    /// Sets the count for `class`.
    pub fn set(&mut self, class: ObjectClass, count: usize) {
        self.counts[class.index()] = count.min(u16::MAX as usize) as u16;
    }

    /// Total number of objects across all classes.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Whether the frame satisfies "at least `n` objects of `class`".
    pub fn at_least(&self, class: ObjectClass, n: usize) -> bool {
        self.get(class) >= n
    }

    /// Whether the frame satisfies *all* of the given `(class, at-least-n)` requirements
    /// — the multi-class scrubbing predicate of Section 7.1 (e.g. ≥1 bus AND ≥5 cars).
    pub fn satisfies_all(&self, requirements: &[(ObjectClass, usize)]) -> bool {
        requirements.iter().all(|&(class, n)| self.at_least(class, n))
    }

    /// Iterates over `(class, count)` pairs with non-zero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ObjectClass, usize)> + '_ {
        ObjectClass::ALL.iter().copied().map(move |c| (c, self.get(c))).filter(|&(_, n)| n > 0)
    }
}

/// Counts detections of one class.
pub fn count_class(detections: &[Detection], class: ObjectClass) -> usize {
    detections.iter().filter(|d| d.class == class).count()
}

/// Counts detections of every class.
pub fn count_classes(detections: &[Detection]) -> CountVector {
    CountVector::from_detections(detections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::BoundingBox;

    fn det(class: ObjectClass) -> Detection {
        Detection::new(class, BoundingBox::new(0.0, 0.0, 10.0, 10.0), 0.9)
    }

    #[test]
    fn counting_from_detections() {
        let dets = vec![det(ObjectClass::Car), det(ObjectClass::Car), det(ObjectClass::Bus)];
        let v = count_classes(&dets);
        assert_eq!(v.get(ObjectClass::Car), 2);
        assert_eq!(v.get(ObjectClass::Bus), 1);
        assert_eq!(v.get(ObjectClass::Boat), 0);
        assert_eq!(v.total(), 3);
        assert_eq!(count_class(&dets, ObjectClass::Car), 2);
    }

    #[test]
    fn at_least_and_multi_class_predicates() {
        let dets = vec![
            det(ObjectClass::Car),
            det(ObjectClass::Car),
            det(ObjectClass::Car),
            det(ObjectClass::Bus),
        ];
        let v = count_classes(&dets);
        assert!(v.at_least(ObjectClass::Car, 3));
        assert!(!v.at_least(ObjectClass::Car, 4));
        assert!(v.satisfies_all(&[(ObjectClass::Bus, 1), (ObjectClass::Car, 3)]));
        assert!(!v.satisfies_all(&[(ObjectClass::Bus, 2), (ObjectClass::Car, 3)]));
        assert!(v.satisfies_all(&[]));
    }

    #[test]
    fn set_and_iter_nonzero() {
        let mut v = CountVector::zero();
        v.set(ObjectClass::Boat, 7);
        v.set(ObjectClass::Bird, 2);
        let nz: Vec<_> = v.iter_nonzero().collect();
        assert_eq!(nz.len(), 2);
        assert!(nz.contains(&(ObjectClass::Boat, 7)));
        assert!(nz.contains(&(ObjectClass::Bird, 2)));
    }

    #[test]
    fn saturating_increment() {
        let mut v = CountVector::zero();
        v.set(ObjectClass::Car, u16::MAX as usize);
        v.increment(ObjectClass::Car);
        assert_eq!(v.get(ObjectClass::Car), u16::MAX as usize);
    }
}
