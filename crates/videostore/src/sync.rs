//! The workspace sync shim: one import path for every synchronization
//! primitive, so the whole engine can be put under the `blazeit-model`
//! schedule-exploring checker by flipping one cargo feature.
//!
//! | Type | normal build | `--features model` |
//! |------|--------------|--------------------|
//! | [`Mutex`] / [`MutexGuard`] | `std::sync::Mutex` (poison-ignoring) | scheduler-arbitrated |
//! | [`Condvar`] | `std::sync::Condvar` | explored; timeouts never fire |
//! | [`RwLock`] + guards | `std::sync::RwLock` (poison-ignoring) | scheduler-arbitrated |
//! | [`AtomicU64`] / [`Ordering`] | `std::sync::atomic` re-export | every access a schedule point (SC) |
//! | [`OnceLock`] | `std::sync::OnceLock` re-export | init race explored |
//!
//! Production code must construct locks and atomics through this module — the
//! `sync-primitive` check in `blazeit-lint` enforces it — because only shimmed
//! primitives become scheduling points of the checker; a raw `std::sync` lock
//! would be invisible to exploration and silently shrink the verified surface.
//! `std::sync::Arc`, `mpsc` channels, and `atomic::Ordering` values stay plain
//! `std`: they carry no scheduling decisions of their own.
//!
//! In normal builds the pass-through wrappers below are `#[inline]` newtypes
//! with no extra state — the same zero-cost pattern as the vendored
//! `parking_lot` — and the `model` scheduler code is not compiled in at all,
//! which [`MODEL_COMPILED_IN`] witnesses (CI runs
//! `sync::tests::model_shim_compiles_out_by_default` in release mode to pin
//! that).
//!
//! [`Mutex::ranked`] enrolls a lock in the documented
//! `admission → serve_cache → serve_slot → monitor → live_index → nn_cache → video → obs_trace` hierarchy; ranks are inert here
//! in normal builds (the debug tracker in `blazeit_core::lockorder` still
//! asserts order at `lock_ordered` call sites) and become a hard oracle under
//! the model: any schedule that acquires out of order fails with the exact
//! interleaving.

// The whole point of this module is to wrap the raw primitives, so it is the
// one production file allowed to name them.
// blazeit-lint: allow-file(sync-primitive) -- this module is the shim itself; it wraps the raw std primitives everything else must come through

/// `true` when the `model` feature routed this build's sync primitives through
/// the checker's scheduler. Release builds must see `false` — asserted at
/// compile time by `model_shim_compiles_out_by_default`, which CI runs in
/// release mode (mirroring the fault-injection `COMPILED_IN` witness).
pub const MODEL_COMPILED_IN: bool = cfg!(feature = "model");

#[cfg(feature = "model")]
pub use blazeit_model::sync::{
    AtomicU64, Condvar, Mutex, MutexGuard, OnceLock, Ordering, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

#[cfg(not(feature = "model"))]
pub use passthrough::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(not(feature = "model"))]
pub use std::sync::OnceLock;

#[cfg(not(feature = "model"))]
mod passthrough {
    //! Zero-cost normal-build implementations: thin poison-ignoring newtypes
    //! over `std::sync`, API-identical to `blazeit_model::sync`.

    use std::fmt;
    use std::sync::{PoisonError, TryLockError};
    use std::time::Duration;

    /// Guard returned by [`Mutex::lock`] (the plain std guard in this build).
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    /// Guard returned by [`RwLock::read`].
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Guard returned by [`RwLock::write`].
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    /// A mutual-exclusion lock; poison-ignoring like the vendored
    /// `parking_lot` (a panic mid-critical-section is already a test failure,
    /// and degraded-health bookkeeping must keep working afterwards).
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates an unranked mutex.
        #[inline]
        pub const fn new(value: T) -> Mutex<T> {
            Mutex { inner: std::sync::Mutex::new(value) }
        }

        /// Creates a mutex enrolled in the ranked lock hierarchy. The rank is
        /// inert in normal builds (order is asserted by the debug tracker in
        /// `blazeit_core::lockorder` and explored by the model checker).
        #[inline]
        pub const fn ranked(rank: u8, name: &'static str, value: T) -> Mutex<T> {
            let _ = (rank, name);
            Mutex { inner: std::sync::Mutex::new(value) }
        }

        /// Consumes the mutex, returning the protected value.
        #[inline]
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking until it is free.
        #[inline]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Attempts the lock without blocking.
        #[inline]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.inner.try_lock() {
                Ok(guard) => Some(guard),
                Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (the `&mut` proves exclusivity).
        #[inline]
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// A condition variable paired with [`Mutex`] guards.
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// Creates a condvar.
        #[inline]
        pub const fn new() -> Condvar {
            Condvar { inner: std::sync::Condvar::new() }
        }

        /// Releases `guard`'s mutex, parks until notified, then reacquires.
        #[inline]
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.inner.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        /// Like [`wait`](Self::wait) with a timeout; returns the reacquired
        /// guard and whether the wait timed out. (Under the model checker the
        /// timeout never fires, so protocols must not rely on it for
        /// progress — a lost wakeup is reported as a deadlock there.)
        #[inline]
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (guard, result) =
                self.inner.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
            (guard, result.timed_out())
        }

        /// Wakes one parked waiter, if any.
        #[inline]
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every parked waiter.
        #[inline]
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    /// A reader-writer lock; poison-ignoring like [`Mutex`].
    pub struct RwLock<T: ?Sized> {
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Creates an rwlock.
        #[inline]
        pub const fn new(value: T) -> RwLock<T> {
            RwLock { inner: std::sync::RwLock::new(value) }
        }

        /// Consumes the lock, returning the protected value.
        #[inline]
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access.
        #[inline]
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.inner.read().unwrap_or_else(PoisonError::into_inner)
        }

        /// Acquires exclusive write access.
        #[inline]
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.inner.write().unwrap_or_else(PoisonError::into_inner)
        }

        /// Mutable access without locking (the `&mut` proves exclusivity).
        #[inline]
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> RwLock<T> {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("RwLock").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Mirrors `fault::tests::failpoints_compile_out_by_default`: CI runs this
    /// test in a default-feature release build, where the `const` block makes
    /// "the model scheduler is not compiled in" a compile-time fact.
    #[cfg(not(feature = "model"))]
    #[test]
    fn model_shim_compiles_out_by_default() {
        const { assert!(!MODEL_COMPILED_IN) }
    }

    #[test]
    fn mutex_and_condvar_round_trip() {
        let m = Mutex::ranked(6, "video", 1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none());
        }

        let cv = Condvar::new();
        let (guard, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out, "no notifier: the timeout must fire");
        drop(guard);
        cv.notify_one();
        cv.notify_all();
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn atomics_and_once_are_std_compatible() {
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(a.load(Ordering::Relaxed), 3);

        let cell: OnceLock<u32> = OnceLock::new();
        assert_eq!(*cell.get_or_init(|| 5), 5);
        assert_eq!(cell.set(6), Err(6));
        assert_eq!(cell.get(), Some(&5));
    }
}
