//! Ground-truth object tracks.
//!
//! A [`Track`] is one object's continuous appearance in the scene: it enters at some
//! frame, moves along a linear trajectory (with a small amount of jitter), and leaves.
//! Tracks are the unit the scene simulator generates; the per-frame ground truth is
//! derived by asking every track whether (and where) it is visible at that frame.
//!
//! `trackid` in the FrameQL schema corresponds to the id of the track *as recovered by
//! the entity-resolution method* (the motion-IoU tracker in `blazeit-detect`); the
//! ground-truth [`TrackId`] here is what that tracker is evaluated against.

use crate::geometry::{BoundingBox, Point};
use crate::object::{Color, GroundTruthObject, ObjectClass};
use serde::{Deserialize, Serialize};

/// Identifier of a ground-truth track, unique within one video (one "day").
pub type TrackId = u64;

/// A single object's path through the scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Unique id of this track within its video.
    pub id: TrackId,
    /// Object class.
    pub class: ObjectClass,
    /// First frame (inclusive) in which the object is visible.
    pub enter_frame: u64,
    /// Last frame (inclusive) in which the object is visible.
    pub exit_frame: u64,
    /// Center position at `enter_frame`, in nominal coordinates.
    pub start: Point,
    /// Per-frame velocity of the center, in nominal pixels per frame.
    pub velocity: Point,
    /// Object width in nominal pixels.
    pub width: f32,
    /// Object height in nominal pixels.
    pub height: f32,
    /// Dominant color.
    pub color: Color,
    /// Amplitude of deterministic positional wobble (simulates bobbing boats,
    /// weaving bicycles). Zero for most vehicles.
    pub wobble: f32,
}

impl Track {
    /// Number of frames the track is visible for.
    pub fn duration_frames(&self) -> u64 {
        self.exit_frame.saturating_sub(self.enter_frame) + 1
    }

    /// Whether the track is visible at `frame`.
    pub fn visible_at(&self, frame: u64) -> bool {
        frame >= self.enter_frame && frame <= self.exit_frame
    }

    /// Center position at `frame` (meaningful only when [`Track::visible_at`] is true).
    pub fn center_at(&self, frame: u64) -> Point {
        let dt = frame.saturating_sub(self.enter_frame) as f32;
        // A small deterministic wobble makes boats/bicycles drift without needing a
        // per-frame RNG (which would make random access to frames order-dependent).
        let wob_x = self.wobble * (dt * 0.13).sin();
        let wob_y = self.wobble * 0.5 * (dt * 0.07).cos();
        Point::new(
            self.start.x + self.velocity.x * dt + wob_x,
            self.start.y + self.velocity.y * dt + wob_y,
        )
    }

    /// Bounding box at `frame`, before clamping to the frame bounds.
    pub fn bbox_at(&self, frame: u64) -> BoundingBox {
        BoundingBox::from_center(self.center_at(frame), self.width, self.height)
    }

    /// Produces the ground-truth object for `frame`, clamped to a `width x height`
    /// scene, or `None` if the track is not visible (either out of its time interval
    /// or entirely outside the field of view).
    pub fn ground_truth_at(
        &self,
        frame: u64,
        scene_width: f32,
        scene_height: f32,
    ) -> Option<GroundTruthObject> {
        if !self.visible_at(frame) {
            return None;
        }
        let bbox = self.bbox_at(frame);
        if !bbox.visible_in(scene_width, scene_height) {
            return None;
        }
        let clamped = bbox.clamp_to(scene_width, scene_height);
        if clamped.is_empty() {
            return None;
        }
        // Visibility degrades for small apparent size (area relative to the scene) and
        // for objects partially outside the frame.
        let size_frac = (clamped.area() / (scene_width * scene_height)).clamp(0.0, 1.0);
        let size_vis = (size_frac / 0.002).clamp(0.15, 1.0);
        let clip_vis = (clamped.area() / bbox.area().max(1.0)).clamp(0.2, 1.0);
        let visibility = (size_vis * clip_vis).clamp(0.05, 1.0);
        Some(GroundTruthObject {
            track_id: self.id,
            class: self.class,
            bbox: clamped,
            color: self.color,
            visibility,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_track() -> Track {
        Track {
            id: 7,
            class: ObjectClass::Car,
            enter_frame: 100,
            exit_frame: 199,
            start: Point::new(100.0, 360.0),
            velocity: Point::new(5.0, 0.0),
            width: 120.0,
            height: 80.0,
            color: Color::GREY,
            wobble: 0.0,
        }
    }

    #[test]
    fn duration_is_inclusive() {
        assert_eq!(sample_track().duration_frames(), 100);
    }

    #[test]
    fn visibility_window() {
        let t = sample_track();
        assert!(!t.visible_at(99));
        assert!(t.visible_at(100));
        assert!(t.visible_at(199));
        assert!(!t.visible_at(200));
    }

    #[test]
    fn center_moves_linearly() {
        let t = sample_track();
        let c0 = t.center_at(100);
        let c10 = t.center_at(110);
        assert!((c0.x - 100.0).abs() < 1e-5);
        assert!((c10.x - 150.0).abs() < 1e-5);
        assert!((c10.y - c0.y).abs() < 1e-5);
    }

    #[test]
    fn wobble_changes_position_but_stays_bounded() {
        let mut t = sample_track();
        t.wobble = 10.0;
        let c = t.center_at(137);
        let base_x = 100.0 + 5.0 * 37.0;
        assert!((c.x - base_x).abs() <= 10.0 + 1e-4);
        assert!((c.y - 360.0).abs() <= 10.0 + 1e-4);
    }

    #[test]
    fn ground_truth_none_outside_time() {
        let t = sample_track();
        assert!(t.ground_truth_at(50, 1280.0, 720.0).is_none());
    }

    #[test]
    fn ground_truth_none_outside_view() {
        let mut t = sample_track();
        t.start = Point::new(-5000.0, 360.0);
        assert!(t.ground_truth_at(100, 1280.0, 720.0).is_none());
    }

    #[test]
    fn ground_truth_clamped_to_scene() {
        let mut t = sample_track();
        t.start = Point::new(10.0, 360.0); // left edge partially out of view
        let gt = t.ground_truth_at(100, 1280.0, 720.0).unwrap();
        assert!(gt.bbox.xmin >= 0.0);
        assert_eq!(gt.track_id, 7);
        assert_eq!(gt.class, ObjectClass::Car);
    }

    #[test]
    fn small_objects_have_lower_visibility() {
        let mut big = sample_track();
        big.width = 300.0;
        big.height = 200.0;
        let mut small = sample_track();
        small.width = 20.0;
        small.height = 15.0;
        let gt_big = big.ground_truth_at(150, 1280.0, 720.0).unwrap();
        let gt_small = small.ground_truth_at(150, 1280.0, 720.0).unwrap();
        assert!(gt_big.visibility > gt_small.visibility);
    }
}
