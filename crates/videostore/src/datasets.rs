//! Dataset presets mirroring Table 3 of the BlazeIt paper.
//!
//! The paper evaluates on six webcam streams. Each preset here configures the scene
//! simulator so the generated stream matches the paper's reported statistics for that
//! stream: occupancy (fraction of frames containing the queried class), average
//! appearance duration, resolution and frame rate. The number of *distinct* objects
//! then follows from those statistics and the chosen video length.
//!
//! Occupancy is converted to the simulator's mean-concurrent-objects parameter via the
//! Poisson relation `occupancy = 1 - exp(-mean_concurrent)`.
//!
//! Each camera has three "days" of footage, as in the paper: day 0 is used to build the
//! labeled training set, day 1 is the held-out set used for threshold / error
//! estimation, and day 2 is the unseen test data that queries run over.

use crate::render::RenderConfig;
use crate::scene::{ClassProfile, SceneConfig};
use crate::video::{Video, VideoConfig};
use crate::{ObjectClass, Result, VideoError};
use serde::{Deserialize, Serialize};

/// Day index used for the labeled training data.
pub const DAY_TRAIN: u32 = 0;
/// Day index used for the held-out (threshold-estimation) data.
pub const DAY_HELDOUT: u32 = 1;
/// Day index used for the unseen test data.
pub const DAY_TEST: u32 = 2;

/// Converts an occupancy fraction (probability that a frame contains at least one
/// object) into the mean number of concurrent objects under a Poisson count model.
pub fn occupancy_to_mean_concurrent(occupancy: f64) -> f64 {
    let occ = occupancy.clamp(0.0, 0.999_999);
    -(1.0 - occ).ln()
}

/// One of the six named dataset presets from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// Taipei intersection: cars (64.4% occupancy) and buses (11.9%), 720p/30.
    Taipei,
    /// Night-time street: cars (28.1%), 720p/30, dark and noisy.
    NightStreet,
    /// Rialto bridge canal: boats (89.9%), 720p/30.
    Rialto,
    /// Grand canal: boats (57.7%), 1080p/60.
    GrandCanal,
    /// Amsterdam square: cars (44.7%), 720p/30.
    Amsterdam,
    /// "Archie" high-resolution intersection: cars (51.8%, very short appearances), 2160p/30.
    Archie,
}

impl DatasetPreset {
    /// All six presets, in the order Table 3 lists them.
    pub const ALL: [DatasetPreset; 6] = [
        DatasetPreset::Taipei,
        DatasetPreset::NightStreet,
        DatasetPreset::Rialto,
        DatasetPreset::GrandCanal,
        DatasetPreset::Amsterdam,
        DatasetPreset::Archie,
    ];

    /// The stream name used in FrameQL queries (`FROM taipei`).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::Taipei => "taipei",
            DatasetPreset::NightStreet => "night-street",
            DatasetPreset::Rialto => "rialto",
            DatasetPreset::GrandCanal => "grand-canal",
            DatasetPreset::Amsterdam => "amsterdam",
            DatasetPreset::Archie => "archie",
        }
    }

    /// Parses a preset from its stream name (as used in `FROM` clauses).
    pub fn parse(name: &str) -> Result<DatasetPreset> {
        let lower = name.to_ascii_lowercase().replace('_', "-");
        DatasetPreset::ALL
            .iter()
            .copied()
            .find(|p| p.name() == lower)
            .ok_or_else(|| VideoError::UnknownDataset(name.to_string()))
    }

    /// The primary object class the paper queries on this stream.
    pub fn primary_class(&self) -> ObjectClass {
        match self {
            DatasetPreset::Taipei
            | DatasetPreset::NightStreet
            | DatasetPreset::Amsterdam
            | DatasetPreset::Archie => ObjectClass::Car,
            DatasetPreset::Rialto | DatasetPreset::GrandCanal => ObjectClass::Boat,
        }
    }

    /// Frames per second of the stream (Table 3).
    pub fn fps(&self) -> f64 {
        match self {
            DatasetPreset::GrandCanal => 60.0,
            _ => 30.0,
        }
    }

    /// Nominal resolution of the stream (Table 3).
    pub fn resolution(&self) -> (f32, f32) {
        match self {
            DatasetPreset::GrandCanal => (1920.0, 1080.0),
            DatasetPreset::Archie => (3840.0, 2160.0),
            _ => (1280.0, 720.0),
        }
    }

    /// Number of evaluation frames the paper used for this stream (Table 3, in frames).
    pub fn paper_eval_frames(&self) -> u64 {
        match self {
            DatasetPreset::Taipei => 1_188_000,
            DatasetPreset::NightStreet => 973_000,
            DatasetPreset::Rialto => 866_000,
            DatasetPreset::GrandCanal => 1_300_000,
            DatasetPreset::Amsterdam => 1_188_000,
            DatasetPreset::Archie => 1_188_000,
        }
    }

    /// Default number of frames per synthetic day.
    ///
    /// The paper's days are 6-11 hours (≈1M frames); the synthetic default is 30
    /// simulated minutes per day, which preserves every relative comparison while
    /// keeping the full experiment suite runnable on a laptop. Harnesses can request
    /// longer days via [`DatasetPreset::video_config_with_frames`].
    pub fn default_frames(&self) -> u64 {
        (self.fps() * 60.0 * 30.0) as u64
    }

    /// A fixed per-camera RNG seed (so "taipei" is the same stream in every test).
    pub fn seed(&self) -> u64 {
        match self {
            DatasetPreset::Taipei => 0x007A_1901,
            DatasetPreset::NightStreet => 0x007A_1902,
            DatasetPreset::Rialto => 0x007A_1903,
            DatasetPreset::GrandCanal => 0x007A_1904,
            DatasetPreset::Amsterdam => 0x007A_1905,
            DatasetPreset::Archie => 0x007A_1906,
        }
    }

    /// The per-class occupancy / mean-duration targets from Table 3, as
    /// `(class, occupancy, mean duration seconds)`.
    pub fn class_targets(&self) -> Vec<(ObjectClass, f64, f64)> {
        match self {
            DatasetPreset::Taipei => vec![
                (ObjectClass::Car, 0.644, 1.43),
                (ObjectClass::Bus, 0.119, 2.82),
                // A small amount of pedestrian traffic as a confuser class.
                (ObjectClass::Person, 0.05, 2.0),
            ],
            DatasetPreset::NightStreet => {
                vec![(ObjectClass::Car, 0.281, 3.94), (ObjectClass::Person, 0.04, 3.0)]
            }
            DatasetPreset::Rialto => vec![(ObjectClass::Boat, 0.899, 10.7)],
            DatasetPreset::GrandCanal => vec![(ObjectClass::Boat, 0.577, 9.50)],
            DatasetPreset::Amsterdam => vec![
                (ObjectClass::Car, 0.447, 7.88),
                (ObjectClass::Person, 0.08, 4.0),
                (ObjectClass::Bus, 0.03, 6.0),
            ],
            DatasetPreset::Archie => vec![(ObjectClass::Car, 0.518, 0.30)],
        }
    }

    /// The detection confidence threshold Table 3 assigns to this stream.
    pub fn detection_threshold(&self) -> f32 {
        match self {
            DatasetPreset::Taipei => 0.2,
            _ => 0.8,
        }
    }

    fn render_config(&self) -> RenderConfig {
        match self {
            DatasetPreset::NightStreet => RenderConfig::night(),
            DatasetPreset::Rialto | DatasetPreset::GrandCanal => RenderConfig::water(),
            _ => RenderConfig::default(),
        }
    }

    fn class_profile(&self, class: ObjectClass, occupancy: f64, duration: f64) -> ClassProfile {
        let mean_concurrent = occupancy_to_mean_concurrent(occupancy);
        match class {
            ObjectClass::Car => ClassProfile::car(mean_concurrent, duration),
            // ~15% of buses are red tour buses (the content-selection target).
            ObjectClass::Bus => ClassProfile::bus(mean_concurrent, duration, 0.15),
            ObjectClass::Boat => ClassProfile::boat(mean_concurrent, duration),
            ObjectClass::Person => ClassProfile::person(mean_concurrent, duration),
            ObjectClass::Bird => ClassProfile::bird(mean_concurrent, duration),
            _ => ClassProfile { class, ..ClassProfile::car(mean_concurrent, duration) },
        }
    }

    /// The [`SceneConfig`] implementing this preset's Table 3 targets.
    pub fn scene_config(&self) -> SceneConfig {
        let (width, height) = self.resolution();
        let classes = self
            .class_targets()
            .into_iter()
            .map(|(class, occ, dur)| self.class_profile(class, occ, dur))
            .collect();
        SceneConfig {
            width,
            height,
            fps: self.fps(),
            classes,
            diurnal_amplitude: 0.35,
            day_variation: 0.3,
        }
    }

    /// Builds the [`VideoConfig`] for a given day with the default length.
    pub fn video_config(&self, day: u32) -> VideoConfig {
        self.video_config_with_frames(day, self.default_frames())
    }

    /// Builds the [`VideoConfig`] for a given day with an explicit length in frames.
    pub fn video_config_with_frames(&self, day: u32, num_frames: u64) -> VideoConfig {
        VideoConfig {
            name: self.name().to_string(),
            scene: self.scene_config(),
            render: self.render_config(),
            num_frames,
            seed: self.seed(),
            day,
        }
    }

    /// Generates one day of this stream with the default length.
    pub fn generate(&self, day: u32) -> Result<Video> {
        Video::generate(self.video_config(day))
    }

    /// Generates one day of this stream with an explicit length in frames.
    pub fn generate_with_frames(&self, day: u32, num_frames: u64) -> Result<Video> {
        Video::generate(self.video_config_with_frames(day, num_frames))
    }
}

/// Builds a small ornithology-style scene (birds at a feeder), used by the example
/// programs; not part of Table 3 but one of the paper's motivating use cases.
pub fn bird_feeder_config(num_frames: u64, seed: u64, day: u32) -> VideoConfig {
    VideoConfig {
        name: "bird-feeder".into(),
        scene: SceneConfig {
            width: 1280.0,
            height: 720.0,
            fps: 30.0,
            classes: vec![ClassProfile::bird(0.4, 4.0)],
            diurnal_amplitude: 0.4,
            day_variation: 0.3,
        },
        render: RenderConfig::default(),
        num_frames,
        seed,
        day,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_conversion_roundtrips() {
        for occ in [0.05, 0.119, 0.281, 0.447, 0.644, 0.899] {
            let mean = occupancy_to_mean_concurrent(occ);
            let back = 1.0 - (-mean).exp();
            assert!((back - occ).abs() < 1e-9);
        }
    }

    #[test]
    fn occupancy_conversion_monotone() {
        assert!(occupancy_to_mean_concurrent(0.9) > occupancy_to_mean_concurrent(0.5));
        assert!(occupancy_to_mean_concurrent(0.0) == 0.0);
    }

    #[test]
    fn preset_names_roundtrip() {
        for p in DatasetPreset::ALL {
            assert_eq!(DatasetPreset::parse(p.name()).unwrap(), p);
        }
        assert_eq!(DatasetPreset::parse("night_street").unwrap(), DatasetPreset::NightStreet);
        assert!(DatasetPreset::parse("not-a-stream").is_err());
    }

    #[test]
    fn presets_have_expected_metadata() {
        assert_eq!(DatasetPreset::GrandCanal.fps(), 60.0);
        assert_eq!(DatasetPreset::Archie.resolution(), (3840.0, 2160.0));
        assert_eq!(DatasetPreset::Taipei.detection_threshold(), 0.2);
        assert_eq!(DatasetPreset::Rialto.primary_class(), ObjectClass::Boat);
    }

    #[test]
    fn scene_configs_validate() {
        for p in DatasetPreset::ALL {
            p.scene_config().validate().unwrap();
        }
    }

    #[test]
    fn generate_small_day_for_each_preset() {
        for p in DatasetPreset::ALL {
            let video = p.generate_with_frames(DAY_TEST, 2_000).unwrap();
            assert_eq!(video.len(), 2_000);
            assert_eq!(video.name(), p.name());
            // The primary class should appear somewhere in a couple of thousand frames.
            let mut found = false;
            for f in (0..2_000).step_by(50) {
                if video.ground_truth_count(f, p.primary_class()).unwrap() > 0 {
                    found = true;
                    break;
                }
            }
            assert!(found, "no {} found in {}", p.primary_class(), p.name());
        }
    }

    #[test]
    fn different_days_have_different_tracks() {
        let a = DatasetPreset::Taipei.generate_with_frames(DAY_TRAIN, 3_000).unwrap();
        let b = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 3_000).unwrap();
        assert_ne!(a.tracks(), b.tracks());
    }

    #[test]
    fn bird_feeder_scene_generates() {
        let v = Video::generate(bird_feeder_config(1_000, 7, 0)).unwrap();
        assert_eq!(v.name(), "bird-feeder");
    }
}
