//! Per-video statistics: the quantities reported in Table 3 of the paper
//! (occupancy, average appearance duration, distinct object counts) plus the count
//! distributions the scrubbing experiments rely on.

use crate::object::ObjectClass;
use crate::video::Video;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics about one object class in one day of video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// The object class.
    pub class: ObjectClass,
    /// Fraction of frames containing at least one object of the class.
    pub occupancy: f64,
    /// Average duration of an appearance (track length) in seconds.
    pub avg_duration_secs: f64,
    /// Number of distinct tracks of this class.
    pub distinct_count: u64,
    /// Mean number of objects of this class per frame (the FCOUNT ground truth).
    pub mean_per_frame: f64,
    /// Maximum per-frame count observed.
    pub max_per_frame: usize,
    /// Histogram of per-frame counts: `histogram[k]` = number of frames with exactly
    /// `k` objects of the class.
    pub count_histogram: Vec<u64>,
}

impl ClassStats {
    /// Number of frames with at least `n` objects of the class (the scrubbing-query
    /// "instances" count of Table 6).
    pub fn frames_with_at_least(&self, n: usize) -> u64 {
        self.count_histogram.iter().skip(n).sum()
    }

    /// The largest count threshold `n` for which at least `min_instances` frames have
    /// `>= n` objects. Returns `None` if even `n = 1` is too rare.
    ///
    /// The paper "selected rare events with at least 10 instances" (Table 6); this
    /// helper performs that selection against the synthetic streams.
    pub fn rare_event_threshold(&self, min_instances: u64) -> Option<usize> {
        (1..=self.max_per_frame).rev().find(|&n| self.frames_with_at_least(n) >= min_instances)
    }
}

/// Statistics for a whole day of video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoStats {
    /// Stream name.
    pub name: String,
    /// Number of frames analyzed.
    pub num_frames: u64,
    /// Frames per second.
    pub fps: f64,
    /// Length in hours.
    pub length_hours: f64,
    /// Per-class statistics, keyed by class name for stable serialization.
    pub classes: BTreeMap<String, ClassStats>,
}

impl VideoStats {
    /// Computes statistics over every frame of the video's ground truth.
    ///
    /// This scans ground-truth object counts (not pixels), so it is cheap even for
    /// hundreds of thousands of frames.
    pub fn compute(video: &Video) -> VideoStats {
        Self::compute_classes(video, &ObjectClass::ALL)
    }

    /// Computes statistics for a subset of classes.
    pub fn compute_classes(video: &Video, classes: &[ObjectClass]) -> VideoStats {
        let num_frames = video.len();
        let fps = video.fps();
        let mut per_class: BTreeMap<ObjectClass, (Vec<u64>, u64)> = BTreeMap::new();
        for &c in classes {
            per_class.insert(c, (Vec::new(), 0));
        }

        // Count per frame.
        let mut frame_counts: BTreeMap<ObjectClass, Vec<u64>> =
            classes.iter().map(|&c| (c, vec![0u64; 1])).collect();
        let mut occupied: BTreeMap<ObjectClass, u64> = classes.iter().map(|&c| (c, 0)).collect();
        let mut total: BTreeMap<ObjectClass, u64> = classes.iter().map(|&c| (c, 0)).collect();

        for f in 0..num_frames {
            let objects = video.scene().visible_at(f);
            for &c in classes {
                let count = objects.iter().filter(|o| o.class == c).count();
                let hist = frame_counts.entry(c).or_default();
                if count >= hist.len() {
                    hist.resize(count + 1, 0);
                }
                // blazeit-lint: allow(panic-site::index) -- the resize directly above guarantees
                // hist.len() > count
                hist[count] += 1;
                if count > 0 {
                    *occupied.entry(c).or_default() += 1;
                }
                *total.entry(c).or_default() += count as u64;
            }
        }

        // Track durations and distinct counts from the ground-truth tracks.
        for track in video.tracks() {
            if let Some(entry) = per_class.get_mut(&track.class) {
                entry.0.push(track.duration_frames());
                entry.1 += 1;
            }
        }

        let mut out = BTreeMap::new();
        for &c in classes {
            let hist = frame_counts.remove(&c).unwrap_or_default();
            let (durations, distinct) = per_class.remove(&c).unwrap_or((Vec::new(), 0));
            let avg_duration_frames = if durations.is_empty() {
                0.0
            } else {
                durations.iter().sum::<u64>() as f64 / durations.len() as f64
            };
            let occ = occupied.get(&c).copied().unwrap_or(0) as f64 / num_frames.max(1) as f64;
            let mean = total.get(&c).copied().unwrap_or(0) as f64 / num_frames.max(1) as f64;
            let max_per_frame = hist.len().saturating_sub(1);
            out.insert(
                c.name().to_string(),
                ClassStats {
                    class: c,
                    occupancy: occ,
                    avg_duration_secs: avg_duration_frames / fps,
                    distinct_count: distinct,
                    mean_per_frame: mean,
                    max_per_frame,
                    count_histogram: hist,
                },
            );
        }

        VideoStats {
            name: video.name().to_string(),
            num_frames,
            fps,
            length_hours: num_frames as f64 / fps / 3600.0,
            classes: out,
        }
    }

    /// Statistics for one class, if computed.
    pub fn class(&self, class: ObjectClass) -> Option<&ClassStats> {
        self.classes.get(class.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetPreset, DAY_TEST};

    #[test]
    fn stats_on_taipei_sample() {
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 6_000).unwrap();
        let stats = VideoStats::compute_classes(&video, &[ObjectClass::Car, ObjectClass::Bus]);
        let car = stats.class(ObjectClass::Car).unwrap();
        let bus = stats.class(ObjectClass::Bus).unwrap();
        // Cars are common, buses are rarer, as in Table 3.
        assert!(car.occupancy > bus.occupancy);
        assert!(car.occupancy > 0.3, "car occupancy {}", car.occupancy);
        assert!(bus.occupancy < 0.4, "bus occupancy {}", bus.occupancy);
        assert!(car.distinct_count > bus.distinct_count);
        assert!(car.mean_per_frame > 0.2);
        // Histogram sums to the number of frames.
        assert_eq!(car.count_histogram.iter().sum::<u64>(), 6_000);
    }

    #[test]
    fn frames_with_at_least_is_monotone() {
        let video = DatasetPreset::Amsterdam.generate_with_frames(DAY_TEST, 4_000).unwrap();
        let stats = VideoStats::compute_classes(&video, &[ObjectClass::Car]);
        let car = stats.class(ObjectClass::Car).unwrap();
        let mut prev = u64::MAX;
        for n in 0..=car.max_per_frame {
            let cur = car.frames_with_at_least(n);
            assert!(cur <= prev);
            prev = cur;
        }
        assert_eq!(car.frames_with_at_least(0), 4_000);
    }

    #[test]
    fn rare_event_threshold_has_enough_instances() {
        let video = DatasetPreset::Rialto.generate_with_frames(DAY_TEST, 8_000).unwrap();
        let stats = VideoStats::compute_classes(&video, &[ObjectClass::Boat]);
        let boat = stats.class(ObjectClass::Boat).unwrap();
        if let Some(n) = boat.rare_event_threshold(20) {
            assert!(boat.frames_with_at_least(n) >= 20);
            // And the next-higher threshold must be rarer than 20 (or impossible).
            assert!(n == boat.max_per_frame || boat.frames_with_at_least(n + 1) < 20);
        }
    }

    #[test]
    fn length_hours_consistent() {
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 3_600 * 30).unwrap();
        let stats = VideoStats::compute_classes(&video, &[ObjectClass::Car]);
        assert!((stats.length_hours - 1.0).abs() < 1e-9);
    }
}
