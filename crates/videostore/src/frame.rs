//! Frames: small RGB pixel buffers plus metadata.
//!
//! Real 720p/2160p frames would be far too expensive to synthesize and store for
//! millions of frames, and nothing in BlazeIt depends on full-resolution pixels: the
//! specialized NNs consume 65x65 thumbnails and the content UDFs compute channel
//! statistics. Frames are therefore rendered at a small internal resolution
//! (default 96x54, preserving 16:9) while all *coordinates* (masks, crops, areas)
//! remain in the nominal resolution of the stream. [`Frame::scale_x`]/[`Frame::scale_y`]
//! convert between the two.

// blazeit-lint: allow-file(panic-site::index) -- RGB pixel kernel: rows come from chunks_exact(3)
// and (x, y) are bounded by the frame's own width/height

use crate::geometry::BoundingBox;
use crate::object::Color;
use serde::{Deserialize, Serialize};

/// Index of a frame within a video (0-based).
pub type FrameIndex = u64;

/// A timestamp in seconds from the start of the video.
pub type Timestamp = f64;

/// A rendered video frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Index of this frame within its video.
    pub index: FrameIndex,
    /// Timestamp in seconds (`index / fps`).
    pub timestamp: Timestamp,
    /// Nominal stream width in pixels (e.g. 1280).
    pub nominal_width: f32,
    /// Nominal stream height in pixels (e.g. 720).
    pub nominal_height: f32,
    /// Internal pixel-buffer width.
    pub width: usize,
    /// Internal pixel-buffer height.
    pub height: usize,
    /// Row-major RGB bytes, `width * height * 3` long.
    pub pixels: Vec<u8>,
}

impl Frame {
    /// Creates a frame filled with a single color.
    pub fn filled(
        index: FrameIndex,
        timestamp: Timestamp,
        nominal: (f32, f32),
        size: (usize, usize),
        color: Color,
    ) -> Self {
        let (width, height) = size;
        let mut pixels = vec![0u8; width * height * 3];
        for px in pixels.chunks_exact_mut(3) {
            px[0] = color.r;
            px[1] = color.g;
            px[2] = color.b;
        }
        Frame {
            index,
            timestamp,
            nominal_width: nominal.0,
            nominal_height: nominal.1,
            width,
            height,
            pixels,
        }
    }

    /// Horizontal scale factor from nominal coordinates to buffer coordinates.
    pub fn scale_x(&self) -> f32 {
        self.width as f32 / self.nominal_width
    }

    /// Vertical scale factor from nominal coordinates to buffer coordinates.
    pub fn scale_y(&self) -> f32 {
        self.height as f32 / self.nominal_height
    }

    /// Reads the pixel at buffer coordinates `(x, y)`.
    ///
    /// Coordinates outside the buffer are clamped to the nearest valid pixel.
    pub fn pixel(&self, x: usize, y: usize) -> Color {
        let x = x.min(self.width.saturating_sub(1));
        let y = y.min(self.height.saturating_sub(1));
        let i = (y * self.width + x) * 3;
        Color::rgb(self.pixels[i], self.pixels[i + 1], self.pixels[i + 2])
    }

    /// Writes the pixel at buffer coordinates `(x, y)`; out-of-range writes are ignored.
    pub fn set_pixel(&mut self, x: usize, y: usize, color: Color) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = (y * self.width + x) * 3;
        self.pixels[i] = color.r;
        self.pixels[i + 1] = color.g;
        self.pixels[i + 2] = color.b;
    }

    /// Converts a nominal-coordinate bounding box into an inclusive-exclusive pixel
    /// rectangle `(x0, y0, x1, y1)` in buffer coordinates, clamped to the buffer.
    pub fn buffer_rect(&self, bbox: &BoundingBox) -> (usize, usize, usize, usize) {
        buffer_rect_in(self.nominal_width, self.nominal_height, self.width, self.height, bbox)
    }

    /// Mean color over the whole frame.
    pub fn mean_color(&self) -> (f32, f32, f32) {
        self.mean_color_in(&BoundingBox::new(0.0, 0.0, self.nominal_width, self.nominal_height))
    }

    /// Mean color over the pixels covered by a nominal-coordinate bounding box.
    ///
    /// Degenerate regions fall back to the single nearest pixel so the result is always
    /// well defined; this mirrors OpenCV-style mean-over-ROI used by the paper's UDFs.
    pub fn mean_color_in(&self, bbox: &BoundingBox) -> (f32, f32, f32) {
        let (x0, y0, x1, y1) = self.buffer_rect(bbox);
        let (x1, y1) =
            (x1.max(x0 + 1).min(self.width.max(1)), y1.max(y0 + 1).min(self.height.max(1)));
        let mut sum = (0.0f64, 0.0f64, 0.0f64);
        let mut n = 0u64;
        for y in y0..y1 {
            for x in x0..x1 {
                let c = self.pixel(x, y);
                sum.0 += c.r as f64;
                sum.1 += c.g as f64;
                sum.2 += c.b as f64;
                n += 1;
            }
        }
        if n == 0 {
            let c = self.pixel(x0, y0);
            return (c.r as f32, c.g as f32, c.b as f32);
        }
        ((sum.0 / n as f64) as f32, (sum.1 / n as f64) as f32, (sum.2 / n as f64) as f32)
    }

    /// The "redness" of a region: mean red channel minus the mean of the other two.
    ///
    /// This is the frame-level liftable UDF from Section 8.1 of the paper.
    pub fn redness_in(&self, bbox: &BoundingBox) -> f32 {
        let (r, g, b) = self.mean_color_in(bbox);
        r - (g + b) / 2.0
    }

    /// The "blueness" of a region (see [`Frame::redness_in`]).
    pub fn blueness_in(&self, bbox: &BoundingBox) -> f32 {
        let (r, g, b) = self.mean_color_in(bbox);
        b - (r + g) / 2.0
    }

    /// Total number of pixels in the internal buffer.
    pub fn num_pixels(&self) -> usize {
        self.width * self.height
    }
}

/// The buffer-coordinate rectangle a nominal-coordinate `bbox` maps to for a
/// `width x height` buffer over the given nominal dimensions.
///
/// Shared by [`Frame::buffer_rect`] and the sparse renderer
/// ([`crate::render::Renderer::render_sampled`]), which must agree exactly on
/// where object rectangles land without materializing a full-size frame.
pub fn buffer_rect_in(
    nominal_width: f32,
    nominal_height: f32,
    width: usize,
    height: usize,
    bbox: &BoundingBox,
) -> (usize, usize, usize, usize) {
    let sx = width as f32 / nominal_width;
    let sy = height as f32 / nominal_height;
    let x0 = (bbox.xmin * sx).floor().max(0.0) as usize;
    let y0 = (bbox.ymin * sy).floor().max(0.0) as usize;
    let x1 = ((bbox.xmax * sx).ceil() as usize).min(width);
    let y1 = ((bbox.ymax * sy).ceil() as usize).min(height);
    (x0.min(width), y0.min(height), x1, y1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> Frame {
        Frame::filled(0, 0.0, (1280.0, 720.0), (96, 54), Color::rgb(10, 20, 30))
    }

    #[test]
    fn filled_frame_has_uniform_pixels() {
        let f = blank();
        assert_eq!(f.pixels.len(), 96 * 54 * 3);
        assert_eq!(f.pixel(0, 0), Color::rgb(10, 20, 30));
        assert_eq!(f.pixel(95, 53), Color::rgb(10, 20, 30));
    }

    #[test]
    fn set_and_get_pixel() {
        let mut f = blank();
        f.set_pixel(10, 10, Color::RED);
        assert_eq!(f.pixel(10, 10), Color::RED);
        // Out-of-bounds write is a no-op, read clamps.
        f.set_pixel(1000, 1000, Color::BLUE);
        assert_eq!(f.pixel(1000, 1000), f.pixel(95, 53));
    }

    #[test]
    fn scale_factors() {
        let f = blank();
        assert!((f.scale_x() - 96.0 / 1280.0).abs() < 1e-6);
        assert!((f.scale_y() - 54.0 / 720.0).abs() < 1e-6);
    }

    #[test]
    fn buffer_rect_maps_full_frame() {
        let f = blank();
        let full = BoundingBox::new(0.0, 0.0, 1280.0, 720.0);
        assert_eq!(f.buffer_rect(&full), (0, 0, 96, 54));
    }

    #[test]
    fn mean_color_uniform() {
        let f = blank();
        let (r, g, b) = f.mean_color();
        assert!((r - 10.0).abs() < 1e-3);
        assert!((g - 20.0).abs() < 1e-3);
        assert!((b - 30.0).abs() < 1e-3);
    }

    #[test]
    fn redness_detects_red_region() {
        let mut f = blank();
        // Paint the left half red (in buffer coordinates 0..48).
        for y in 0..54 {
            for x in 0..48 {
                f.set_pixel(x, y, Color::RED);
            }
        }
        let left = BoundingBox::new(0.0, 0.0, 640.0, 720.0);
        let right = BoundingBox::new(640.0, 0.0, 1280.0, 720.0);
        assert!(f.redness_in(&left) > 100.0);
        assert!(f.redness_in(&right) < 10.0);
        // Whole-frame redness sits between the two: the basis of frame-level filters.
        let whole = f.redness_in(&BoundingBox::new(0.0, 0.0, 1280.0, 720.0));
        assert!(whole > f.redness_in(&right) && whole < f.redness_in(&left));
    }

    #[test]
    fn mean_color_degenerate_region() {
        let f = blank();
        let tiny = BoundingBox::new(5.0, 5.0, 5.0, 5.0);
        let (r, _, _) = f.mean_color_in(&tiny);
        assert!((r - 10.0).abs() < 1e-3);
    }
}
