//! Scene simulation: generating ground-truth object tracks for a synthetic video.
//!
//! The paper's datasets are real webcam streams; what matters to every BlazeIt
//! optimization is the *statistics* of the object stream — occupancy (fraction of
//! frames containing the class), average appearance duration, number of distinct
//! objects, and how often rare combinations (e.g. "at least one bus and five cars")
//! occur. The simulator generates tracks from a marked Poisson process whose
//! parameters are chosen so those statistics match Table 3 of the paper.
//!
//! The generative model, per object class:
//!
//! * New tracks arrive as a Poisson process whose rate is modulated over the day
//!   (a diurnal sine profile) and by a per-day multiplier, so different "days" of the
//!   same camera have genuinely different true counts (needed for Table 5).
//! * Each track's dwell time is exponential around the class's mean duration.
//! * Tracks travel along one of a handful of "lanes" with a class-specific speed, size
//!   and color distribution.
//!
//! By Little's law, the expected number of concurrent objects is
//! `arrival_rate x mean_duration`, which the configuration exposes directly as
//! [`ClassProfile::mean_concurrent`].

use crate::geometry::Point;
use crate::object::{Color, GroundTruthObject, ObjectClass};
use crate::track::{Track, TrackId};
use crate::{Result, VideoError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, Normal, Poisson};
use serde::{Deserialize, Serialize};

/// A weighted color choice for a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColorWeight {
    /// The color.
    pub color: Color,
    /// Relative weight (need not sum to one across the palette).
    pub weight: f32,
}

/// Per-class generative parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassProfile {
    /// Object class being generated.
    pub class: ObjectClass,
    /// Expected number of objects of this class visible in a frame (Little's law mean).
    pub mean_concurrent: f64,
    /// Mean duration of an appearance, in seconds.
    pub mean_duration_secs: f64,
    /// Mean object width in nominal pixels.
    pub mean_width: f32,
    /// Mean object height in nominal pixels.
    pub mean_height: f32,
    /// Relative standard deviation of the size (0.2 = ±20%).
    pub size_jitter: f32,
    /// Color palette with weights.
    pub palette: Vec<ColorWeight>,
    /// Vertical band of the scene (as fractions of height) in which this class travels.
    pub lane_band: (f32, f32),
    /// Positional wobble amplitude in nominal pixels (boats bob, bikes weave).
    pub wobble: f32,
}

impl ClassProfile {
    /// A car profile with sensible defaults for a 720p traffic camera.
    pub fn car(mean_concurrent: f64, mean_duration_secs: f64) -> Self {
        ClassProfile {
            class: ObjectClass::Car,
            mean_concurrent,
            mean_duration_secs,
            mean_width: 140.0,
            mean_height: 90.0,
            size_jitter: 0.25,
            palette: vec![
                ColorWeight { color: Color::GREY, weight: 0.35 },
                ColorWeight { color: Color::WHITE, weight: 0.25 },
                ColorWeight { color: Color::BLACK, weight: 0.2 },
                ColorWeight { color: Color::BLUE, weight: 0.1 },
                ColorWeight { color: Color::RED, weight: 0.1 },
            ],
            lane_band: (0.45, 0.85),
            wobble: 0.0,
        }
    }

    /// A bus profile; `red_fraction` controls how many buses are "red tour buses",
    /// which the content-based-selection experiments search for.
    pub fn bus(mean_concurrent: f64, mean_duration_secs: f64, red_fraction: f32) -> Self {
        let red = red_fraction.clamp(0.0, 1.0);
        ClassProfile {
            class: ObjectClass::Bus,
            mean_concurrent,
            mean_duration_secs,
            mean_width: 340.0,
            mean_height: 160.0,
            size_jitter: 0.15,
            palette: vec![
                ColorWeight { color: Color::RED, weight: red },
                ColorWeight { color: Color::WHITE, weight: (1.0 - red) * 0.7 },
                ColorWeight { color: Color::YELLOW, weight: (1.0 - red) * 0.3 },
            ],
            lane_band: (0.4, 0.8),
            wobble: 0.0,
        }
    }

    /// A boat profile (rialto / grand-canal).
    pub fn boat(mean_concurrent: f64, mean_duration_secs: f64) -> Self {
        ClassProfile {
            class: ObjectClass::Boat,
            mean_concurrent,
            mean_duration_secs,
            mean_width: 220.0,
            mean_height: 110.0,
            size_jitter: 0.35,
            palette: vec![
                ColorWeight { color: Color::WHITE, weight: 0.5 },
                ColorWeight { color: Color::rgb(120, 80, 40), weight: 0.3 },
                ColorWeight { color: Color::BLUE, weight: 0.2 },
            ],
            lane_band: (0.35, 0.75),
            wobble: 6.0,
        }
    }

    /// A pedestrian profile.
    pub fn person(mean_concurrent: f64, mean_duration_secs: f64) -> Self {
        ClassProfile {
            class: ObjectClass::Person,
            mean_concurrent,
            mean_duration_secs,
            mean_width: 45.0,
            mean_height: 120.0,
            size_jitter: 0.2,
            palette: vec![
                ColorWeight { color: Color::rgb(80, 80, 110), weight: 0.4 },
                ColorWeight { color: Color::rgb(150, 120, 100), weight: 0.3 },
                ColorWeight { color: Color::GREEN, weight: 0.15 },
                ColorWeight { color: Color::RED, weight: 0.15 },
            ],
            lane_band: (0.55, 0.95),
            wobble: 2.0,
        }
    }

    /// A bird profile (ornithology use case).
    pub fn bird(mean_concurrent: f64, mean_duration_secs: f64) -> Self {
        ClassProfile {
            class: ObjectClass::Bird,
            mean_concurrent,
            mean_duration_secs,
            mean_width: 50.0,
            mean_height: 40.0,
            size_jitter: 0.3,
            palette: vec![
                ColorWeight { color: Color::RED, weight: 0.3 },
                ColorWeight { color: Color::BLUE, weight: 0.3 },
                ColorWeight { color: Color::rgb(120, 90, 60), weight: 0.4 },
            ],
            lane_band: (0.2, 0.8),
            wobble: 8.0,
        }
    }

    fn pick_color(&self, rng: &mut StdRng) -> Color {
        let total: f32 = self.palette.iter().map(|c| c.weight.max(0.0)).sum();
        if total <= 0.0 || self.palette.is_empty() {
            return Color::GREY;
        }
        let mut x = rng.gen::<f32>() * total;
        for cw in &self.palette {
            x -= cw.weight.max(0.0);
            if x <= 0.0 {
                return cw.color;
            }
        }
        self.palette.last().map(|c| c.color).unwrap_or(Color::GREY)
    }
}

/// Scene-level configuration: resolution, frame rate, class mix, day-to-day variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Nominal frame width in pixels (e.g. 1280 for 720p).
    pub width: f32,
    /// Nominal frame height in pixels (e.g. 720 for 720p).
    pub height: f32,
    /// Frames per second of the stream.
    pub fps: f64,
    /// Per-class generative profiles.
    pub classes: Vec<ClassProfile>,
    /// Amplitude of the diurnal (within-day) arrival-rate modulation in `[0, 1)`.
    ///
    /// A value of 0.4 means the arrival rate swings ±40% over the course of the video.
    pub diurnal_amplitude: f64,
    /// Per-day arrival-rate multiplier. Day `d`'s rate is scaled by
    /// `1 + day_variation * sin(golden-ratio hash of d)`, so distinct days genuinely
    /// differ (Table 5's premise).
    pub day_variation: f64,
}

impl SceneConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.fps <= 0.0 {
            return Err(VideoError::InvalidConfig("fps must be positive".into()));
        }
        if self.width <= 0.0 || self.height <= 0.0 {
            return Err(VideoError::InvalidConfig("resolution must be positive".into()));
        }
        if self.classes.is_empty() {
            return Err(VideoError::InvalidConfig("at least one class profile required".into()));
        }
        for c in &self.classes {
            if c.mean_concurrent < 0.0 || c.mean_duration_secs <= 0.0 {
                return Err(VideoError::InvalidConfig(format!(
                    "class {} has invalid rate/duration",
                    c.class
                )));
            }
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(VideoError::InvalidConfig("diurnal_amplitude must be in [0,1)".into()));
        }
        Ok(())
    }

    /// The per-day rate multiplier for day `day`.
    pub fn day_multiplier(&self, day: u32) -> f64 {
        // A deterministic, seed-independent pseudo-random phase per day.
        let phase = (day as f64 * 0.618_033_988_749_895).fract() * std::f64::consts::TAU;
        1.0 + self.day_variation * phase.sin()
    }
}

/// One phase of a phased (drifting) scene: `num_frames` frames generated from
/// `config`'s class mix and rates. See [`SceneSimulator::generate_phased`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenePhase {
    /// The generative configuration active during this phase.
    pub config: SceneConfig,
    /// How many frames this phase lasts.
    pub num_frames: u64,
}

/// The generated scene for one day of video: all ground-truth tracks plus a frame index
/// for fast per-frame lookups.
#[derive(Debug, Clone)]
pub struct SceneSimulator {
    config: SceneConfig,
    num_frames: u64,
    tracks: Vec<Track>,
    /// `bucket_index[b]` lists indices into `tracks` of tracks overlapping frame bucket
    /// `b` (buckets of [`SceneSimulator::BUCKET`] frames), so per-frame ground-truth
    /// lookups don't scan every track of the day.
    bucket_index: Vec<Vec<u32>>,
}

impl SceneSimulator {
    /// Number of frames per bucket in the temporal index.
    const BUCKET: u64 = 256;

    /// Generates the scene for one day.
    ///
    /// * `seed` — base RNG seed for the video; combined with `day` so each day is an
    ///   independent draw.
    /// * `day` — which day (0 = train, 1 = held-out/threshold, 2 = test by convention).
    /// * `num_frames` — length of the day in frames.
    pub fn generate(config: SceneConfig, seed: u64, day: u32, num_frames: u64) -> Result<Self> {
        config.validate()?;
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(day as u64 + 1)));
        let day_mult = config.day_multiplier(day);
        let mut tracks = Vec::new();
        let mut next_id: TrackId = 1;

        for profile in &config.classes {
            let duration_frames = (profile.mean_duration_secs * config.fps).max(1.0);
            // Little's law: arrivals per frame = mean_concurrent / mean_duration_frames.
            let base_rate = profile.mean_concurrent / duration_frames;
            // blazeit-lint: allow(panic-site) -- duration_frames is clamped to >= 1.0
            // two lines above, so the rate is positive and finite.
            let exp = Exp::new(1.0 / duration_frames).expect("positive rate");
            // blazeit-lint: allow(panic-site) -- size_jitter is an f32 magnitude from
            // the class profile; a negative value is a construction bug worth a loud
            // failure during synthetic-video generation, not a recoverable state.
            let size_noise = Normal::new(0.0, f64::from(profile.size_jitter)).expect("stddev >= 0");

            // Walk the day in coarse slots of BUCKET frames; within each slot the rate
            // is constant, which is plenty of resolution for a diurnal profile.
            let mut slot_start = 0u64;
            while slot_start < num_frames {
                let slot_len = Self::BUCKET.min(num_frames - slot_start);
                let t_frac = slot_start as f64 / num_frames.max(1) as f64;
                let diurnal =
                    1.0 + config.diurnal_amplitude * (std::f64::consts::TAU * t_frac).sin();
                let rate = (base_rate * diurnal * day_mult).max(0.0);
                let expected = rate * slot_len as f64;
                let arrivals = if expected > 0.0 {
                    Poisson::new(expected).map(|p| p.sample(&mut rng) as u64).unwrap_or(0)
                } else {
                    0
                };
                for _ in 0..arrivals {
                    let enter = slot_start + rng.gen_range(0..slot_len);
                    let dwell = exp.sample(&mut rng).max(1.0) as u64;
                    let exit = (enter + dwell).min(num_frames.saturating_sub(1));
                    let (band_lo, band_hi) = profile.lane_band;
                    let y = config.height * rng.gen_range(band_lo..band_hi.max(band_lo + 1e-3));
                    let leftward = rng.gen_bool(0.5);
                    // Speed chosen so the object crosses the scene in roughly its dwell
                    // time (plus noise), so long-dwell objects move slowly.
                    let cross_frames = (dwell as f32).max(1.0);
                    let speed = (config.width / cross_frames) * rng.gen_range(0.6..1.4);
                    let (start_x, vx) = if leftward {
                        (config.width + profile.mean_width, -speed)
                    } else {
                        (-profile.mean_width, speed)
                    };
                    let mut sz = |mean: f32| {
                        (mean * (1.0 + size_noise.sample(&mut rng) as f32)).max(mean * 0.3)
                    };
                    let width = sz(profile.mean_width);
                    let height = sz(profile.mean_height);
                    tracks.push(Track {
                        id: next_id,
                        class: profile.class,
                        enter_frame: enter,
                        exit_frame: exit,
                        start: Point::new(start_x, y),
                        velocity: Point::new(vx, rng.gen_range(-0.2..0.2)),
                        width,
                        height,
                        color: profile.pick_color(&mut rng),
                        wobble: profile.wobble,
                    });
                    next_id += 1;
                }
                slot_start += slot_len;
            }
        }

        let bucket_index = Self::build_index(&tracks, num_frames);
        Ok(SceneSimulator { config, num_frames, tracks, bucket_index })
    }

    /// Generates a scene whose generative statistics *change over time*: each
    /// [`ScenePhase`] contributes `num_frames` frames drawn from its own
    /// [`SceneConfig`] (class mix, arrival rates, durations), concatenated in
    /// order into one track list over one timeline.
    ///
    /// This is how distribution drift is injected into a synthetic stream: a
    /// phase boundary is exactly the moment a camera's world changes (rush hour
    /// starts, a regatta passes the canal) while the *camera* — resolution,
    /// frame rate, rendering — stays fixed, so every phase must share `width`,
    /// `height`, and `fps`. Tracks never cross a phase boundary (their exit
    /// frames are clamped to the phase end, as a single-phase scene clamps to
    /// the end of the day).
    ///
    /// A single-phase call is bit-identical to [`SceneSimulator::generate`]
    /// with that phase's configuration: phase `i` derives its RNG stream from
    /// `seed` xor a per-phase constant that is zero for `i == 0`.
    pub fn generate_phased(phases: &[ScenePhase], seed: u64, day: u32) -> Result<Self> {
        let Some(first) = phases.first() else {
            return Err(VideoError::InvalidConfig("at least one scene phase required".into()));
        };
        for phase in phases {
            phase.config.validate()?;
            if phase.num_frames == 0 {
                return Err(VideoError::InvalidConfig(
                    "every scene phase must contain at least one frame".into(),
                ));
            }
            if phase.config.width != first.config.width
                || phase.config.height != first.config.height
                || phase.config.fps != first.config.fps
            {
                return Err(VideoError::InvalidConfig(
                    "scene phases must share resolution and frame rate (drift changes the \
                     world, not the camera)"
                        .into(),
                ));
            }
        }
        let total: u64 = phases.iter().map(|p| p.num_frames).sum();
        let mut tracks: Vec<Track> = Vec::new();
        let mut next_id: TrackId = 1;
        let mut offset = 0u64;
        for (i, phase) in phases.iter().enumerate() {
            let phase_seed = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64);
            let segment = Self::generate(phase.config.clone(), phase_seed, day, phase.num_frames)?;
            for track in segment.tracks {
                tracks.push(Track {
                    id: next_id,
                    enter_frame: track.enter_frame + offset,
                    exit_frame: track.exit_frame + offset,
                    ..track
                });
                next_id += 1;
            }
            offset += phase.num_frames;
        }
        let bucket_index = Self::build_index(&tracks, total);
        Ok(SceneSimulator { config: first.config.clone(), num_frames: total, tracks, bucket_index })
    }

    fn build_index(tracks: &[Track], num_frames: u64) -> Vec<Vec<u32>> {
        let n_buckets = (num_frames / Self::BUCKET + 1) as usize;
        let mut index = vec![Vec::new(); n_buckets];
        for (i, t) in tracks.iter().enumerate() {
            let first = (t.enter_frame / Self::BUCKET) as usize;
            let last = (t.exit_frame / Self::BUCKET) as usize;
            for bucket in index.iter_mut().take(last.min(n_buckets - 1) + 1).skip(first) {
                bucket.push(i as u32);
            }
        }
        index
    }

    /// The scene configuration this simulator was generated from.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Number of frames in this day of video.
    pub fn num_frames(&self) -> u64 {
        self.num_frames
    }

    /// All generated tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Ground-truth objects visible at `frame`.
    pub fn visible_at(&self, frame: u64) -> Vec<GroundTruthObject> {
        if frame >= self.num_frames {
            return Vec::new();
        }
        let bucket = (frame / Self::BUCKET) as usize;
        let mut out = Vec::new();
        if let Some(candidates) = self.bucket_index.get(bucket) {
            for &i in candidates {
                // blazeit-lint: allow(panic-site::index) -- bucket_index stores indices of
                // self.tracks entries, built in the same pass
                if let Some(gt) = self.tracks[i as usize].ground_truth_at(
                    frame,
                    self.config.width,
                    self.config.height,
                ) {
                    out.push(gt);
                }
            }
        }
        // Stable order (by track id) so downstream consumers are deterministic.
        out.sort_by_key(|o| o.track_id);
        out
    }

    /// Count of visible objects of `class` at `frame`.
    pub fn count_at(&self, frame: u64, class: ObjectClass) -> usize {
        self.visible_at(frame).iter().filter(|o| o.class == class).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SceneConfig {
        SceneConfig {
            width: 1280.0,
            height: 720.0,
            fps: 30.0,
            classes: vec![ClassProfile::car(1.5, 2.0), ClassProfile::bus(0.15, 3.0, 0.2)],
            diurnal_amplitude: 0.3,
            day_variation: 0.25,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SceneSimulator::generate(small_config(), 42, 0, 5_000).unwrap();
        let b = SceneSimulator::generate(small_config(), 42, 0, 5_000).unwrap();
        assert_eq!(a.tracks(), b.tracks());
        assert_eq!(a.visible_at(1234), b.visible_at(1234));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SceneSimulator::generate(small_config(), 1, 0, 5_000).unwrap();
        let b = SceneSimulator::generate(small_config(), 2, 0, 5_000).unwrap();
        assert_ne!(a.tracks(), b.tracks());
    }

    #[test]
    fn different_days_differ() {
        let a = SceneSimulator::generate(small_config(), 7, 0, 5_000).unwrap();
        let b = SceneSimulator::generate(small_config(), 7, 1, 5_000).unwrap();
        assert_ne!(a.tracks(), b.tracks());
    }

    #[test]
    fn mean_concurrent_roughly_matches_littles_law() {
        let cfg = SceneConfig {
            classes: vec![ClassProfile::car(2.0, 3.0)],
            diurnal_amplitude: 0.0,
            day_variation: 0.0,
            ..small_config()
        };
        let sim = SceneSimulator::generate(cfg, 3, 0, 30_000).unwrap();
        let mut total = 0usize;
        let step = 37;
        let mut frames = 0usize;
        let mut f = 1000;
        while f < 29_000 {
            total += sim.count_at(f, ObjectClass::Car);
            frames += 1;
            f += step;
        }
        let mean = total as f64 / frames as f64;
        // Edge effects (objects leaving the field of view early) bias the count down a
        // little; accept a generous band around the configured mean of 2.0.
        assert!(mean > 1.0 && mean < 3.0, "mean concurrent cars was {mean}");
    }

    #[test]
    fn track_ids_unique() {
        let sim = SceneSimulator::generate(small_config(), 11, 0, 10_000).unwrap();
        let mut ids: Vec<_> = sim.tracks().iter().map(|t| t.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn visible_objects_within_bounds() {
        let sim = SceneSimulator::generate(small_config(), 5, 2, 8_000).unwrap();
        for f in (0..8_000).step_by(503) {
            for o in sim.visible_at(f) {
                assert!(o.bbox.xmin >= 0.0 && o.bbox.xmax <= 1280.0);
                assert!(o.bbox.ymin >= 0.0 && o.bbox.ymax <= 720.0);
                assert!(o.visibility > 0.0 && o.visibility <= 1.0);
            }
        }
    }

    #[test]
    fn out_of_range_frame_is_empty() {
        let sim = SceneSimulator::generate(small_config(), 5, 0, 1_000).unwrap();
        assert!(sim.visible_at(1_000).is_empty());
        assert!(sim.visible_at(50_000).is_empty());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = small_config();
        cfg.fps = 0.0;
        assert!(SceneSimulator::generate(cfg, 0, 0, 100).is_err());
        let mut cfg2 = small_config();
        cfg2.classes.clear();
        assert!(SceneSimulator::generate(cfg2, 0, 0, 100).is_err());
    }

    #[test]
    fn single_phase_matches_plain_generation_exactly() {
        let cfg = small_config();
        let plain = SceneSimulator::generate(cfg.clone(), 42, 2, 4_000).unwrap();
        let phased = SceneSimulator::generate_phased(
            &[ScenePhase { config: cfg, num_frames: 4_000 }],
            42,
            2,
        )
        .unwrap();
        assert_eq!(plain.tracks(), phased.tracks());
        assert_eq!(plain.visible_at(1777), phased.visible_at(1777));
    }

    #[test]
    fn phased_scene_shifts_the_distribution_at_the_boundary() {
        let calm = SceneConfig {
            classes: vec![ClassProfile::car(0.5, 2.0)],
            diurnal_amplitude: 0.0,
            day_variation: 0.0,
            ..small_config()
        };
        let busy = SceneConfig { classes: vec![ClassProfile::car(4.0, 2.0)], ..calm.clone() };
        let sim = SceneSimulator::generate_phased(
            &[
                ScenePhase { config: calm, num_frames: 6_000 },
                ScenePhase { config: busy, num_frames: 6_000 },
            ],
            9,
            2,
        )
        .unwrap();
        assert_eq!(sim.num_frames(), 12_000);
        let mean = |lo: u64, hi: u64| {
            let mut total = 0usize;
            let mut n = 0usize;
            let mut f = lo;
            while f < hi {
                total += sim.count_at(f, ObjectClass::Car);
                n += 1;
                f += 31;
            }
            total as f64 / n as f64
        };
        let before = mean(500, 5_500);
        let after = mean(6_500, 11_500);
        assert!(after > before * 2.0, "drift phase should be much busier: {before} -> {after}");
        // Tracks never cross the phase boundary, and ids stay unique.
        let mut ids: Vec<_> = sim.tracks().iter().map(|t| t.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(n, ids.len());
        for t in sim.tracks() {
            assert!(
                (t.enter_frame < 6_000) == (t.exit_frame < 6_000),
                "track {} crosses the phase boundary",
                t.id
            );
        }
    }

    #[test]
    fn phased_scene_rejects_camera_changes_and_empty_phases() {
        let cfg = small_config();
        assert!(SceneSimulator::generate_phased(&[], 1, 0).is_err());
        assert!(SceneSimulator::generate_phased(
            &[ScenePhase { config: cfg.clone(), num_frames: 0 }],
            1,
            0
        )
        .is_err());
        let mut other_camera = cfg.clone();
        other_camera.width = 1920.0;
        assert!(SceneSimulator::generate_phased(
            &[
                ScenePhase { config: cfg, num_frames: 100 },
                ScenePhase { config: other_camera, num_frames: 100 },
            ],
            1,
            0
        )
        .is_err());
    }

    #[test]
    fn day_multiplier_varies_by_day() {
        let cfg = small_config();
        let m0 = cfg.day_multiplier(0);
        let m1 = cfg.day_multiplier(1);
        let m2 = cfg.day_multiplier(2);
        assert!((m0 - m1).abs() > 1e-6 || (m1 - m2).abs() > 1e-6);
    }
}
