//! Frame ingestion utilities: resizing, cropping and normalization.
//!
//! BlazeIt's implementation (Section 9 of the paper) resizes frames to 65x65 pixels for
//! the specialized NNs and to a short side of 600 pixels for the object detectors, and
//! normalizes pixel values before model input. The spatial filter (Section 8) crops the
//! frame to a region of interest and prefers square inputs because detectors run faster
//! on square images. These helpers implement those operations on the synthetic frames.

use crate::frame::Frame;
use crate::geometry::BoundingBox;
use crate::object::Color;
use crate::{Result, VideoError};

/// The input side length used for specialized NNs (65x65 in the paper).
pub const SPECIALIZED_INPUT_SIDE: usize = 65;

/// The short-edge size object detectors resize to (600 px in the paper's Faster R-CNN
/// style preprocessing).
pub const DETECTION_SHORT_SIDE: f32 = 600.0;

/// Resizes a frame's pixel buffer to `width x height` using nearest-neighbor sampling.
///
/// Nearest-neighbor is sufficient here: the source buffers are already small and the
/// consumers are learned models that only need consistent, deterministic downsampling.
pub fn resize(frame: &Frame, width: usize, height: usize) -> Result<Frame> {
    if width == 0 || height == 0 {
        return Err(VideoError::InvalidRegion { reason: "resize target must be non-empty".into() });
    }
    let mut out = Frame::filled(
        frame.index,
        frame.timestamp,
        (frame.nominal_width, frame.nominal_height),
        (width, height),
        Color::rgb(0, 0, 0),
    );
    for y in 0..height {
        let sy = y * frame.height / height;
        for x in 0..width {
            let sx = x * frame.width / width;
            out.set_pixel(x, y, frame.pixel(sx, sy));
        }
    }
    Ok(out)
}

/// Crops a frame to a nominal-coordinate region, producing a new frame whose nominal
/// size is the region size.
///
/// This is the substrate for BlazeIt's *spatial filter*: when a query restricts objects
/// to a region of the scene, the detector only needs to look at that region.
pub fn crop(frame: &Frame, region: &BoundingBox) -> Result<Frame> {
    let clamped = region.clamp_to(frame.nominal_width, frame.nominal_height);
    if clamped.is_empty() {
        return Err(VideoError::InvalidRegion {
            reason: format!("crop region {region:?} lies outside the frame"),
        });
    }
    let (x0, y0, x1, y1) = frame.buffer_rect(&clamped);
    let w = (x1 - x0).max(1);
    let h = (y1 - y0).max(1);
    let mut out = Frame::filled(
        frame.index,
        frame.timestamp,
        (clamped.width(), clamped.height()),
        (w, h),
        Color::rgb(0, 0, 0),
    );
    for y in 0..h {
        for x in 0..w {
            out.set_pixel(x, y, frame.pixel(x0 + x, y0 + y));
        }
    }
    Ok(out)
}

/// Flattens a frame into a normalized `f32` feature vector in `[0, 1]`, channel-interleaved
/// (`r, g, b, r, g, b, ...` in row-major pixel order).
pub fn to_normalized(frame: &Frame) -> Vec<f32> {
    frame.pixels.iter().map(|&b| b as f32 / 255.0).collect()
}

/// Resizes to the specialized-NN input size and normalizes, in one call.
pub fn specialized_input(frame: &Frame) -> Result<Vec<f32>> {
    let resized = resize(frame, SPECIALIZED_INPUT_SIDE, SPECIALIZED_INPUT_SIDE)?;
    Ok(to_normalized(&resized))
}

/// Computes the pixel dimensions a detector would process for a frame restricted to
/// `region` (or the full frame if `None`), following the paper's short-side-600 resize
/// rule. Returns `(width, height)` in detector-input pixels.
///
/// The simulated detector's cost scales with this area, which is what makes the spatial
/// filter's "make the image more square / smaller" optimization pay off (Section 8).
pub fn detection_input_dims(
    nominal_width: f32,
    nominal_height: f32,
    region: Option<&BoundingBox>,
) -> (f32, f32) {
    let (w, h) = match region {
        Some(r) => (r.width().max(1.0), r.height().max(1.0)),
        None => (nominal_width, nominal_height),
    };
    let short = w.min(h);
    let scale = DETECTION_SHORT_SIDE / short;
    (w * scale, h * scale)
}

/// The relative cost of running a detector on a frame restricted to `region`, compared
/// to running it on the full frame. Always in `(0, 1]` for regions inside the frame.
pub fn detection_cost_fraction(
    nominal_width: f32,
    nominal_height: f32,
    region: Option<&BoundingBox>,
) -> f64 {
    let (fw, fh) = detection_input_dims(nominal_width, nominal_height, None);
    let (rw, rh) = detection_input_dims(nominal_width, nominal_height, region);
    let frac = f64::from(rw * rh) / f64::from(fw * fh);
    frac.clamp(0.0, 1.0).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        let mut f = Frame::filled(3, 0.1, (1280.0, 720.0), (96, 54), Color::rgb(50, 50, 50));
        // Put a red block in the top-left quadrant of the buffer.
        for y in 0..27 {
            for x in 0..48 {
                f.set_pixel(x, y, Color::RED);
            }
        }
        f
    }

    #[test]
    fn resize_preserves_metadata_and_color_layout() {
        let f = frame();
        let r = resize(&f, 65, 65).unwrap();
        assert_eq!(r.width, 65);
        assert_eq!(r.height, 65);
        assert_eq!(r.index, 3);
        // Top-left should still be red, bottom-right grey.
        assert_eq!(r.pixel(5, 5), Color::RED);
        assert_eq!(r.pixel(60, 60), Color::rgb(50, 50, 50));
    }

    #[test]
    fn resize_rejects_empty_target() {
        assert!(resize(&frame(), 0, 10).is_err());
    }

    #[test]
    fn crop_top_left_is_red() {
        let f = frame();
        let c = crop(&f, &BoundingBox::new(0.0, 0.0, 640.0, 360.0)).unwrap();
        let (r, g, b) = c.mean_color();
        assert!(r > 150.0 && g < 100.0 && b < 100.0, "({r},{g},{b})");
    }

    #[test]
    fn crop_outside_frame_is_error() {
        let f = frame();
        assert!(crop(&f, &BoundingBox::new(2000.0, 2000.0, 3000.0, 3000.0)).is_err());
    }

    #[test]
    fn normalized_values_in_unit_interval() {
        let v = to_normalized(&frame());
        assert_eq!(v.len(), 96 * 54 * 3);
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn specialized_input_has_expected_length() {
        let v = specialized_input(&frame()).unwrap();
        assert_eq!(v.len(), SPECIALIZED_INPUT_SIDE * SPECIALIZED_INPUT_SIDE * 3);
    }

    #[test]
    fn detection_dims_follow_short_side_rule() {
        let (w, h) = detection_input_dims(1280.0, 720.0, None);
        assert!((h - 600.0).abs() < 1e-3);
        assert!((w - 600.0 * 1280.0 / 720.0).abs() < 1e-3);
    }

    #[test]
    fn square_region_costs_less_than_full_frame() {
        let region = BoundingBox::new(0.0, 0.0, 720.0, 720.0);
        let frac = detection_cost_fraction(1280.0, 720.0, Some(&region));
        assert!(frac < 1.0);
        assert!(frac > 0.4);
        assert!((detection_cost_fraction(1280.0, 720.0, None) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn squarer_region_is_cheaper_than_skinny_region() {
        // Under the short-side-600 rule, fixing the short edge means a skinny region
        // blows up the long edge: squarer crops are cheaper (Section 8 of the paper).
        let square = BoundingBox::new(0.0, 0.0, 720.0, 720.0);
        let skinny = BoundingBox::new(0.0, 0.0, 180.0, 720.0);
        let c_square = detection_cost_fraction(1280.0, 720.0, Some(&square));
        let c_skinny = detection_cost_fraction(1280.0, 720.0, Some(&skinny));
        assert!(c_square < c_skinny, "square {c_square} should be cheaper than skinny {c_skinny}");
    }
}
