//! # blazeit-videostore
//!
//! The synthetic video substrate for the BlazeIt reproduction.
//!
//! The original BlazeIt system (Kang, Bailis, Zaharia, VLDB 2019) is evaluated on six
//! real webcam streams scraped from YouTube (Table 3 of the paper). Real video and a
//! GPU-backed object detector are not available in this environment, so this crate
//! provides the closest synthetic equivalent that exercises the same code paths:
//!
//! * A **scene simulator** ([`scene`]) that generates object *tracks* (cars, buses,
//!   boats, people, ...) with Poisson arrivals, stochastic dwell times, trajectories,
//!   sizes and colors, so the per-frame statistics (occupancy, counts, rarity of
//!   events) can be matched to the paper's datasets.
//! * A **renderer** ([`render`]) that draws the visible objects of a frame into a small
//!   RGB pixel buffer, so pixel-level UDFs (`redness`, `area`) and the learned
//!   specialized networks have real visual signal to work with.
//! * **Dataset presets** ([`datasets`]) mirroring the six videos of Table 3
//!   (`taipei`, `night-street`, `rialto`, `grand-canal`, `amsterdam`, `archie`) with
//!   three independently-seeded "days" each (train / threshold / test), exactly the
//!   split the paper uses.
//! * **Ingestion utilities** ([`ingest`]) for resizing / normalizing / cropping frames
//!   the way BlazeIt's implementation does (65x65 inputs for specialized NNs,
//!   short-side-600 for object detection, spatial-filter crops).
//! * **Statistics** ([`stats`]) that recompute the Table 3 columns from a generated
//!   video.
//!
//! Everything is deterministic given a seed: the same [`VideoConfig`]
//! and seed always produce the same tracks, frames and pixels.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod frame;
pub mod geometry;
pub mod ingest;
pub mod object;
pub mod render;
pub mod scene;
pub mod stats;
pub mod sync;
pub mod track;
pub mod video;

pub use datasets::{DatasetPreset, DAY_HELDOUT, DAY_TEST, DAY_TRAIN};
pub use frame::{Frame, FrameIndex, Timestamp};
pub use geometry::{BoundingBox, Point};
pub use object::{Color, GroundTruthObject, ObjectClass};
pub use scene::{ClassProfile, SceneConfig, SceneSimulator};
pub use track::{Track, TrackId};
pub use video::{Video, VideoConfig};

/// Errors produced by the video substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum VideoError {
    /// A frame index beyond the end of the video was requested.
    FrameOutOfRange {
        /// The requested frame index.
        requested: u64,
        /// The number of frames in the video.
        len: u64,
    },
    /// A crop or resize region does not fit inside the frame.
    InvalidRegion {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A dataset preset name was not recognized.
    UnknownDataset(String),
    /// A configuration value was invalid (zero fps, empty class profile, ...).
    InvalidConfig(String),
}

impl std::fmt::Display for VideoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VideoError::FrameOutOfRange { requested, len } => {
                write!(f, "frame {requested} out of range (video has {len} frames)")
            }
            VideoError::InvalidRegion { reason } => write!(f, "invalid region: {reason}"),
            VideoError::UnknownDataset(name) => write!(f, "unknown dataset preset: {name}"),
            VideoError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for VideoError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, VideoError>;
