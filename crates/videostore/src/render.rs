//! Rendering ground-truth objects into pixel buffers.
//!
//! The renderer exists so that the learned components of BlazeIt (specialized NNs,
//! content filters) have genuine visual signal to exploit: frames with more cars really
//! do look different from empty frames, and frames containing a red bus really are
//! redder. The visual model is deliberately simple — a background gradient, per-class
//! colored rectangles with a darker border, and deterministic per-pixel noise — because
//! BlazeIt's optimizations depend on the *predictability* of frames, not on photo
//! realism.

use crate::frame::{Frame, FrameIndex};
use crate::object::{Color, GroundTruthObject};
use serde::{Deserialize, Serialize};

/// Configuration of the frame renderer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderConfig {
    /// Internal pixel-buffer width.
    pub buffer_width: usize,
    /// Internal pixel-buffer height.
    pub buffer_height: usize,
    /// Base background color (roughly asphalt / water depending on the scene).
    pub background: Color,
    /// Amplitude of the background vertical gradient (0-255).
    pub gradient: u8,
    /// Amplitude of deterministic per-pixel noise (0-255).
    pub noise: u8,
    /// Global illumination scale in `(0, 1]`; night scenes use < 1.
    pub illumination: f32,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            buffer_width: 96,
            buffer_height: 54,
            background: Color::rgb(95, 98, 102),
            gradient: 30,
            noise: 10,
            illumination: 1.0,
        }
    }
}

impl RenderConfig {
    /// A renderer preset for night-time streams (darker, noisier).
    pub fn night() -> Self {
        RenderConfig {
            background: Color::rgb(35, 38, 48),
            gradient: 15,
            noise: 18,
            illumination: 0.55,
            ..RenderConfig::default()
        }
    }

    /// A renderer preset for water scenes (canals).
    pub fn water() -> Self {
        RenderConfig {
            background: Color::rgb(60, 95, 120),
            gradient: 25,
            noise: 12,
            illumination: 1.0,
            ..RenderConfig::default()
        }
    }
}

/// Deterministic renderer: same frame index + objects always produce the same pixels.
#[derive(Debug, Clone)]
pub struct Renderer {
    config: RenderConfig,
    nominal_width: f32,
    nominal_height: f32,
    fps: f64,
}

impl Renderer {
    /// Creates a renderer for a stream with the given nominal resolution and fps.
    pub fn new(config: RenderConfig, nominal_width: f32, nominal_height: f32, fps: f64) -> Self {
        Renderer { config, nominal_width, nominal_height, fps }
    }

    /// The render configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    fn scale(&self, c: u8) -> u8 {
        ((c as f32) * self.config.illumination).clamp(0.0, 255.0) as u8
    }

    fn shade(&self, color: Color) -> Color {
        Color::rgb(self.scale(color.r), self.scale(color.g), self.scale(color.b))
    }

    /// A cheap deterministic hash used for per-pixel noise. Depending on the frame
    /// index means consecutive frames differ slightly, like sensor noise.
    fn noise_at(&self, frame: FrameIndex, x: usize, y: usize) -> i16 {
        if self.config.noise == 0 {
            return 0;
        }
        let mut h = frame
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((x as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add((y as u64).wrapping_mul(0x1656_67B1_9E37_79F9));
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        let span = self.config.noise as i16;
        ((h % (2 * span as u64 + 1)) as i16) - span
    }

    /// Renders the frame at `index` containing the given ground-truth objects.
    pub fn render(&self, index: FrameIndex, objects: &[GroundTruthObject]) -> Frame {
        let timestamp = index as f64 / self.fps;
        let mut frame = Frame::filled(
            index,
            timestamp,
            (self.nominal_width, self.nominal_height),
            (self.config.buffer_width, self.config.buffer_height),
            self.shade(self.config.background),
        );

        // Background: vertical gradient + noise.
        let bg = self.shade(self.config.background);
        for y in 0..frame.height {
            let grad =
                ((y as f32 / frame.height.max(1) as f32) * self.config.gradient as f32) as i16;
            for x in 0..frame.width {
                let n = self.noise_at(index, x, y);
                let add = grad + n;
                frame.set_pixel(
                    x,
                    y,
                    Color::rgb(
                        clamp_u8(bg.r as i16 + add),
                        clamp_u8(bg.g as i16 + add),
                        clamp_u8(bg.b as i16 + add),
                    ),
                );
            }
        }

        // Objects: filled rectangle in the object's color with a darker border, painted
        // in track-id order so overlaps are deterministic.
        for obj in objects {
            let body = self.shade(obj.color);
            let border = Color::rgb(body.r / 2, body.g / 2, body.b / 2);
            let (x0, y0, x1, y1) = frame.buffer_rect(&obj.bbox);
            for y in y0..y1 {
                for x in x0..x1 {
                    let on_border = x == x0 || y == y0 || x + 1 == x1 || y + 1 == y1;
                    let c = if on_border { border } else { body };
                    let n = self.noise_at(index, x, y) / 2;
                    frame.set_pixel(
                        x,
                        y,
                        Color::rgb(
                            clamp_u8(c.r as i16 + n),
                            clamp_u8(c.g as i16 + n),
                            clamp_u8(c.b as i16 + n),
                        ),
                    );
                }
            }
        }

        frame
    }

    /// Renders only the pixels a `width x height` nearest-neighbor downsample
    /// of the full frame would contain.
    ///
    /// Bit-identical to `resize(render(index, objects), width, height)` — same
    /// background gradient, per-pixel noise, painting order and clamping, just
    /// evaluated at the sampled source positions only — at a small fraction of
    /// the cost (e.g. 144 pixels instead of 96×54 for the default featurizer
    /// grid). This is what lets the batched scoring pipeline featurize a frame
    /// without materializing it.
    pub fn render_sampled(
        &self,
        index: FrameIndex,
        objects: &[GroundTruthObject],
        width: usize,
        height: usize,
    ) -> Frame {
        let timestamp = index as f64 / self.fps;
        let mut frame = Frame::filled(
            index,
            timestamp,
            (self.nominal_width, self.nominal_height),
            (width, height),
            Color::rgb(0, 0, 0),
        );
        let full_width = self.config.buffer_width;
        let full_height = self.config.buffer_height;
        let bg = self.shade(self.config.background);
        // Object rectangles in full-buffer coordinates — the same mapping
        // `render` uses via `Frame::buffer_rect`.
        let rects: Vec<(usize, usize, usize, usize, Color, Color)> = objects
            .iter()
            .map(|obj| {
                let body = self.shade(obj.color);
                let border = Color::rgb(body.r / 2, body.g / 2, body.b / 2);
                let (x0, y0, x1, y1) = crate::frame::buffer_rect_in(
                    self.nominal_width,
                    self.nominal_height,
                    full_width,
                    full_height,
                    &obj.bbox,
                );
                (x0, y0, x1, y1, body, border)
            })
            .collect();
        for y in 0..height {
            let sy = y * full_height / height;
            let grad =
                ((sy as f32 / full_height.max(1) as f32) * self.config.gradient as f32) as i16;
            for x in 0..width {
                let sx = x * full_width / width;
                let n = self.noise_at(index, sx, sy);
                let add = grad + n;
                let mut color = Color::rgb(
                    clamp_u8(bg.r as i16 + add),
                    clamp_u8(bg.g as i16 + add),
                    clamp_u8(bg.b as i16 + add),
                );
                // Painting order: later objects overwrite earlier ones, exactly
                // as the full render's sequential painting does.
                for &(x0, y0, x1, y1, body, border) in &rects {
                    if sx >= x0 && sx < x1 && sy >= y0 && sy < y1 {
                        let on_border = sx == x0 || sy == y0 || sx + 1 == x1 || sy + 1 == y1;
                        let c = if on_border { border } else { body };
                        let half = n / 2;
                        color = Color::rgb(
                            clamp_u8(c.r as i16 + half),
                            clamp_u8(c.g as i16 + half),
                            clamp_u8(c.b as i16 + half),
                        );
                    }
                }
                frame.set_pixel(x, y, color);
            }
        }
        frame
    }
}

fn clamp_u8(v: i16) -> u8 {
    v.clamp(0, 255) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BoundingBox;
    use crate::object::ObjectClass;

    fn renderer() -> Renderer {
        Renderer::new(RenderConfig::default(), 1280.0, 720.0, 30.0)
    }

    fn car_at(x: f32, color: Color) -> GroundTruthObject {
        GroundTruthObject::new(
            1,
            ObjectClass::Car,
            BoundingBox::new(x, 300.0, x + 200.0, 440.0),
            color,
        )
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = renderer();
        let objs = vec![car_at(400.0, Color::RED)];
        assert_eq!(r.render(17, &objs), r.render(17, &objs));
    }

    #[test]
    fn consecutive_frames_differ_by_noise() {
        let r = renderer();
        let a = r.render(1, &[]);
        let b = r.render(2, &[]);
        assert_ne!(a.pixels, b.pixels);
    }

    #[test]
    fn object_region_takes_object_color() {
        let r = renderer();
        let obj = car_at(400.0, Color::RED);
        let frame = r.render(5, std::slice::from_ref(&obj));
        let redness_in_box = frame.redness_in(&obj.bbox);
        let redness_elsewhere = frame.redness_in(&BoundingBox::new(900.0, 0.0, 1280.0, 200.0));
        assert!(redness_in_box > 60.0, "redness in box was {redness_in_box}");
        assert!(redness_elsewhere < 20.0);
    }

    #[test]
    fn empty_frames_look_different_from_busy_frames() {
        let r = renderer();
        let empty = r.render(10, &[]);
        let busy = r.render(
            10,
            &[car_at(100.0, Color::WHITE), car_at(500.0, Color::BLACK), car_at(900.0, Color::BLUE)],
        );
        let (er, eg, eb) = empty.mean_color();
        let (br, bg_, bb) = busy.mean_color();
        let diff = (er - br).abs() + (eg - bg_).abs() + (eb - bb).abs();
        assert!(diff > 3.0, "busy and empty frames are indistinguishable (diff {diff})");
    }

    #[test]
    fn night_preset_is_darker() {
        let day = renderer().render(3, &[]);
        let night = Renderer::new(RenderConfig::night(), 1280.0, 720.0, 30.0).render(3, &[]);
        let lum = |f: &Frame| {
            let (r, g, b) = f.mean_color();
            0.299 * r + 0.587 * g + 0.114 * b
        };
        assert!(lum(&night) < lum(&day));
    }

    #[test]
    fn timestamp_derived_from_fps() {
        let r = Renderer::new(RenderConfig::default(), 1280.0, 720.0, 60.0);
        let f = r.render(120, &[]);
        assert!((f.timestamp - 2.0).abs() < 1e-9);
    }
}
