//! Geometric primitives: points and axis-aligned bounding boxes.
//!
//! FrameQL's `mask` field is a polygon; like the paper, we only consider rectangular
//! masks (bounding boxes). Coordinates are expressed in the *nominal* resolution of the
//! video (e.g. 1280x720 for a 720p stream); the renderer maps them down to the internal
//! pixel grid.

use serde::{Deserialize, Serialize};

/// A 2D point in nominal-resolution coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (pixels, 0 = left edge).
    pub x: f32,
    /// Vertical coordinate (pixels, 0 = top edge).
    pub y: f32,
}

impl Point {
    /// Creates a new point.
    pub fn new(x: f32, y: f32) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An axis-aligned bounding box in nominal-resolution coordinates.
///
/// Invariant: `xmin <= xmax` and `ymin <= ymax`. Constructors normalize the corners so
/// the invariant always holds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Left edge.
    pub xmin: f32,
    /// Top edge.
    pub ymin: f32,
    /// Right edge.
    pub xmax: f32,
    /// Bottom edge.
    pub ymax: f32,
}

impl BoundingBox {
    /// Creates a bounding box from two corner points, normalizing the order.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        BoundingBox { xmin: x0.min(x1), ymin: y0.min(y1), xmax: x0.max(x1), ymax: y0.max(y1) }
    }

    /// Creates a bounding box from a center point and a width/height.
    pub fn from_center(center: Point, width: f32, height: f32) -> Self {
        let hw = width.abs() / 2.0;
        let hh = height.abs() / 2.0;
        BoundingBox::new(center.x - hw, center.y - hh, center.x + hw, center.y + hh)
    }

    /// Width of the box (always non-negative).
    pub fn width(&self) -> f32 {
        self.xmax - self.xmin
    }

    /// Height of the box (always non-negative).
    pub fn height(&self) -> f32 {
        self.ymax - self.ymin
    }

    /// Area of the box in square (nominal) pixels.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Center point of the box.
    pub fn center(&self) -> Point {
        Point::new((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)
    }

    /// Whether the point lies inside (or on the boundary of) the box.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.xmin && p.x <= self.xmax && p.y >= self.ymin && p.y <= self.ymax
    }

    /// The intersection of two boxes, or `None` if they do not overlap.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        let xmin = self.xmin.max(other.xmin);
        let ymin = self.ymin.max(other.ymin);
        let xmax = self.xmax.min(other.xmax);
        let ymax = self.ymax.min(other.ymax);
        if xmin < xmax && ymin < ymax {
            Some(BoundingBox { xmin, ymin, xmax, ymax })
        } else {
            None
        }
    }

    /// Intersection-over-union with another box.
    ///
    /// Returns a value in `[0, 1]`. Zero-area boxes have IoU 0 with everything.
    /// This is the measure BlazeIt's motion-IoU tracker uses to decide whether two
    /// detections in consecutive frames are the same object (threshold 0.7, Section 9).
    pub fn iou(&self, other: &BoundingBox) -> f32 {
        let inter = match self.intersection(other) {
            Some(b) => b.area(),
            None => return 0.0,
        };
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Clamps the box to lie within `[0, width] x [0, height]`.
    ///
    /// Used when a simulated object is partially outside the camera's field of view.
    pub fn clamp_to(&self, width: f32, height: f32) -> BoundingBox {
        BoundingBox {
            xmin: self.xmin.clamp(0.0, width),
            ymin: self.ymin.clamp(0.0, height),
            xmax: self.xmax.clamp(0.0, width),
            ymax: self.ymax.clamp(0.0, height),
        }
    }

    /// Returns the box translated by `(dx, dy)`.
    pub fn translate(&self, dx: f32, dy: f32) -> BoundingBox {
        BoundingBox {
            xmin: self.xmin + dx,
            ymin: self.ymin + dy,
            xmax: self.xmax + dx,
            ymax: self.ymax + dy,
        }
    }

    /// Whether the box has any overlap with the frame `[0, width] x [0, height]`.
    pub fn visible_in(&self, width: f32, height: f32) -> bool {
        self.xmax > 0.0 && self.ymax > 0.0 && self.xmin < width && self.ymin < height
    }

    /// Whether this box's area is zero (degenerate box).
    pub fn is_empty(&self) -> bool {
        self.width() <= 0.0 || self.height() <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BoundingBox::new(10.0, 20.0, 5.0, 2.0);
        assert_eq!(b.xmin, 5.0);
        assert_eq!(b.ymin, 2.0);
        assert_eq!(b.xmax, 10.0);
        assert_eq!(b.ymax, 20.0);
    }

    #[test]
    fn bbox_area_and_center() {
        let b = BoundingBox::new(0.0, 0.0, 10.0, 4.0);
        assert_eq!(b.area(), 40.0);
        assert_eq!(b.center(), Point::new(5.0, 2.0));
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 4.0);
    }

    #[test]
    fn bbox_from_center() {
        let b = BoundingBox::from_center(Point::new(5.0, 5.0), 4.0, 2.0);
        assert_eq!(b.xmin, 3.0);
        assert_eq!(b.xmax, 7.0);
        assert_eq!(b.ymin, 4.0);
        assert_eq!(b.ymax, 6.0);
    }

    #[test]
    fn bbox_contains() {
        let b = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert!(b.contains(&Point::new(5.0, 5.0)));
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(!b.contains(&Point::new(11.0, 5.0)));
    }

    #[test]
    fn bbox_intersection_overlapping() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(5.0, 5.0, 15.0, 15.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BoundingBox::new(5.0, 5.0, 10.0, 10.0));
    }

    #[test]
    fn bbox_intersection_disjoint() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(20.0, 20.0, 30.0, 30.0);
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn bbox_iou_identical_is_one() {
        let a = BoundingBox::new(1.0, 2.0, 5.0, 9.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_iou_half_overlap() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(5.0, 0.0, 15.0, 10.0);
        // intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_iou_symmetric() {
        let a = BoundingBox::new(0.0, 0.0, 7.0, 3.0);
        let b = BoundingBox::new(2.0, 1.0, 9.0, 8.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7);
    }

    #[test]
    fn bbox_clamp() {
        let b = BoundingBox::new(-5.0, -5.0, 20.0, 20.0).clamp_to(10.0, 10.0);
        assert_eq!(b, BoundingBox::new(0.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn bbox_translate() {
        let b = BoundingBox::new(0.0, 0.0, 2.0, 2.0).translate(1.0, -1.0);
        assert_eq!(b, BoundingBox::new(1.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn bbox_visibility() {
        let b = BoundingBox::new(-10.0, -10.0, -1.0, -1.0);
        assert!(!b.visible_in(100.0, 100.0));
        let c = BoundingBox::new(-10.0, -10.0, 1.0, 1.0);
        assert!(c.visible_in(100.0, 100.0));
    }

    #[test]
    fn degenerate_box_is_empty() {
        let b = BoundingBox::new(5.0, 5.0, 5.0, 9.0);
        assert!(b.is_empty());
        assert_eq!(b.iou(&BoundingBox::new(0.0, 0.0, 10.0, 10.0)), 0.0);
    }
}
