//! The [`Video`] type: a lazily-rendered, seekable synthetic video stream.
//!
//! A `Video` pairs a generated scene (ground-truth tracks) with a renderer. Frames are
//! rendered on demand — BlazeIt's whole point is to touch as few frames as possible, so
//! the substrate must support cheap random access without materializing the stream.

use crate::frame::{Frame, FrameIndex};
use crate::object::{GroundTruthObject, ObjectClass};
use crate::render::{RenderConfig, Renderer};
use crate::scene::{SceneConfig, ScenePhase, SceneSimulator};
use crate::track::Track;
use crate::{Result, VideoError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Full configuration of one day of synthetic video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Human-readable stream name (e.g. `"taipei"`).
    pub name: String,
    /// Scene-generation parameters.
    pub scene: SceneConfig,
    /// Rendering parameters.
    pub render: RenderConfig,
    /// Number of frames in this day of video.
    pub num_frames: u64,
    /// Base RNG seed identifying the camera; combined with `day`.
    pub seed: u64,
    /// Which day of footage this is (0 = train, 1 = held-out, 2 = test by convention).
    pub day: u32,
}

impl VideoConfig {
    /// Returns a copy of this configuration for a different day of the same camera.
    pub fn for_day(&self, day: u32) -> VideoConfig {
        VideoConfig { day, ..self.clone() }
    }

    /// Returns a copy with a different number of frames (e.g. a shorter smoke-test day).
    pub fn with_frames(&self, num_frames: u64) -> VideoConfig {
        VideoConfig { num_frames, ..self.clone() }
    }
}

/// One day of synthetic video: ground truth + lazily rendered frames.
///
/// The generated scene and renderer are immutable after construction and
/// shared behind [`Arc`]s, so cloning a `Video` — and taking [`Video::prefix`]
/// views of it, which streaming ingestion does on every append — is O(1)
/// rather than a deep copy of the whole day's track list.
#[derive(Debug, Clone)]
pub struct Video {
    config: VideoConfig,
    scene: Arc<SceneSimulator>,
    renderer: Arc<Renderer>,
}

impl Video {
    /// Generates the video described by `config`.
    pub fn generate(config: VideoConfig) -> Result<Self> {
        if config.num_frames == 0 {
            return Err(VideoError::InvalidConfig("video must have at least one frame".into()));
        }
        let scene = SceneSimulator::generate(
            config.scene.clone(),
            config.seed,
            config.day,
            config.num_frames,
        )?;
        let renderer = Renderer::new(
            config.render.clone(),
            config.scene.width,
            config.scene.height,
            config.scene.fps,
        );
        Ok(Video { config, scene: Arc::new(scene), renderer: Arc::new(renderer) })
    }

    /// Generates a video whose world *drifts*: each [`ScenePhase`] contributes
    /// its frames from its own generative statistics (see
    /// [`SceneSimulator::generate_phased`]). The camera — resolution, frame
    /// rate, rendering — comes from `config` and must match every phase;
    /// `config.num_frames` and `config.scene` are replaced by the phases' total
    /// and the first phase's configuration.
    ///
    /// This is the substrate for streaming drift experiments: a
    /// [`Video::prefix`] view over a phased day reveals the distribution shift
    /// exactly at the phase boundary, frame for frame identical to the full
    /// day.
    pub fn generate_phased(config: VideoConfig, phases: &[ScenePhase]) -> Result<Self> {
        let scene = SceneSimulator::generate_phased(phases, config.seed, config.day)?;
        let scene_config = scene.config().clone();
        let num_frames = scene.num_frames();
        let renderer = Renderer::new(
            config.render.clone(),
            scene_config.width,
            scene_config.height,
            scene_config.fps,
        );
        let config = VideoConfig { scene: scene_config, num_frames, ..config };
        Ok(Video { config, scene: Arc::new(scene), renderer: Arc::new(renderer) })
    }

    /// A view of the first `len` frames of this video.
    ///
    /// The view shares this video's generated world: frame `f` of the prefix is
    /// **bit-identical** to frame `f` of the full video (same scene, same
    /// renderer), only the length differs. This is what makes a growing stream
    /// cheap and exact — ingestion reveals successive prefixes of one
    /// deterministic day, so scores computed incrementally over prefixes are
    /// the same scores a cold pass over the grown video would compute.
    ///
    /// Ground-truth *track* accessors ([`Video::tracks`], [`Video::scene`])
    /// still describe the full generated day (they are debugging/oracle
    /// surfaces); every frame-indexed accessor enforces the prefix length.
    ///
    /// Fails if `len` is zero or exceeds this video's length.
    pub fn prefix(&self, len: u64) -> Result<Video> {
        if len == 0 || len > self.config.num_frames {
            return Err(VideoError::InvalidConfig(format!(
                "prefix of {len} frames over a {}-frame video",
                self.config.num_frames
            )));
        }
        Ok(Video {
            config: VideoConfig { num_frames: len, ..self.config.clone() },
            scene: Arc::clone(&self.scene),
            renderer: Arc::clone(&self.renderer),
        })
    }

    /// The configuration this video was generated from.
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// The stream name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Number of frames.
    pub fn len(&self) -> u64 {
        self.config.num_frames
    }

    /// Whether the video has zero frames (never true for a generated video).
    pub fn is_empty(&self) -> bool {
        self.config.num_frames == 0
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.config.scene.fps
    }

    /// Duration of the video in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.config.num_frames as f64 / self.fps()
    }

    /// Nominal resolution `(width, height)`.
    pub fn resolution(&self) -> (f32, f32) {
        (self.config.scene.width, self.config.scene.height)
    }

    /// The underlying scene simulator (ground truth).
    pub fn scene(&self) -> &SceneSimulator {
        &self.scene
    }

    /// All ground-truth tracks of this day.
    pub fn tracks(&self) -> &[Track] {
        self.scene.tracks()
    }

    /// Ground-truth objects visible at `frame`.
    ///
    /// Returns an error if the frame index is out of range; use this in library code
    /// where the index comes from a query, and [`SceneSimulator::visible_at`] directly
    /// when iterating known-valid indices.
    pub fn ground_truth(&self, frame: FrameIndex) -> Result<Vec<GroundTruthObject>> {
        self.check_frame(frame)?;
        Ok(self.scene.visible_at(frame))
    }

    /// Number of ground-truth objects of `class` at `frame`.
    pub fn ground_truth_count(&self, frame: FrameIndex, class: ObjectClass) -> Result<usize> {
        self.check_frame(frame)?;
        Ok(self.scene.count_at(frame, class))
    }

    /// Renders (decodes) the frame at `frame`.
    pub fn frame(&self, frame: FrameIndex) -> Result<Frame> {
        self.check_frame(frame)?;
        let objects = self.scene.visible_at(frame);
        Ok(self.renderer.render(frame, &objects))
    }

    /// Renders only a `width x height` nearest-neighbor sample of the frame.
    ///
    /// Bit-identical pixels to `resize(self.frame(f)?, width, height)` without
    /// materializing the full buffer — the fast path batched featurization uses
    /// (see [`crate::render::Renderer::render_sampled`]).
    pub fn frame_sampled(&self, frame: FrameIndex, width: usize, height: usize) -> Result<Frame> {
        self.check_frame(frame)?;
        let objects = self.scene.visible_at(frame);
        Ok(self.renderer.render_sampled(frame, &objects, width, height))
    }

    /// Timestamp in seconds of a frame index.
    pub fn timestamp(&self, frame: FrameIndex) -> f64 {
        frame as f64 / self.fps()
    }

    /// Converts a timestamp (seconds) to the nearest frame index, clamped to the video.
    pub fn frame_at_time(&self, secs: f64) -> FrameIndex {
        let idx = (secs * self.fps()).round();
        if idx <= 0.0 {
            0
        } else {
            (idx as u64).min(self.config.num_frames - 1)
        }
    }

    fn check_frame(&self, frame: FrameIndex) -> Result<()> {
        if frame >= self.config.num_frames {
            Err(VideoError::FrameOutOfRange { requested: frame, len: self.config.num_frames })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::ClassProfile;

    fn test_config(frames: u64) -> VideoConfig {
        VideoConfig {
            name: "test".into(),
            scene: SceneConfig {
                width: 1280.0,
                height: 720.0,
                fps: 30.0,
                classes: vec![ClassProfile::car(1.0, 2.0)],
                diurnal_amplitude: 0.2,
                day_variation: 0.2,
            },
            render: RenderConfig::default(),
            num_frames: frames,
            seed: 99,
            day: 0,
        }
    }

    #[test]
    fn generate_and_access() {
        let v = Video::generate(test_config(2_000)).unwrap();
        assert_eq!(v.len(), 2_000);
        assert!(!v.is_empty());
        assert_eq!(v.name(), "test");
        assert!((v.duration_secs() - 2_000.0 / 30.0).abs() < 1e-9);
        let f = v.frame(100).unwrap();
        assert_eq!(f.index, 100);
        assert!((f.timestamp - 100.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn frame_sampled_matches_resize_of_full_render() {
        // The sparse renderer must agree bit for bit with render-then-resize:
        // batched featurization reads it instead of decoding full frames.
        let v = Video::generate(test_config(500)).unwrap();
        for f in (0..500).step_by(23) {
            let full = v.frame(f).unwrap();
            for side in [1usize, 7, 12, 32] {
                let sampled = v.frame_sampled(f, side, side).unwrap();
                assert_eq!(
                    sampled,
                    crate::ingest::resize(&full, side, side).unwrap(),
                    "sparse render diverges at frame {f}, grid {side}"
                );
            }
        }
        assert!(v.frame_sampled(500, 12, 12).is_err());
    }

    #[test]
    fn frame_sampled_matches_resize_across_presets() {
        for preset in [
            crate::DatasetPreset::Taipei,
            crate::DatasetPreset::NightStreet,
            crate::DatasetPreset::GrandCanal,
        ] {
            let v = preset.generate_with_frames(crate::DAY_TEST, 300).unwrap();
            for f in (0..300).step_by(41) {
                let full = v.frame(f).unwrap();
                let sampled = v.frame_sampled(f, 12, 12).unwrap();
                assert_eq!(sampled, crate::ingest::resize(&full, 12, 12).unwrap());
            }
        }
    }

    #[test]
    fn prefix_frames_are_bit_identical_to_the_full_video() {
        let full = Video::generate(test_config(1_000)).unwrap();
        let view = full.prefix(400).unwrap();
        assert_eq!(view.len(), 400);
        assert_eq!(view.name(), full.name());
        for f in (0..400).step_by(37) {
            assert_eq!(view.frame(f).unwrap(), full.frame(f).unwrap());
            assert_eq!(
                view.frame_sampled(f, 12, 12).unwrap(),
                full.frame_sampled(f, 12, 12).unwrap()
            );
            assert_eq!(view.ground_truth(f).unwrap(), full.ground_truth(f).unwrap());
        }
        // The prefix enforces its own length on frame-indexed access.
        assert!(view.frame(400).is_err());
        assert!(view.ground_truth(400).is_err());
        // Degenerate prefixes are rejected.
        assert!(full.prefix(0).is_err());
        assert!(full.prefix(1_001).is_err());
        // A prefix of the full length is just the video.
        assert_eq!(full.prefix(1_000).unwrap().len(), 1_000);
    }

    #[test]
    fn phased_video_generates_and_prefixes() {
        let cfg = test_config(0); // num_frames replaced by the phases' total
        let calm = cfg.scene.clone();
        let mut busy = calm.clone();
        busy.classes = vec![ClassProfile::car(5.0, 2.0)];
        let video = Video::generate_phased(
            cfg,
            &[
                crate::scene::ScenePhase { config: calm, num_frames: 600 },
                crate::scene::ScenePhase { config: busy, num_frames: 600 },
            ],
        )
        .unwrap();
        assert_eq!(video.len(), 1_200);
        let early = video.prefix(600).unwrap();
        for f in (0..600).step_by(113) {
            assert_eq!(early.frame(f).unwrap(), video.frame(f).unwrap());
        }
    }

    #[test]
    fn out_of_range_frame_is_error() {
        let v = Video::generate(test_config(100)).unwrap();
        assert!(matches!(
            v.frame(100),
            Err(VideoError::FrameOutOfRange { requested: 100, len: 100 })
        ));
        assert!(v.ground_truth(1_000).is_err());
    }

    #[test]
    fn zero_length_video_rejected() {
        assert!(Video::generate(test_config(0)).is_err());
    }

    #[test]
    fn frame_at_time_clamps() {
        let v = Video::generate(test_config(300)).unwrap();
        assert_eq!(v.frame_at_time(-5.0), 0);
        assert_eq!(v.frame_at_time(0.0), 0);
        assert_eq!(v.frame_at_time(1.0), 30);
        assert_eq!(v.frame_at_time(1e9), 299);
    }

    #[test]
    fn ground_truth_matches_scene() {
        let v = Video::generate(test_config(2_000)).unwrap();
        for f in [0u64, 17, 555, 1999] {
            assert_eq!(v.ground_truth(f).unwrap(), v.scene().visible_at(f));
        }
    }

    #[test]
    fn day_config_helpers() {
        let cfg = test_config(100);
        let d2 = cfg.for_day(2);
        assert_eq!(d2.day, 2);
        assert_eq!(d2.seed, cfg.seed);
        let short = cfg.with_frames(10);
        assert_eq!(short.num_frames, 10);
    }
}
