//! Object classes, colors and ground-truth objects.
//!
//! The scene simulator produces [`GroundTruthObject`]s: the "real" objects visible in a
//! frame, before any detector noise. The simulated detector in `blazeit-detect` observes
//! these through a noise model; the FrameQL relation is populated from the detector's
//! (noisy) output, exactly as BlazeIt treats Mask R-CNN's output as ground truth for
//! accuracy purposes.

use crate::geometry::BoundingBox;
use crate::track::TrackId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Object classes understood by the simulator and the (simulated) detectors.
///
/// These mirror the MS-COCO classes the paper actually queries (car, bus, boat) plus a
/// few extra classes used in the motivating use cases (person for store planning,
/// bird for ornithology, truck as a common confuser class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car.
    Car,
    /// Bus (tour bus, transit bus, ...).
    Bus,
    /// Boat (rialto / grand-canal streams).
    Boat,
    /// Pedestrian.
    Person,
    /// Truck / lorry.
    Truck,
    /// Bird (ornithology use case).
    Bird,
    /// Bicycle.
    Bicycle,
    /// Motorcycle.
    Motorcycle,
}

impl ObjectClass {
    /// All classes known to the simulator, in a stable order.
    pub const ALL: [ObjectClass; 8] = [
        ObjectClass::Car,
        ObjectClass::Bus,
        ObjectClass::Boat,
        ObjectClass::Person,
        ObjectClass::Truck,
        ObjectClass::Bird,
        ObjectClass::Bicycle,
        ObjectClass::Motorcycle,
    ];

    /// The canonical lower-case name used in FrameQL queries (`class = 'car'`).
    pub fn name(&self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Bus => "bus",
            ObjectClass::Boat => "boat",
            ObjectClass::Person => "person",
            ObjectClass::Truck => "truck",
            ObjectClass::Bird => "bird",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::Motorcycle => "motorcycle",
        }
    }

    /// Parses a class from its FrameQL name (case-insensitive).
    pub fn parse(name: &str) -> Option<ObjectClass> {
        let lower = name.to_ascii_lowercase();
        ObjectClass::ALL.iter().copied().find(|c| c.name() == lower)
    }

    /// A stable small integer id for use as a feature / model output index.
    pub fn index(&self) -> usize {
        // blazeit-lint: allow(panic-site) -- ObjectClass::ALL enumerates every
        // variant of the enum, so position() is total over Self.
        ObjectClass::ALL.iter().position(|c| c == self).expect("class in ALL")
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An RGB color, used both for rendering objects and for content-based UDFs
/// (`redness`, `blueness`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Color {
    /// Red channel (0-255).
    pub r: u8,
    /// Green channel (0-255).
    pub g: u8,
    /// Blue channel (0-255).
    pub b: u8,
}

impl Color {
    /// Creates a color from RGB components.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// A saturated red, used for "red tour buses".
    pub const RED: Color = Color::rgb(210, 40, 35);
    /// A near-white, used for "white transit buses".
    pub const WHITE: Color = Color::rgb(235, 235, 230);
    /// A mid grey (typical car color).
    pub const GREY: Color = Color::rgb(128, 130, 135);
    /// A dark blue.
    pub const BLUE: Color = Color::rgb(40, 60, 200);
    /// A black-ish color.
    pub const BLACK: Color = Color::rgb(25, 25, 30);
    /// A yellow (taxis, some buses).
    pub const YELLOW: Color = Color::rgb(230, 200, 40);
    /// A green.
    pub const GREEN: Color = Color::rgb(40, 170, 60);

    /// Mean of the red channel relative to the other channels, in `[0, 255]`.
    ///
    /// This is the same quantity the `redness` UDF computes over pixels; having it on
    /// the color lets tests check that rendering preserves the signal.
    pub fn redness(&self) -> f32 {
        self.r as f32 - (self.g as f32 + self.b as f32) / 2.0
    }

    /// Blueness analogue of [`Color::redness`].
    pub fn blueness(&self) -> f32 {
        self.b as f32 - (self.r as f32 + self.g as f32) / 2.0
    }

    /// Luminance (perceived brightness) in `[0, 255]`.
    pub fn luminance(&self) -> f32 {
        0.299 * self.r as f32 + 0.587 * self.g as f32 + 0.114 * self.b as f32
    }
}

/// A ground-truth object visible in a single frame.
///
/// One of these exists for every (object, frame) pair in which the object is visible;
/// this is exactly the granularity of the FrameQL relation (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthObject {
    /// The ground-truth track this object belongs to.
    pub track_id: TrackId,
    /// Object class.
    pub class: ObjectClass,
    /// Bounding box in nominal-resolution coordinates, clamped to the frame.
    pub bbox: BoundingBox,
    /// Dominant color of the object (drives rendering and content UDFs).
    pub color: Color,
    /// How "easy" the object is to detect, in `(0, 1]`.
    ///
    /// Smaller objects and low-contrast objects get lower visibility; the simulated
    /// detector uses this to decide miss probability and confidence, mirroring the
    /// paper's observation that detectors struggle with small objects.
    pub visibility: f32,
}

impl GroundTruthObject {
    /// Convenience constructor with full visibility.
    pub fn new(track_id: TrackId, class: ObjectClass, bbox: BoundingBox, color: Color) -> Self {
        GroundTruthObject { track_id, class, bbox, color, visibility: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_roundtrip_names() {
        for c in ObjectClass::ALL {
            assert_eq!(ObjectClass::parse(c.name()), Some(c));
        }
    }

    #[test]
    fn class_parse_case_insensitive() {
        assert_eq!(ObjectClass::parse("CAR"), Some(ObjectClass::Car));
        assert_eq!(ObjectClass::parse("Bus"), Some(ObjectClass::Bus));
        assert_eq!(ObjectClass::parse("submarine"), None);
    }

    #[test]
    fn class_indices_are_unique_and_dense() {
        let mut seen = vec![false; ObjectClass::ALL.len()];
        for c in ObjectClass::ALL {
            let i = c.index();
            assert!(i < ObjectClass::ALL.len());
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }

    #[test]
    fn red_is_redder_than_white() {
        assert!(Color::RED.redness() > Color::WHITE.redness());
        assert!(Color::RED.redness() > 100.0);
        assert!(Color::WHITE.redness().abs() < 20.0);
    }

    #[test]
    fn blue_is_bluer_than_red() {
        assert!(Color::BLUE.blueness() > Color::RED.blueness());
    }

    #[test]
    fn luminance_ordering() {
        assert!(Color::WHITE.luminance() > Color::GREY.luminance());
        assert!(Color::GREY.luminance() > Color::BLACK.luminance());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ObjectClass::Boat.to_string(), "boat");
    }
}
