//! Fixture-driven integration tests for `blazeit-lint`.
//!
//! The fixtures under `tests/fixtures/` are never compiled: each seeds exactly
//! one check's violation pattern (plus a clean file and a suppressed file that
//! must stay silent), and `golden.txt` pins the full rendered output. Re-bless
//! with `BLESS=1 cargo test -p blazeit-lint` after an intentional change.

use std::fs;
use std::path::{Path, PathBuf};

use blazeit_core::lockorder::{
    RANKED_LOCKS, RANK_ADMISSION, RANK_LIVE_INDEX, RANK_MONITOR, RANK_NN_CACHE, RANK_OBS_TRACE,
    RANK_SERVE_CACHE, RANK_SERVE_SLOT, RANK_VIDEO,
};
use blazeit_lint::checks::lock_order::rank_const_name;
use blazeit_lint::model::Event;
use blazeit_lint::{analyze, Input};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every fixture file, tagged as one synthetic crate (so intra-crate call
/// propagation applies) with repo-independent `fixtures/…` paths.
fn fixture_inputs() -> Vec<Input> {
    let dir = fixtures_dir();
    let mut inputs = Vec::new();
    for file in blazeit_lint::collect_rs_files(&dir).unwrap() {
        let rel = file
            .strip_prefix(&dir)
            .unwrap()
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        inputs.push(Input {
            crate_name: "fixture".to_string(),
            path: format!("fixtures/{rel}"),
            source: fs::read_to_string(&file).unwrap(),
        });
    }
    inputs
}

fn single_input(path: &str, source: &str) -> Vec<Input> {
    vec![Input {
        crate_name: "fixture".to_string(),
        path: path.to_string(),
        source: source.to_string(),
    }]
}

#[test]
fn fixtures_match_golden() {
    let rendered: String = analyze(&fixture_inputs()).iter().map(|d| d.render() + "\n").collect();
    let golden_path = fixtures_dir().join("golden.txt");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden_path, &rendered).unwrap();
        return;
    }
    let golden = fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        rendered, golden,
        "fixture diagnostics diverged from golden.txt (re-bless with BLESS=1 if intentional)"
    );
}

#[test]
fn each_check_fires_on_its_fixture() {
    let diags = analyze(&fixture_inputs());
    let count = |code: &str| diags.iter().filter(|d| d.code == code).count();
    assert_eq!(count("lock-order"), 2, "direct + helper-propagated inversion");
    assert_eq!(count("panic-site"), 3, "unwrap, expect, unreachable!");
    assert_eq!(count("panic-site::index"), 1);
    assert_eq!(count("fault-coverage"), 2, "fallible-return + fs-call fns without failpoints");
    assert_eq!(count("clock-accounting"), 1);
    assert_eq!(
        count("sync-primitive"),
        6,
        "three seeded imports (one grouped pair), one body-level import, two qualified calls"
    );
    assert_eq!(count("bad-suppression"), 0);
    assert_eq!(count("unused-suppression"), 0);
}

#[test]
fn clean_and_suppressed_fixtures_are_clean() {
    for d in analyze(&fixture_inputs()) {
        assert!(
            !d.file.ends_with("clean.rs") && !d.file.ends_with("suppressed.rs"),
            "unexpected diagnostic in a clean fixture: {}",
            d.render()
        );
    }
}

/// Inserting a justified `allow` above every finding silences the file with no
/// unused-suppression fallout; removing the directives brings every finding
/// back unchanged.
#[test]
fn suppression_round_trip() {
    let source = fs::read_to_string(fixtures_dir().join("panic_site.rs")).unwrap();
    let before = analyze(&single_input("fixtures/panic_site.rs", &source));
    assert!(!before.is_empty(), "the panic_site fixture must seed findings");

    let mut flagged: Vec<(u32, String)> = before.iter().map(|d| (d.line, d.code.clone())).collect();
    flagged.sort();
    flagged.dedup();
    let mut lines: Vec<String> = source.lines().map(String::from).collect();
    for (line, code) in flagged.iter().rev() {
        lines.insert(
            (*line - 1) as usize,
            format!("    // blazeit-lint: allow({code}) -- round-trip test insertion"),
        );
    }
    let suppressed = analyze(&single_input("fixtures/panic_site.rs", &lines.join("\n")));
    assert!(
        suppressed.is_empty(),
        "suppressed fixture still reports: {:?}",
        suppressed.iter().map(|d| d.render()).collect::<Vec<_>>()
    );

    let after = analyze(&single_input("fixtures/panic_site.rs", &source));
    assert_eq!(after.len(), before.len(), "findings must return once the allows are removed");
}

#[test]
fn suppression_without_reason_is_rejected() {
    let src = "// blazeit-lint: allow(panic-site)\n\
               pub fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n";
    let diags = analyze(&single_input("fixtures/inline.rs", src));
    assert!(
        diags.iter().any(|d| d.code == "bad-suppression"),
        "a directive without `-- <reason>` must be a bad-suppression: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.code == "panic-site"),
        "a malformed directive must not suppress the underlying finding"
    );
}

#[test]
fn unused_suppression_is_reported() {
    let src = "pub fn f() -> u32 {\n    \
               // blazeit-lint: allow(panic-site) -- nothing here actually panics\n    \
               7\n}\n";
    let diags = analyze(&single_input("fixtures/inline.rs", src));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "unused-suppression");
}

/// `#[test]` functions and `#[cfg(test)]` modules are exempt from every check.
#[test]
fn test_code_is_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    fn helper(v: &[u32]) -> u32 {
        v[0] + v.last().unwrap()
    }

    #[test]
    fn t() {
        panic!("panics are fine in tests");
    }
}
"#;
    let diags = analyze(&single_input("fixtures/inline.rs", src));
    assert!(diags.is_empty(), "test code must be exempt: {diags:?}");
}

/// The production workspace itself must lint clean: every finding has either
/// been fixed or carries a justified suppression. This makes `cargo test` a
/// second enforcement point alongside the CI gate.
#[test]
fn workspace_analyzes_clean() {
    let diags = blazeit_lint::analyze_workspace(&repo_root()).unwrap();
    let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
    assert!(rendered.is_empty(), "workspace lint regressions:\n{}", rendered.join("\n"));
}

/// `lockorder::RANKED_LOCKS` is the single source of truth for the hierarchy:
/// the table is well-formed, the runtime `RANK_*` constants are its values,
/// and every `lock_ordered` call site in production source names a table lock
/// paired with that lock's constant.
#[test]
fn rank_table_is_single_source_of_truth() {
    for w in RANKED_LOCKS.windows(2) {
        assert!(w[0].rank < w[1].rank, "ranks must be strictly increasing: {w:?}");
    }
    for (i, a) in RANKED_LOCKS.iter().enumerate() {
        for b in &RANKED_LOCKS[i + 1..] {
            assert_ne!(a.name, b.name, "duplicate lock name in RANKED_LOCKS");
        }
    }
    let by_name = |n: &str| RANKED_LOCKS.iter().find(|l| l.name == n).map(|l| l.rank).unwrap();
    // The serving locks rank *below* every engine lock: a cache miss executes
    // a full query while holding no serving lock, but the converse (engine
    // code acquiring a serving lock) must be impossible by rank.
    assert_eq!(RANK_ADMISSION, by_name("admission"));
    assert_eq!(RANK_SERVE_CACHE, by_name("serve_cache"));
    assert_eq!(RANK_SERVE_SLOT, by_name("serve_slot"));
    assert!(
        by_name("serve_slot") < by_name("monitor"),
        "serving locks must rank below engine locks"
    );
    assert_eq!(RANK_MONITOR, by_name("monitor"));
    assert_eq!(RANK_LIVE_INDEX, by_name("live_index"));
    assert_eq!(RANK_NN_CACHE, by_name("nn_cache"));
    assert_eq!(RANK_VIDEO, by_name("video"));
    // The trace-collector lock ranks *above* every other lock: spans open and
    // close under arbitrary engine locks, and the collector never acquires
    // anything while its lock is held.
    assert_eq!(RANK_OBS_TRACE, by_name("obs_trace"));
    assert!(by_name("video") < by_name("obs_trace"), "obs_trace must rank above every engine lock");

    let root = repo_root();
    let mut call_sites = 0usize;
    let mut sites_by_name: std::collections::BTreeMap<String, usize> = Default::default();
    for (_crate, rel) in blazeit_lint::TARGETS {
        let dir = root.join(rel);
        if !dir.is_dir() {
            continue;
        }
        for file in blazeit_lint::collect_rs_files(&dir).unwrap() {
            let src = fs::read_to_string(&file).unwrap();
            let model = blazeit_lint::model::parse_file(&file.to_string_lossy(), &src);
            for func in &model.functions {
                for ev in &func.events {
                    let Event::Call { path, str_arg, rank_arg, .. } = ev else { continue };
                    if path.last().map(String::as_str) != Some("lock_ordered") {
                        continue;
                    }
                    call_sites += 1;
                    let at = format!("{}:{}", file.display(), func.qualified);
                    let name = str_arg
                        .as_deref()
                        .unwrap_or_else(|| panic!("lock_ordered without a name literal at {at}"));
                    *sites_by_name.entry(name.to_string()).or_default() += 1;
                    let rank = rank_arg
                        .as_deref()
                        .unwrap_or_else(|| panic!("lock_ordered without a RANK_* const at {at}"));
                    let entry = RANKED_LOCKS
                        .iter()
                        .find(|l| l.name == name)
                        .unwrap_or_else(|| panic!("lock \"{name}\" not in RANKED_LOCKS ({at})"));
                    assert_eq!(
                        rank,
                        rank_const_name(entry.name),
                        "call site at {at} pairs \"{name}\" with the wrong rank constant"
                    );
                }
            }
        }
    }
    assert!(call_sites > 0, "no lock_ordered call sites found — did the hierarchy move?");
    // The serving cache's map lock must stay on the statically-checked
    // `lock_ordered` path (its condvar-paired siblings are covered by the
    // model checker instead): join / probe / remove all go through it.
    assert!(
        sites_by_name.get("serve_cache").copied().unwrap_or(0) >= 3,
        "serve_cache lock_ordered call sites went missing: {sites_by_name:?}"
    );
}
