//! Seeded `panic-site` violations: `unwrap`, `expect`, a panicking macro,
//! and direct indexing (`panic-site::index`). Never compiled — analyzed by
//! `crates/lint/tests/lint.rs` and the CI canary.

pub fn take_first(items: &[u32]) -> u32 {
    *items.first().unwrap()
}

pub fn take_config(value: Option<u32>) -> u32 {
    value.expect("config must be set")
}

pub fn unreachable_state(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!("seeded macro panic"),
    }
}

pub fn third(items: &[u32]) -> u32 {
    items[2]
}
