//! Clean fixture: near-miss patterns that must NOT be flagged by any check.
//! Never compiled — analyzed by `crates/lint/tests/lint.rs` and the CI
//! canary (this file contributes zero diagnostics).

// The shim path and the non-primitive std::sync surface are both fine.
use blazeit_core::sync::{AtomicU64, Mutex, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

const WEIGHTS: [f32; 3] = [0.2, 0.3, 0.5];

pub struct Ctx {
    monitor: u32,
    video: u32,
}

pub fn correct_order(ctx: &Ctx) {
    let _monitor = lock_ordered(&ctx.monitor, RANK_MONITOR, "monitor");
    let _video = lock_ordered(&ctx.video, RANK_VIDEO, "video");
}

pub fn drop_releases(ctx: &Ctx) {
    let video = lock_ordered(&ctx.video, RANK_VIDEO, "video");
    drop(video);
    let _monitor = lock_ordered(&ctx.monitor, RANK_MONITOR, "monitor");
}

pub fn scope_releases(ctx: &Ctx) {
    {
        let _video = lock_ordered(&ctx.video, RANK_VIDEO, "video");
    }
    let _monitor = lock_ordered(&ctx.monitor, RANK_MONITOR, "monitor");
}

pub fn non_panicking_lookups(items: &[u32]) -> u32 {
    let first = items.first().copied().unwrap_or(0);
    let second = items.get(1).copied().unwrap_or_default();
    first + second
}

pub fn const_literal_index() -> f32 {
    WEIGHTS[0]
}

pub fn evaluate(nn: &SpecializedNN, frame: &[f32]) -> usize {
    nn.predict_classes(frame).len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v = vec![1u32, 2, 3];
        let last = v.last().unwrap();
        if *last != 3 {
            panic!("test-only panic is exempt");
        }
        let _third = v[2];
    }
}
