//! Seeded `lock-order` violations: `video` (rank 3) acquired before
//! `monitor` (rank 0), both directly and through a helper call. Never
//! compiled — analyzed by `crates/lint/tests/lint.rs` and the CI canary.

pub struct Ctx {
    monitor: u32,
    video: u32,
}

fn lock_monitor(ctx: &Ctx) {
    let _guard = lock_ordered(&ctx.monitor, RANK_MONITOR, "monitor");
}

pub fn inverted_direct(ctx: &Ctx) {
    let _video = lock_ordered(&ctx.video, RANK_VIDEO, "video");
    let _monitor = lock_ordered(&ctx.monitor, RANK_MONITOR, "monitor");
}

pub fn inverted_via_helper(ctx: &Ctx) {
    let _video = lock_ordered(&ctx.video, RANK_VIDEO, "video");
    lock_monitor(ctx);
}
