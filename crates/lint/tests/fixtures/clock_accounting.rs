//! Seeded `clock-accounting` violation: `predict_classes` (uncharged argmax
//! scoring) called from a function that is not an allowlisted charged
//! wrapper. `evaluate` below makes the same call legally. Never compiled —
//! analyzed by `crates/lint/tests/lint.rs` and the CI canary.

pub fn sneaky_scoring(nn: &SpecializedNN, frame: &[f32]) -> usize {
    nn.predict_classes(frame).len()
}

pub fn evaluate(nn: &SpecializedNN, frame: &[f32]) -> usize {
    nn.predict_classes(frame).len()
}
