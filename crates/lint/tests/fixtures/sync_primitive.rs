//! Seeded `sync-primitive` violations: raw `parking_lot` / `std::sync`
//! primitives imported or constructed outside the `blazeit_core::sync` shim.
//! The `Arc`/`mpsc`/`Ordering` imports and the `#[cfg(test)]` module below are
//! the allowed surface and must stay silent. Never compiled — analyzed by
//! `crates/lint/tests/lint.rs` and the CI canary.

use parking_lot::Mutex;
use std::sync::{Mutex as StdMutex, OnceLock};

// Allowed: not scheduling primitives — the shim deliberately leaves these to std.
use std::sync::mpsc::channel;
use std::sync::Arc;

pub struct SneakyCache {
    inner: Mutex<u64>,
    once: OnceLock<u64>,
}

pub fn sneaky_lock() -> StdMutex<u64> {
    // Body-level imports do not escape the check.
    use std::sync::atomic::AtomicU64;
    let _counter = AtomicU64::new(0);
    StdMutex::new(0)
}

pub fn sneaky_qualified() -> u64 {
    // Call-position qualified paths are flagged even without a `use`.
    let lock = parking_lot::RwLock::new(7u64);
    let _cv = std::sync::Condvar::new();
    let shared = std::sync::Arc::new(1u64); // allowed: Arc is not a primitive
    let (tx, _rx) = channel::<u64>();
    drop(tx);
    *lock.read() + *shared
}

#[cfg(test)]
mod tests {
    // Test code may use whatever primitives it likes.
    use std::sync::Mutex;

    #[test]
    fn raw_primitives_are_fine_here() {
        let m = Mutex::new(1u64);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
