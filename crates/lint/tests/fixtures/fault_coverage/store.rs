//! Seeded `fault-coverage` violations (the file is named `store.rs`, which
//! puts it inside the check's dominance scope). `read_block_uncovered` and
//! `remove_stale` have no failpoint on any path; `write_covered` and the
//! helper that routes through it are legal. Never compiled — analyzed by
//! `crates/lint/tests/lint.rs` and the CI canary.

pub fn read_block_uncovered(path: &Path) -> StoreResult<Vec<u8>> {
    fallible_read(path)
}

pub fn remove_stale(path: &Path) {
    let _ = std::fs::remove_file(path);
}

pub fn write_covered(path: &Path) -> StoreResult<()> {
    if let Some(err) = inject(FaultSite::StoreWrite) {
        return Err(err);
    }
    std::fs::write(path, b"payload")?;
    Ok(())
}

pub fn append_via_helper(path: &Path) -> StoreResult<()> {
    write_covered(path)
}
