//! Suppression round-trip fixture: the same kinds of seeded violations as
//! `panic_site.rs`, each carrying a justified `allow` — this file must
//! analyze clean, and none of its suppressions may be reported unused.
//! Never compiled — analyzed by `crates/lint/tests/lint.rs` and the CI
//! canary (this file contributes zero diagnostics).

pub fn take_first(items: &[u32]) -> u32 {
    // blazeit-lint: allow(panic-site) -- fixture: exercises the single-line
    // suppression form, including a continuation line for the reason.
    *items.first().unwrap()
}

pub fn third(items: &[u32]) -> u32 {
    // blazeit-lint: allow(panic-site::index) -- fixture: caller guarantees len > 2
    items[2]
}
