//! Diagnostics: codes, rendering, and JSON output.

/// Severity of a diagnostic. Everything the checks emit today is a warning;
/// `--deny-warnings` turns any unsuppressed warning into a failing exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A check finding (or a malformed/unused suppression).
    Warning,
}

/// One finding, addressed `file:line:col` with a per-check code.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Check code: `lock-order`, `panic-site`, `panic-site::index`,
    /// `fault-coverage`, `clock-accounting`, `bad-suppression`,
    /// `unused-suppression`.
    pub code: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
    /// Severity (always [`Severity::Warning`] today).
    pub severity: Severity,
}

impl Diagnostic {
    /// Builds a warning diagnostic.
    pub fn warn(
        code: &str,
        file: &str,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            file: file.to_string(),
            line,
            col,
            message: message.into(),
            severity: Severity::Warning,
        }
    }

    /// `file:line:col: warning[code]: message` — the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: warning[{}]: {}",
            self.file, self.line, self.col, self.code, self.message
        )
    }

    /// One JSON object per diagnostic (hand-rolled serializer; no deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_str(&self.code),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sorts diagnostics by file, then line, then column, then code — the stable
/// order golden tests compare against.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.code.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.code.as_str(),
        ))
    });
}
