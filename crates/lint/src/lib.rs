//! # blazeit-lint
//!
//! A project-invariant static analyzer for the BlazeIt workspace. Five checks
//! guard the invariants that runtime machinery (chaos tests, the debug-build
//! lock-order assertion) can only verify on executed paths:
//!
//! * [`lock-order`](checks::lock_order) — every statically possible ranked-lock
//!   acquisition respects the documented `monitor → live_index → nn_cache →
//!   video` order (imported from `blazeit_core::lockorder::RANKED_LOCKS`, the
//!   same table the runtime assertion uses).
//! * [`panic-site`](checks::panic_site) — no `unwrap`/`expect`/panicking
//!   macros/direct indexing in production code.
//! * [`fault-coverage`](checks::fault_coverage) — fallible store/stream
//!   functions are dominated by `inject(FaultSite::…)` failpoints, and every
//!   declared fault site keeps at least one live failpoint.
//! * [`clock-accounting`](checks::clock_accounting) — uncharged scoring entry
//!   points are only reachable through allowlisted charged wrappers.
//! * [`sync-primitive`](checks::sync_primitive) — production locks/atomics are
//!   constructed via the `blazeit_core::sync` shim (so the `model` feature can
//!   schedule-explore them), never raw `parking_lot::` / `std::sync::`
//!   primitives.
//!
//! Findings can be suppressed in source with
//! `// blazeit-lint: allow(<check>) -- <reason>` (the reason is mandatory;
//! covers the comment's line and the next) or
//! `// blazeit-lint: allow-file(<check>) -- <reason>` (whole file). Malformed
//! and unused suppressions are themselves diagnostics, so justifications
//! cannot rot.

pub mod checks;
pub mod diag;
pub mod lexer;
pub mod model;

use std::path::{Path, PathBuf};

use checks::{SourceFile, Workspace};
use diag::Diagnostic;

/// The production source the workspace run analyzes, relative to the repo
/// root: every library crate plus the facade. `bench` and the lint itself are
/// tooling, not production paths, and test targets under `tests/` are test
/// code by definition.
pub const TARGETS: &[(&str, &str)] = &[
    ("core", "crates/core/src"),
    ("nn", "crates/nn/src"),
    ("detect", "crates/detect/src"),
    ("frameql", "crates/frameql/src"),
    ("videostore", "crates/videostore/src"),
    ("blazeit", "src"),
];

/// One input to [`analyze`]: crate tag, diagnostic path, and source text.
#[derive(Debug, Clone)]
pub struct Input {
    /// Crate tag (the `lock-order` call-graph unit).
    pub crate_name: String,
    /// Path to render in diagnostics.
    pub path: String,
    /// Source text.
    pub source: String,
}

/// Analyzes a set of in-memory sources: parses each file, runs every check,
/// applies suppressions, and reports malformed/unused suppressions. Returned
/// diagnostics are sorted by file, line, column, code.
pub fn analyze(inputs: &[Input]) -> Vec<Diagnostic> {
    let mut ws = Workspace::default();
    for input in inputs {
        let file_name = Path::new(&input.path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| input.path.clone());
        ws.files.push(SourceFile {
            crate_name: input.crate_name.clone(),
            path: input.path.clone(),
            file_name,
            model: model::parse_file(&input.path, &input.source),
        });
    }
    ws.files.sort_by(|a, b| a.path.cmp(&b.path));
    let raw = checks::run_all(&ws);
    let mut out = Vec::new();
    for d in raw {
        let file = ws.files.iter().find(|f| f.path == d.file);
        let suppressed = file.is_some_and(|f| {
            f.model.suppressions.iter().any(|s| {
                if s.error.is_none() && s.covers(d.line, &d.code) {
                    s.used.set(true);
                    true
                } else {
                    false
                }
            })
        });
        if !suppressed {
            out.push(d);
        }
    }
    for f in &ws.files {
        for s in &f.model.suppressions {
            if let Some(err) = &s.error {
                out.push(Diagnostic::warn("bad-suppression", &f.path, s.line, s.col, err.clone()));
            } else if !s.used.get() {
                out.push(Diagnostic::warn(
                    "unused-suppression",
                    &f.path,
                    s.line,
                    s.col,
                    format!(
                        "suppression for {} matches no diagnostic — remove it (reason was: {})",
                        s.checks.join(", "),
                        s.reason
                    ),
                ));
            }
        }
    }
    diag::sort(&mut out);
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
pub fn collect_rs_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&d)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads and analyzes the standard workspace targets under `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut inputs = Vec::new();
    for (crate_name, rel) in TARGETS {
        let dir = root.join(rel);
        if !dir.is_dir() {
            continue;
        }
        for file in collect_rs_files(&dir)? {
            let source = std::fs::read_to_string(&file)?;
            let path = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            inputs.push(Input { crate_name: crate_name.to_string(), path, source });
        }
    }
    Ok(analyze(&inputs))
}

/// Loads and analyzes an arbitrary directory (fixtures, canary runs). Every
/// file is tagged with `crate_name` so intra-crate propagation still applies.
pub fn analyze_dir(dir: &Path, crate_name: &str) -> std::io::Result<Vec<Diagnostic>> {
    let mut inputs = Vec::new();
    for file in collect_rs_files(dir)? {
        let source = std::fs::read_to_string(&file)?;
        inputs.push(Input {
            crate_name: crate_name.to_string(),
            path: file.to_string_lossy().replace(std::path::MAIN_SEPARATOR, "/"),
            source,
        });
    }
    Ok(analyze(&inputs))
}
