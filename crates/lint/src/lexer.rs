//! A hand-rolled Rust lexer with byte-accurate `line:col` spans.
//!
//! In the same spirit as the FrameQL spanned lexer: no external dependencies,
//! and just enough fidelity for static analysis — identifiers (keywords
//! included), literals (strings, raw strings, byte strings, chars, numbers),
//! lifetimes, punctuation (with `::`, `->` and `=>` fused so path reading is
//! trivial), and delimiters. Comments are lexed out of band into their own
//! list so the suppression scanner can see them while the item parser walks a
//! comment-free token stream.

/// What a token is; the raw text lives in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#type` with the `r#` stripped).
    Ident,
    /// A lifetime such as `'a` (the tick is stripped).
    Lifetime,
    /// String literal (regular, raw, or byte); `text` holds the *contents*.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Punctuation; multi-character `::`, `->` and `=>` are single tokens.
    Punct,
    /// Opening delimiter: one of `(`, `[`, `{`.
    Open,
    /// Closing delimiter: one of `)`, `]`, `}`.
    Close,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Raw text (see [`TokKind`] for what each class stores).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

impl Token {
    /// `true` if this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// `true` if this token is the identifier/keyword `ident`.
    pub fn is_ident(&self, ident: &str) -> bool {
        self.kind == TokKind::Ident && self.text == ident
    }

    /// `true` if this token opens the delimiter `d`.
    pub fn opens(&self, d: char) -> bool {
        self.kind == TokKind::Open && self.text.as_bytes() == [d as u8]
    }

    /// `true` if this token closes the delimiter `d`.
    pub fn closes(&self, d: char) -> bool {
        self.kind == TokKind::Close && self.text.as_bytes() == [d as u8]
    }

    /// `true` for identifiers that are Rust keywords (so `let`, `if`, `match`
    /// etc. are not mistaken for expression positions by the index detector).
    pub fn is_keyword(&self) -> bool {
        self.kind == TokKind::Ident && KEYWORDS.contains(&self.text.as_str())
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];

/// A comment (line, block, or doc), kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its `//` / `/*` introducer.
    pub text: String,
    /// 1-based line of the introducer.
    pub line: u32,
    /// 1-based byte column of the introducer.
    pub col: u32,
    /// `true` when at least one token precedes the comment on its line.
    pub trailing: bool,
}

/// Lexer output: the token stream plus the out-of-band comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes one source file. Unterminated constructs are consumed to end of file
/// rather than reported — the analyzer only runs over code rustc has already
/// accepted, so error recovery buys nothing.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();
    let mut last_token_line = 0u32;
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                    trailing: last_token_line == line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump_n(2);
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump_n(2);
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                    trailing: last_token_line == line,
                });
            }
            b'"' => {
                let text = lex_string(&mut cur);
                push(&mut out, &mut last_token_line, TokKind::Str, text, line, col);
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&cur) => {
                let (kind, text) = lex_prefixed_literal(&mut cur);
                push(&mut out, &mut last_token_line, kind, text, line, col);
            }
            b'\'' => {
                let (kind, text) = lex_tick(&mut cur);
                push(&mut out, &mut last_token_line, kind, text, line, col);
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let text = src[start..cur.pos].to_string();
                push(&mut out, &mut last_token_line, TokKind::Ident, text, line, col);
            }
            _ if b.is_ascii_digit() => {
                let text = lex_number(&mut cur);
                push(&mut out, &mut last_token_line, TokKind::Num, text, line, col);
            }
            b'(' | b'[' | b'{' => {
                cur.bump();
                push(&mut out, &mut last_token_line, TokKind::Open, (b as char).into(), line, col);
            }
            b')' | b']' | b'}' => {
                cur.bump();
                push(&mut out, &mut last_token_line, TokKind::Close, (b as char).into(), line, col);
            }
            _ => {
                let fused = match (b, cur.peek_at(1)) {
                    (b':', Some(b':')) => Some("::"),
                    (b'-', Some(b'>')) => Some("->"),
                    (b'=', Some(b'>')) => Some("=>"),
                    _ => None,
                };
                let text = match fused {
                    Some(op) => {
                        cur.bump_n(2);
                        op.to_string()
                    }
                    None => {
                        cur.bump();
                        (b as char).to_string()
                    }
                };
                push(&mut out, &mut last_token_line, TokKind::Punct, text, line, col);
            }
        }
    }
    out
}

fn push(out: &mut Lexed, last_line: &mut u32, kind: TokKind, text: String, line: u32, col: u32) {
    *last_line = line;
    out.tokens.push(Token { kind, text, line, col });
}

/// `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br"…"`, `b'…'` all start with `r`/`b`;
/// a plain identifier starting with those letters does not.
fn starts_raw_or_byte_literal(cur: &Cursor<'_>) -> bool {
    match (cur.peek(), cur.peek_at(1)) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(cur.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

fn lex_prefixed_literal(cur: &mut Cursor<'_>) -> (TokKind, String) {
    if cur.peek() == Some(b'b') {
        if cur.peek_at(1) == Some(b'\'') {
            cur.bump();
            return lex_tick(cur);
        }
        if cur.peek_at(1) == Some(b'"') {
            cur.bump();
            return (TokKind::Str, lex_string(cur));
        }
        cur.bump(); // `br…` — fall through to the raw-string path.
    }
    // At `r`: raw string `r#*"` or raw identifier `r#ident`.
    cur.bump();
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() == Some(b'"') {
        cur.bump();
        let start = cur.pos;
        loop {
            match cur.peek() {
                None => return (TokKind::Str, String::new()),
                Some(b'"') => {
                    let mut matched = true;
                    for h in 0..hashes {
                        if cur.peek_at(1 + h) != Some(b'#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                        cur.bump_n(1 + hashes);
                        return (TokKind::Str, text);
                    }
                    cur.bump();
                }
                Some(_) => {
                    cur.bump();
                }
            }
        }
    }
    // Raw identifier: `r#type`.
    let start = cur.pos;
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    (TokKind::Ident, String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned())
}

fn lex_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening quote
    let start = cur.pos;
    loop {
        match cur.peek() {
            None | Some(b'"') => break,
            Some(b'\\') => cur.bump_n(2),
            Some(_) => {
                cur.bump();
            }
        }
    }
    let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
    cur.bump(); // closing quote
    text
}

/// At a `'`: either a char literal (`'a'`, `'\n'`) or a lifetime (`'static`).
fn lex_tick(cur: &mut Cursor<'_>) -> (TokKind, String) {
    cur.bump(); // tick
    if cur.peek() == Some(b'\\') {
        cur.bump_n(2);
        while cur.peek().is_some_and(|b| b != b'\'') {
            cur.bump();
        }
        cur.bump();
        return (TokKind::Char, String::new());
    }
    let start = cur.pos;
    if cur.peek().is_some_and(is_ident_start) {
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        if cur.peek() == Some(b'\'') {
            // `'a'` — a char literal whose content looks like an identifier.
            cur.bump();
            return (TokKind::Char, String::new());
        }
        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
        return (TokKind::Lifetime, text);
    }
    // `'x'` for non-identifier x (covers any unicode scalar).
    while cur.peek().is_some_and(|b| b != b'\'') {
        cur.bump();
    }
    cur.bump();
    (TokKind::Char, String::new())
}

fn lex_number(cur: &mut Cursor<'_>) -> String {
    let start = cur.pos;
    while let Some(b) = cur.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            cur.bump();
        } else if b == b'.' && cur.peek_at(1).is_some_and(|n| n.is_ascii_digit()) {
            // `1.5` continues the number; `1..n` does not.
            cur.bump();
        } else if (b == b'+' || b == b'-')
            && matches!(cur.src.get(cur.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && cur.src[start..cur.pos].contains(&b'.')
        {
            // Exponent sign in a float like `1.5e-3`.
            cur.bump();
        } else {
            break;
        }
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_spans() {
        let lexed = lex("fn foo() -> u8 {\n    x::y(a[0])\n}");
        let t = &lexed.tokens;
        assert!(t[0].is_ident("fn") && t[0].is_keyword());
        assert!(t[1].is_ident("foo") && !t[1].is_keyword());
        assert!(t[4].is_punct("->"));
        assert_eq!((t[7].line, t[7].col), (2, 5)); // `x`
        assert!(t[8].is_punct("::"));
    }

    #[test]
    fn strings_chars_lifetimes() {
        let toks = kinds(r#"let s = "pa\"nic!"; let c = 'x'; let l: &'a str = r#s;"#);
        assert!(toks.iter().any(|(k, v)| *k == TokKind::Str && v == "pa\\\"nic!"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(toks.iter().any(|(k, v)| *k == TokKind::Lifetime && v == "a"));
        assert!(toks.iter().any(|(k, v)| *k == TokKind::Ident && v == "s"));
    }

    #[test]
    fn raw_strings_do_not_hide_following_tokens() {
        let toks = kinds("let x = r#\"unwrap() inside \"quotes\"\"#; y.unwrap()");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(toks.iter().any(|(k, v)| *k == TokKind::Ident && v == "unwrap"));
    }

    #[test]
    fn comments_are_out_of_band_with_trailing_flag() {
        let lexed = lex("let a = 1; // trailing\n// standalone\nlet b = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Str));
    }

    #[test]
    fn nested_block_comments_and_numbers() {
        let lexed = lex("/* a /* b */ c */ 1.5e-3 0..10 0xff_u32");
        assert_eq!(lexed.comments.len(), 1);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0", "10", "0xff_u32"]);
    }

    #[test]
    fn char_literal_vs_lifetime_disambiguation() {
        let toks = kinds("match c { 'a' => 1, _ => 2 }; fn f<'a>(x: &'a str) {} let q = '\\'';");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }
}
