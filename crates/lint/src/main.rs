//! `blazeit-lint` — the CLI over [`blazeit_lint`].
//!
//! ```text
//! blazeit-lint [--root <dir>] [--json] [--deny-warnings] [PATH…]
//! ```
//!
//! With no `PATH` arguments, analyzes the standard workspace targets under
//! `--root` (default: the current directory). Explicit `PATH` arguments —
//! files or directories — are analyzed instead (used by the CI canary to prove
//! the gate fails on a seeded violation).
//!
//! Exit status: `0` when clean (or when only reporting without
//! `--deny-warnings`), `1` on unsuppressed diagnostics under
//! `--deny-warnings`, `2` on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use blazeit_lint::diag::Diagnostic;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => return usage("--root requires a directory argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: blazeit-lint [--root <dir>] [--json] [--deny-warnings] [PATH…]\n\n\
                     Checks: lock-order, panic-site (incl. panic-site::index), fault-coverage, \
                     clock-accounting.\n\
                     Suppress with `// blazeit-lint: allow(<check>) -- <reason>`."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag `{arg}`")),
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let result = if paths.is_empty() {
        blazeit_lint::analyze_workspace(&root)
    } else {
        analyze_paths(&paths)
    };
    let diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("blazeit-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        let objects: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
        println!("[{}]", objects.join(","));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        eprintln!(
            "blazeit-lint: {} diagnostic{} ({} files analyzed from {})",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            analyzed_file_count(&paths, &root),
            if paths.is_empty() { root.display().to_string() } else { "explicit paths".into() },
        );
    }
    if deny && !diags.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("blazeit-lint: {msg}\nusage: blazeit-lint [--root <dir>] [--json] [--deny-warnings] [PATH…]");
    ExitCode::from(2)
}

fn analyze_paths(paths: &[PathBuf]) -> std::io::Result<Vec<Diagnostic>> {
    let mut inputs = Vec::new();
    for p in paths {
        if p.is_dir() {
            for file in blazeit_lint::collect_rs_files(p)? {
                inputs.push(read_input(&file)?);
            }
        } else {
            inputs.push(read_input(p)?);
        }
    }
    Ok(blazeit_lint::analyze(&inputs))
}

fn read_input(path: &std::path::Path) -> std::io::Result<blazeit_lint::Input> {
    Ok(blazeit_lint::Input {
        crate_name: "adhoc".to_string(),
        path: path.to_string_lossy().replace(std::path::MAIN_SEPARATOR, "/"),
        source: std::fs::read_to_string(path)?,
    })
}

fn analyzed_file_count(paths: &[PathBuf], root: &std::path::Path) -> usize {
    let count_dir =
        |d: &std::path::Path| blazeit_lint::collect_rs_files(d).map(|f| f.len()).unwrap_or(0);
    if paths.is_empty() {
        blazeit_lint::TARGETS.iter().map(|(_, rel)| count_dir(&root.join(rel))).sum()
    } else {
        paths.iter().map(|p| if p.is_dir() { count_dir(p) } else { 1 }).sum()
    }
}
