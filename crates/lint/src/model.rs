//! A lightweight item/block model built from the token stream.
//!
//! This is deliberately not a full Rust parser. The checks need four things
//! and the model provides exactly those:
//!
//! 1. **Functions** with their names, enclosing impl/trait type, module path,
//!    signature idents (for return-type matching), and whether they are test
//!    code (`#[test]`, or inside a `#[cfg(test)]` module).
//! 2. **Events** inside each body, in source order: calls (with their path
//!    segments and receiver shape), macro invocations, index expressions,
//!    `let` bindings, and block open/close — enough to replay lock
//!    acquisition scopes and build call graphs.
//! 3. **Suppressions** parsed from `// blazeit-lint: allow(...) -- reason`
//!    comments.
//! 4. Enough error tolerance to walk any file `rustc` already accepted.

use crate::lexer::{lex, Comment, TokKind, Token};

/// How a call names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// Free or path call: `foo(..)`, `a::b::foo(..)`, `Type::foo(..)`.
    Path,
    /// Method on `self`: `self.foo(..)`.
    SelfMethod,
    /// Method on any other expression: `x.foo(..)`, `x.y().foo(..)`.
    Method,
}

/// One interesting occurrence inside a function body, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A call expression. `path` holds the `::`-separated segments leading to
    /// the callee (last element is the callee name); for method calls it holds
    /// only the method name.
    Call {
        /// Path segments; `path.last()` is the callee name.
        path: Vec<String>,
        /// Receiver shape.
        receiver: Receiver,
        /// `let` binding name the call's result is assigned to, if the call is
        /// the first call of a `let <name> = …;` statement.
        binding: Option<String>,
        /// First string-literal argument at the call's own paren depth, if any
        /// (`lock_ordered(RANK_X, "name", ..)` → `Some("name")`).
        str_arg: Option<String>,
        /// First `RANK_*`-shaped identifier argument, if any.
        rank_arg: Option<String>,
        /// Identifier arguments at the call's own paren depth (for `drop(g)`).
        ident_args: Vec<String>,
        /// Number of arguments (the receiver of a method call not counted).
        nargs: usize,
        /// 1-based line.
        line: u32,
        /// 1-based column of the callee name.
        col: u32,
        /// Brace depth (relative to the body) where the call occurs.
        depth: u32,
    },
    /// A macro invocation `name!(…)` / `name![…]` / `name!{…}`.
    MacroCall {
        /// Macro name.
        name: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A direct index expression `expr[…]`.
    Index {
        /// 1-based line.
        line: u32,
        /// 1-based column of the `[`.
        col: u32,
        /// `true` for a numeric-literal index into a SCREAMING_CASE constant
        /// (`COEFFS[3]`) — for arrays rustc rejects out-of-bounds literals at
        /// compile time, so these are not runtime panic sites.
        const_literal: bool,
    },
    /// A block opened (`{`).
    OpenBlock,
    /// A block closed (`}`).
    CloseBlock,
}

/// One parsed function (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct Function {
    /// Bare name.
    pub name: String,
    /// `Type::name` when inside `impl Type` / `impl Trait for Type` / `trait Type`.
    pub qualified: String,
    /// Enclosing impl/trait type, if any.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// `true` for `#[test]` functions and anything inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// `true` when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Number of parameters, the `self` receiver not counted.
    pub arity: usize,
    /// Identifiers appearing in the return type (after `->`, before the body).
    pub ret_idents: Vec<String>,
    /// Body events in source order (empty for bodiless trait methods).
    pub events: Vec<Event>,
}

impl Function {
    /// Direct calls to `name` (any receiver shape).
    pub fn calls<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| match e {
            Event::Call { path, .. } => path.last().is_some_and(|n| n == name),
            _ => false,
        })
    }

    /// `true` if the body contains a call to `name`.
    pub fn calls_any(&self, name: &str) -> bool {
        self.calls(name).next().is_some()
    }
}

/// Whether a call site (receiver shape + argument count) is compatible with a
/// function definition's signature. Call-graph construction uses this to
/// reject name-collision edges — without it, a lock-free `RetryPolicy::run`
/// would inherit the lock summary of every other `run` in the crate.
pub fn signature_matches(receiver: &Receiver, nargs: usize, def: &Function) -> bool {
    match receiver {
        Receiver::SelfMethod | Receiver::Method => def.has_self && def.arity == nargs,
        // `free_fn(a, b)`, `Type::assoc(a, b)`, or UFCS `Type::method(&x, a, b)`.
        Receiver::Path => def.arity == nargs || (def.has_self && def.arity + 1 == nargs),
    }
}

/// A parsed `// blazeit-lint: allow(check) -- reason` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Check codes the directive names (comma-separated in source).
    pub checks: Vec<String>,
    /// Mandatory justification after `--` (empty string ⇒ invalid directive).
    pub reason: String,
    /// `true` for `allow-file(...)`, which covers the whole file.
    pub file_scope: bool,
    /// 1-based line of the comment.
    pub line: u32,
    /// Last line of the comment block (directive plus adjacent same-column
    /// continuation comments, whose text extends the reason).
    pub end_line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// `true` once a diagnostic matched (used by the unused-suppression check).
    pub used: std::cell::Cell<bool>,
    /// Malformed-directive message, if the directive could not be parsed.
    pub error: Option<String>,
}

impl Suppression {
    /// Whether this directive names `code` (exact match, or a `::`-prefixed
    /// sub-code such as `panic-site::index` matched by `panic-site`).
    pub fn matches_code(&self, code: &str) -> bool {
        self.checks.iter().any(|c| {
            c == code || (code.starts_with(c.as_str()) && code[c.len()..].starts_with("::"))
        })
    }

    /// Whether this directive covers a diagnostic at `line` with code `code`.
    /// Line-scoped directives cover their own block (trailing comments) and
    /// the line after it (standalone comments above the offending expression).
    pub fn covers(&self, line: u32, code: &str) -> bool {
        if !self.matches_code(code) {
            return false;
        }
        self.file_scope || (line >= self.line && line <= self.end_line + 1)
    }
}

/// One flattened `use` path: `use std::sync::{Arc, Mutex};` yields two decls
/// (`std::sync::Arc`, `std::sync::Mutex`). Aliases are dropped (`as X` does
/// not change what is imported); a glob records its prefix (`use std::sync::*`
/// → `std::sync`).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The `::`-joined imported path.
    pub path: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// 1-based column of the `use` keyword.
    pub col: u32,
    /// `true` inside `#[cfg(test)]` modules or test-function bodies.
    pub in_test: bool,
}

/// Everything the checks need to know about one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Path as given to [`parse_file`] (repo-relative in practice).
    pub path: String,
    /// All functions, in source order (nested functions appear after their parent).
    pub functions: Vec<Function>,
    /// Flattened `use` declarations, item-level and function-body-level.
    pub uses: Vec<UseDecl>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
}

/// Parses `src` (the contents of `path`) into a [`FileModel`].
pub fn parse_file(path: &str, src: &str) -> FileModel {
    let lexed = lex(src);
    let suppressions = parse_suppressions(&lexed.comments);
    let mut functions = Vec::new();
    let mut parser = Parser { toks: &lexed.tokens, pos: 0, uses: Vec::new() };
    parser.items(&mut functions, &ModCtx::default());
    FileModel { path: path.to_string(), functions, uses: parser.uses, suppressions }
}

const DIRECTIVE: &str = "blazeit-lint:";

fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (ci, c) in comments.iter().enumerate() {
        let Some(at) = c.text.find(DIRECTIVE) else { continue };
        let mut rest = c.text[at + DIRECTIVE.len()..].trim().to_string();
        // Adjacent same-column comments without their own directive continue
        // the reason, so justifications can wrap across lines.
        let mut end_line = c.line;
        for c2 in &comments[ci + 1..] {
            if c2.line != end_line + 1 || c2.col != c.col || c2.text.contains(DIRECTIVE) {
                break;
            }
            rest.push(' ');
            rest.push_str(c2.text.trim());
            end_line = c2.line;
        }
        let rest = rest.as_str();
        let mut sup = Suppression {
            checks: Vec::new(),
            reason: String::new(),
            file_scope: false,
            line: c.line,
            end_line,
            col: c.col,
            used: std::cell::Cell::new(false),
            error: None,
        };
        let body = if let Some(b) = rest.strip_prefix("allow-file") {
            sup.file_scope = true;
            b
        } else if let Some(b) = rest.strip_prefix("allow") {
            b
        } else {
            sup.error = Some(format!(
                "unknown directive `{}` (expected `allow(<check>) -- <reason>` or \
                 `allow-file(<check>) -- <reason>`)",
                rest.split_whitespace().next().unwrap_or("")
            ));
            out.push(sup);
            continue;
        };
        let body = body.trim_start();
        let parsed = body.strip_prefix('(').and_then(|b| b.split_once(')'));
        let Some((list, tail)) = parsed else {
            sup.error = Some("malformed directive: expected `(<check>[, <check>…])`".into());
            out.push(sup);
            continue;
        };
        sup.checks =
            list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        if sup.checks.is_empty() {
            sup.error = Some("directive names no checks".into());
        } else if let Some(unknown) = sup.checks.iter().find(|c| !known_check(c)) {
            sup.error = Some(format!("unknown check `{unknown}` in directive"));
        }
        match tail.trim_start().strip_prefix("--") {
            Some(reason) => {
                let reason = reason.trim().trim_end_matches("*/").trim();
                if reason.is_empty() {
                    sup.error.get_or_insert_with(|| {
                        "suppression reason is mandatory: `-- <why this is safe>`".into()
                    });
                } else {
                    sup.reason = reason.to_string();
                }
            }
            None => {
                sup.error.get_or_insert_with(|| {
                    "suppression reason is mandatory: `-- <why this is safe>`".into()
                });
            }
        }
        out.push(sup);
    }
    out
}

fn known_check(name: &str) -> bool {
    let base = name.split("::").next().unwrap_or(name);
    matches!(
        base,
        "lock-order" | "panic-site" | "fault-coverage" | "clock-accounting" | "sync-primitive"
    ) && matches!(
        name,
        "lock-order"
            | "panic-site"
            | "panic-site::index"
            | "fault-coverage"
            | "clock-accounting"
            | "sync-primitive"
    )
}

/// Flattens one `use` tree (the tokens between `use` and `;`): segments
/// accumulate left to right, `{…}` groups recurse per comma-separated branch
/// (a group always ends its branch), `as` aliases are skipped, and a glob
/// marks the accumulated prefix itself as imported.
fn flatten_use_tree(toks: &[Token], prefix: &[String], out: &mut Vec<String>) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut imported = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                i += 2; // the alias renames; it does not change what is imported
                continue;
            }
            TokKind::Ident => {
                segs.push(t.text.clone());
                imported = true;
            }
            TokKind::Punct if t.text == "*" => {
                imported = true; // glob: the prefix itself is what is imported
            }
            TokKind::Open if t.opens('{') => {
                let mut depth = 1i32;
                let mut j = i + 1;
                let mut branch = j;
                while j < toks.len() && depth > 0 {
                    match toks[j].kind {
                        TokKind::Open => depth += 1,
                        TokKind::Close => depth -= 1,
                        TokKind::Punct if depth == 1 && toks[j].text == "," => {
                            flatten_use_tree(&toks[branch..j], &segs, out);
                            branch = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                // Final branch, excluding the closing `}` when present.
                let end = if depth == 0 { j - 1 } else { j };
                flatten_use_tree(&toks[branch..end], &segs, out);
                return;
            }
            _ => {}
        }
        i += 1;
    }
    if imported {
        out.push(segs.join("::"));
    }
}

#[derive(Default, Clone)]
struct ModCtx {
    is_test: bool,
    self_type: Option<String>,
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    uses: Vec<UseDecl>,
}

/// Attribute summary for the item that follows.
#[derive(Default)]
struct Attrs {
    is_test_fn: bool,
    is_cfg_test: bool,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    /// Skips a balanced delimiter group; `self.pos` must be at the opener.
    fn skip_group(&mut self) {
        let Some(open) = self.bump() else { return };
        if open.kind != TokKind::Open {
            return;
        }
        let mut depth = 1u32;
        while depth > 0 {
            match self.bump() {
                Some(t) if t.kind == TokKind::Open => depth += 1,
                Some(t) if t.kind == TokKind::Close => depth -= 1,
                Some(_) => {}
                None => return,
            }
        }
    }

    /// Consumes a run of `#[…]` / `#![…]` attributes, summarizing them.
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        while self.peek().is_some_and(|t| t.is_punct("#")) {
            self.bump();
            if self.peek().is_some_and(|t| t.is_punct("!")) {
                self.bump();
            }
            let start = self.pos;
            self.skip_group();
            let inner = &self.toks[start..self.pos];
            let idents: Vec<&str> = inner
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            if idents.first() == Some(&"test") || idents.first() == Some(&"tokio") {
                out.is_test_fn = true;
            }
            // `#[cfg(test)]` / `#[cfg(all(test, …))]` mark test-only items;
            // `not(test)` and `any(test, …)` can still compile into production,
            // so they do not.
            if idents.first() == Some(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not")
                && !idents.contains(&"any")
            {
                out.is_cfg_test = true;
            }
        }
        out
    }

    /// Walks items at the current level until `}` or EOF.
    fn items(&mut self, functions: &mut Vec<Function>, ctx: &ModCtx) {
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Close {
                return;
            }
            let attrs = self.attrs();
            let Some(t) = self.peek() else { return };
            match t.text.as_str() {
                "mod" if t.kind == TokKind::Ident => {
                    self.bump();
                    self.bump(); // module name
                    match self.peek() {
                        Some(t) if t.opens('{') => {
                            self.bump();
                            let nested = ModCtx {
                                is_test: ctx.is_test || attrs.is_cfg_test,
                                self_type: None,
                            };
                            self.items(functions, &nested);
                            self.bump(); // `}`
                        }
                        _ => {
                            self.bump(); // `;`
                        }
                    }
                }
                "impl" | "trait" if t.kind == TokKind::Ident => {
                    let is_impl = t.text == "impl";
                    self.bump();
                    let self_type = self.impl_self_type(is_impl);
                    match self.peek() {
                        Some(t) if t.opens('{') => {
                            self.bump();
                            let nested =
                                ModCtx { is_test: ctx.is_test || attrs.is_cfg_test, self_type };
                            self.items(functions, &nested);
                            self.bump();
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                "fn" if t.kind == TokKind::Ident => {
                    self.function(functions, ctx, &attrs);
                }
                "use" if t.kind == TokKind::Ident => {
                    self.use_decl(ctx.is_test || attrs.is_cfg_test);
                }
                _ => {
                    // Any other item: consume one token; groups are skipped
                    // whole so stray `fn`-like idents inside const expressions
                    // or type positions can't confuse the walker.
                    let t = self.bump().unwrap();
                    if t.kind == TokKind::Open {
                        self.pos -= 1;
                        self.skip_group();
                    }
                }
            }
        }
    }

    /// Consumes a `use` item (cursor at the `use` keyword), flattening its
    /// tree into [`Parser::uses`].
    fn use_decl(&mut self, in_test: bool) {
        let use_tok = self.bump().unwrap();
        let (line, col) = (use_tok.line, use_tok.col);
        let start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 && t.is_punct(";") {
                break;
            }
            match t.kind {
                TokKind::Open => depth += 1,
                TokKind::Close => depth -= 1,
                _ => {}
            }
            self.bump();
        }
        let tree = &self.toks[start..self.pos];
        self.bump(); // `;`
        let mut paths = Vec::new();
        flatten_use_tree(tree, &[], &mut paths);
        self.uses.extend(paths.into_iter().map(|path| UseDecl { path, line, col, in_test }));
    }

    /// After `impl`/`trait`: extract the self-type name (last path segment of
    /// the implemented-for type) and stop at `{`, `;`, or EOF.
    fn impl_self_type(&mut self, is_impl: bool) -> Option<String> {
        let mut angle = 0i32;
        let mut last_ident: Option<String> = None;
        let mut after_for = !is_impl; // `trait Name` — first top-level ident wins
        let mut found_for = false;
        while let Some(t) = self.peek() {
            if angle == 0 && (t.opens('{') || t.is_punct(";") || t.is_ident("where")) {
                break;
            }
            match t.text.as_str() {
                "<" if t.kind == TokKind::Punct => angle += 1,
                ">" if t.kind == TokKind::Punct => angle -= 1,
                "for" if t.kind == TokKind::Ident && angle == 0 => {
                    found_for = true;
                    last_ident = None;
                    after_for = true;
                }
                _ if t.kind == TokKind::Ident
                    && !t.is_keyword()
                    && angle == 0
                    && (after_for || !found_for) =>
                {
                    last_ident = Some(t.text.clone());
                }
                _ => {}
            }
            self.bump();
        }
        last_ident
    }

    fn function(&mut self, functions: &mut Vec<Function>, ctx: &ModCtx, attrs: &Attrs) {
        let fn_tok = self.bump().unwrap(); // `fn`
        let Some(name_tok) = self.bump() else { return };
        let name = name_tok.text.clone();
        // Skip generics, then the parameter list.
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if angle == 0 && t.opens('(') {
                break;
            }
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            self.bump();
        }
        let (has_self, arity) = self.params();
        // Return type + where clause: collect idents until body `{` or `;`.
        let mut ret_idents = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.opens('{') || t.is_punct(";") => break,
                Some(t) => {
                    if t.kind == TokKind::Ident && !t.is_keyword() {
                        ret_idents.push(t.text.clone());
                    }
                    self.bump();
                }
            }
        }
        let mut func = Function {
            qualified: match &ctx.self_type {
                Some(ty) => format!("{ty}::{name}"),
                None => name.clone(),
            },
            name,
            self_type: ctx.self_type.clone(),
            line: fn_tok.line,
            col: fn_tok.col,
            is_test: ctx.is_test || attrs.is_test_fn || attrs.is_cfg_test,
            has_self,
            arity,
            ret_idents,
            events: Vec::new(),
        };
        if self.peek().is_some_and(|t| t.opens('{')) {
            self.bump();
            self.body(&mut func, functions, ctx);
        } else {
            self.bump(); // `;`
        }
        functions.push(func);
    }

    /// Consumes the parameter group (cursor at its `(`), returning whether the
    /// first parameter is a `self` receiver and the count of the remaining
    /// parameters. Parameters are separated by commas at delimiter depth 1
    /// outside generic angle brackets (`HashMap<K, V>` is one parameter; this
    /// is a type position, so every `<` opens generics).
    fn params(&mut self) -> (bool, usize) {
        if !self.peek().is_some_and(|t| t.opens('(')) {
            self.bump();
            return (false, 0);
        }
        let start = self.pos;
        self.skip_group();
        let inner = &self.toks[start + 1..(self.pos - 1).max(start + 1)];
        let mut has_self = false;
        for t in inner.iter().take(3) {
            if t.is_ident("self") {
                has_self = true;
                break;
            }
            if !(t.is_punct("&") || t.is_ident("mut") || t.kind == TokKind::Lifetime) {
                break;
            }
        }
        let mut params = 0usize;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut seen_any = false;
        for t in inner {
            match t.kind {
                TokKind::Open => depth += 1,
                TokKind::Close => depth -= 1,
                TokKind::Punct if depth == 0 => match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "," if angle == 0 => {
                        params += 1;
                        seen_any = false;
                        continue;
                    }
                    _ => {}
                },
                _ => {}
            }
            seen_any = true;
        }
        if seen_any {
            params += 1; // final parameter without a trailing comma
        }
        (has_self, params.saturating_sub(has_self as usize))
    }

    /// Walks a function body (cursor just past its `{`), collecting events
    /// until the matching `}` is consumed. Nested `fn` items are parsed as
    /// separate functions; their events do not leak into the parent.
    fn body(&mut self, func: &mut Function, functions: &mut Vec<Function>, ctx: &ModCtx) {
        let mut depth = 1u32;
        // The `let`-binding name of the current statement, consumed by the
        // first call event of the statement.
        let mut pending_let: Option<String> = None;
        let mut let_armed = false;
        while depth > 0 {
            let Some(t) = self.peek() else { return };
            match t.kind {
                TokKind::Ident if t.text == "fn" => {
                    let attrs = Attrs::default();
                    self.function(functions, ctx, &attrs);
                    continue;
                }
                TokKind::Ident if t.text == "use" => {
                    // Function-body `use` declarations (e.g. scoped atomics
                    // imports) must not escape the sync-primitive check.
                    self.use_decl(func.is_test);
                    continue;
                }
                TokKind::Ident if t.text == "let" => {
                    // `let [mut] name =` — anything fancier (patterns) simply
                    // leaves no binding, which only costs drop-tracking precision.
                    let mut look = self.pos + 1;
                    if self.toks.get(look).is_some_and(|t| t.is_ident("mut")) {
                        look += 1;
                    }
                    if let (Some(n), Some(eq)) = (self.toks.get(look), self.toks.get(look + 1)) {
                        if n.kind == TokKind::Ident && !n.is_keyword() && eq.is_punct("=") {
                            pending_let = Some(n.text.clone());
                            let_armed = true;
                        }
                    }
                    self.bump();
                    continue;
                }
                TokKind::Ident if !t.is_keyword() => {
                    self.call_or_macro(func, &mut pending_let, depth);
                    continue;
                }
                TokKind::Open if t.opens('{') => {
                    depth += 1;
                    func.events.push(Event::OpenBlock);
                    self.bump();
                    continue;
                }
                TokKind::Close if t.closes('}') => {
                    depth -= 1;
                    if depth > 0 {
                        func.events.push(Event::CloseBlock);
                    }
                    self.bump();
                    continue;
                }
                TokKind::Open if t.opens('[') => {
                    // Index expression iff the previous token can end an
                    // indexable expression.
                    let is_index = self.pos > 0
                        && match &self.toks[self.pos - 1] {
                            p if p.kind == TokKind::Ident => !p.is_keyword() || p.text == "self",
                            p if p.kind == TokKind::Close => !p.closes('}'),
                            p if p.is_punct("?") => true,
                            _ => false,
                        };
                    if is_index {
                        let prev = &self.toks[self.pos - 1];
                        let const_receiver = prev.kind == TokKind::Ident
                            && prev
                                .text
                                .chars()
                                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                            && prev.text.chars().any(|c| c.is_ascii_uppercase());
                        let literal_index =
                            self.toks.get(self.pos + 1).is_some_and(|n| n.kind == TokKind::Num)
                                && self.toks.get(self.pos + 2).is_some_and(|c| c.closes(']'));
                        func.events.push(Event::Index {
                            line: t.line,
                            col: t.col,
                            const_literal: const_receiver && literal_index,
                        });
                    }
                    self.bump();
                    continue;
                }
                TokKind::Punct if t.text == ";" => {
                    if let_armed {
                        pending_let = None;
                        let_armed = false;
                    }
                    self.bump();
                    continue;
                }
                TokKind::Punct if t.text == "#" => {
                    // Attribute inside a body (e.g. on a statement or match arm).
                    self.bump();
                    if self.peek().is_some_and(|t| t.is_punct("!")) {
                        self.bump();
                    }
                    if self.peek().is_some_and(|t| t.kind == TokKind::Open) {
                        self.skip_group();
                    }
                    continue;
                }
                _ => {
                    self.bump();
                    continue;
                }
            }
        }
    }

    /// At a non-keyword identifier inside a body: classify it as a call, a
    /// macro invocation, or plain usage, emitting the matching event.
    fn call_or_macro(&mut self, func: &mut Function, pending_let: &mut Option<String>, depth: u32) {
        let start = self.pos;
        // Collect the longest `a::b::c` path ending here.
        let mut path = vec![self.toks[self.pos].text.clone()];
        let mut end = self.pos + 1;
        while self.toks.get(end).is_some_and(|t| t.is_punct("::"))
            && self.toks.get(end + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            path.push(self.toks[end + 1].text.clone());
            end += 2;
        }
        let name_tok = &self.toks[end - 1];
        let next = self.toks.get(end);
        // Macro?
        if path.len() == 1
            && next.is_some_and(|t| t.is_punct("!"))
            && self.toks.get(end + 1).is_some_and(|t| t.kind == TokKind::Open)
        {
            func.events.push(Event::MacroCall {
                name: path[0].clone(),
                line: name_tok.line,
                col: name_tok.col,
            });
            self.pos = end + 1;
            self.skip_group();
            return;
        }
        // Call?
        if next.is_some_and(|t| t.opens('(')) {
            let receiver = if start > 0 && self.toks[start - 1].is_punct(".") {
                if start > 1 && self.toks[start - 2].is_ident("self") {
                    Receiver::SelfMethod
                } else {
                    Receiver::Method
                }
            } else {
                Receiver::Path
            };
            let (str_arg, rank_arg, ident_args, nargs) = self.scan_args(end);
            func.events.push(Event::Call {
                path,
                receiver,
                binding: pending_let.take(),
                str_arg,
                rank_arg,
                ident_args,
                nargs,
                line: name_tok.line,
                col: name_tok.col,
                depth,
            });
            self.pos = end; // continue into the argument list for nested events
            self.bump(); // consume `(` without emitting OpenBlock
            return;
        }
        self.pos = end;
    }

    /// Peeks into the argument group starting at `open` (which must be `(`),
    /// collecting top-level string/`RANK_*`/identifier arguments and the
    /// argument count, without consuming anything.
    ///
    /// The argument count separates on commas at depth 1, skipping commas
    /// inside closure parameter lists (`sort_by(|a, b| …)`) and inside
    /// turbofish generics (`collect::<HashMap<K, V>>()`); a bare `<` in
    /// expression position is a comparison, not generics, so only `::<` opens
    /// angle tracking.
    fn scan_args(&self, open: usize) -> (Option<String>, Option<String>, Vec<String>, usize) {
        let mut str_arg = None;
        let mut rank_arg = None;
        let mut ident_args = Vec::new();
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut in_closure_params = false;
        let mut commas = 0usize;
        let mut seen_any = false;
        let mut i = open;
        while let Some(t) = self.toks.get(i) {
            match t.kind {
                TokKind::Open => depth += 1,
                TokKind::Close => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Str if depth == 1 && str_arg.is_none() => {
                    str_arg = Some(t.text.clone());
                }
                TokKind::Ident if depth == 1 => {
                    if t.text.starts_with("RANK_") && rank_arg.is_none() {
                        rank_arg = Some(t.text.clone());
                    }
                    ident_args.push(t.text.clone());
                }
                _ => {}
            }
            if depth == 1 {
                match t.text.as_str() {
                    "|" if t.kind == TokKind::Punct => {
                        if in_closure_params {
                            in_closure_params = false;
                        } else {
                            // Closure-opening `|` follows a comma, the call's
                            // own `(`, or `move`; bitwise-or follows an operand.
                            let prev = &self.toks[i - 1];
                            in_closure_params =
                                prev.is_punct(",") || prev.opens('(') || prev.is_ident("move");
                        }
                    }
                    "<" if t.kind == TokKind::Punct && self.toks[i - 1].is_punct("::") => {
                        angle += 1;
                    }
                    "<" if t.kind == TokKind::Punct && angle > 0 => angle += 1,
                    ">" if t.kind == TokKind::Punct && angle > 0 => angle -= 1,
                    "," if t.kind == TokKind::Punct
                        && angle == 0
                        && !in_closure_params
                        && i > open =>
                    {
                        commas += 1;
                        seen_any = false;
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            if i > open {
                seen_any = true;
            }
            i += 1;
        }
        let nargs = commas + seen_any as usize;
        (str_arg, rank_arg, ident_args, nargs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        parse_file("test.rs", src)
    }

    #[test]
    fn functions_with_impl_and_module_context() {
        let m = model(
            "impl Foo { fn a(&self) {} }\n\
             impl std::fmt::Display for Bar { fn fmt(&self) {} }\n\
             #[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }\n\
             fn free() -> Result<u8, StoreError> { Ok(1) }",
        );
        let names: Vec<&str> = m.functions.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, vec!["Foo::a", "Bar::fmt", "helper", "t", "free"]);
        assert!(m.functions[2].is_test && m.functions[3].is_test);
        assert!(!m.functions[4].is_test);
        assert!(m.functions[4].ret_idents.contains(&"StoreError".to_string()));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let m = model("#[cfg(not(test))] mod prod { fn f() { x.unwrap(); } }");
        assert!(!m.functions[0].is_test);
    }

    #[test]
    fn calls_macros_and_indexes() {
        let m = model(
            "fn f(v: &[u8]) { let g = lock_ordered(RANK_VIDEO, \"video\", &m); \
             self.helper(); std::fs::read(p); drop(g); panic!(\"no\"); let x = v[0]; \
             let t = [0u8; 4]; let s: &[u8] = &v[1..]; vec![1, 2]; }",
        );
        let f = &m.functions[0];
        let calls: Vec<String> = f
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { path, .. } => Some(path.join("::")),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["lock_ordered", "helper", "std::fs::read", "drop"]);
        let lock = f.calls("lock_ordered").next().unwrap();
        let Event::Call { binding, str_arg, rank_arg, .. } = lock else { unreachable!() };
        assert_eq!(binding.as_deref(), Some("g"));
        assert_eq!(str_arg.as_deref(), Some("video"));
        assert_eq!(rank_arg.as_deref(), Some("RANK_VIDEO"));
        let drops: Vec<&Event> = f.calls("drop").collect();
        let Event::Call { ident_args, .. } = drops[0] else { unreachable!() };
        assert_eq!(ident_args, &vec!["g".to_string()]);
        assert!(f
            .events
            .iter()
            .any(|e| matches!(e, Event::MacroCall { name, .. } if name == "panic")));
        let indexes = f.events.iter().filter(|e| matches!(e, Event::Index { .. })).count();
        assert_eq!(indexes, 2, "v[0] and v[1..] index; [0u8; 4] and vec![…] do not");
    }

    #[test]
    fn suppression_parsing() {
        let m = model(
            "// blazeit-lint: allow(panic-site) -- divisor checked above\n\
             // blazeit-lint: allow-file(panic-site::index) -- kernel; dims pre-validated\n\
             // blazeit-lint: allow(panic-site)\n\
             // blazeit-lint: allow(bogus-check) -- whatever\n\
             fn f() {}",
        );
        assert_eq!(m.suppressions.len(), 4);
        assert!(m.suppressions[0].error.is_none());
        assert!(m.suppressions[0].covers(1, "panic-site"));
        assert!(m.suppressions[0].covers(2, "panic-site"));
        assert!(!m.suppressions[0].covers(3, "panic-site"));
        assert!(m.suppressions[1].file_scope);
        assert!(m.suppressions[1].covers(999, "panic-site::index"));
        assert!(!m.suppressions[1].covers(999, "panic-site"), "sub-code allow must not widen");
        assert!(m.suppressions[2].error.is_some(), "missing reason is an error");
        assert!(m.suppressions[3].error.is_some(), "unknown check is an error");
    }

    #[test]
    fn base_code_allow_covers_sub_codes() {
        let m = model("// blazeit-lint: allow(panic-site) -- reason\nfn f() {}");
        assert!(m.suppressions[0].covers(2, "panic-site::index"));
    }

    #[test]
    fn let_binding_attaches_only_to_first_call() {
        let m = model("fn f() { let a = outer(inner()); }");
        let f = &m.functions[0];
        let bindings: Vec<Option<String>> = f
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { binding, .. } => Some(binding.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(bindings, vec![Some("a".to_string()), None]);
    }

    #[test]
    fn use_trees_flatten_with_groups_aliases_and_globs() {
        let m = model(
            "use std::sync::{Arc, Mutex as StdMutex, atomic::{AtomicU64, Ordering}};\n\
             use parking_lot::*;\n\
             pub use std::sync::OnceLock;\n\
             fn f() { use std::sync::Condvar; let _ = Condvar::new(); }\n\
             #[cfg(test)] mod tests { use std::sync::Mutex; }\n",
        );
        let paths: Vec<(&str, bool)> =
            m.uses.iter().map(|u| (u.path.as_str(), u.in_test)).collect();
        assert_eq!(
            paths,
            vec![
                ("std::sync::Arc", false),
                ("std::sync::Mutex", false),
                ("std::sync::atomic::AtomicU64", false),
                ("std::sync::atomic::Ordering", false),
                ("parking_lot", false),
                ("std::sync::OnceLock", false),
                ("std::sync::Condvar", false),
                ("std::sync::Mutex", true),
            ],
        );
        assert_eq!(m.uses[0].line, 1);
        assert_eq!(m.uses[4].line, 2, "a glob records its prefix at the `use` keyword");
    }

    #[test]
    fn nested_fn_events_do_not_leak() {
        let m = model("fn outer() { fn inner() { x.unwrap(); } inner(); }");
        assert_eq!(m.functions.len(), 2);
        let inner = m.functions.iter().find(|f| f.name == "inner").unwrap();
        let outer = m.functions.iter().find(|f| f.name == "outer").unwrap();
        assert!(inner.calls_any("unwrap"));
        assert!(!outer.calls_any("unwrap"));
        assert!(outer.calls_any("inner"));
    }
}
