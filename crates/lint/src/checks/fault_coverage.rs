//! `fault-coverage`: chaos coverage cannot silently rot.
//!
//! Two sub-rules:
//!
//! 1. **Dominance** — in `store.rs` and `stream.rs`, every production function
//!    that performs `std::fs` calls or whose return type names
//!    `StoreError`/`StoreResult` must be *dominated by* a failpoint: its body
//!    must reach an `inject(FaultSite::…)` call, directly or through the
//!    intra-file call graph. A new I/O path added without a failpoint is
//!    invisible to the chaos suite — this rule makes it a lint failure
//!    instead.
//! 2. **Inventory** — every variant of `blazeit_core::fault::FaultSite::ALL`
//!    must appear in at least one `inject(FaultSite::…)` call somewhere in the
//!    analyzed source. Deleting the last failpoint of a declared site fails
//!    the build.

use std::collections::{HashMap, HashSet};

use blazeit_core::fault::FaultSite;

use super::Workspace;
use crate::diag::Diagnostic;
use crate::model::{Event, Function};

const CODE: &str = "fault-coverage";

/// Files whose fallible surface must be failpoint-dominated.
const COVERED_FILES: &[&str] = &["store.rs", "stream.rs"];

pub(super) fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_dominance(ws, &mut diags);
    check_inventory(ws, &mut diags);
    diags
}

fn is_fs_call(path: &[String]) -> bool {
    path.len() >= 2 && path[path.len() - 2] == "fs"
}

fn needs_coverage(func: &Function) -> bool {
    // `StoreResult<_>` / `Result<_, StoreError>` returns are fallible store
    // operations; a bare `StoreError` (or `Option<StoreError>`) return is an
    // error *constructor* — nothing there can fail, so nothing to inject.
    let fallible_ret = func.ret_idents.iter().any(|i| i == "StoreResult")
        || (func.ret_idents.iter().any(|i| i == "Result")
            && func.ret_idents.iter().any(|i| i == "StoreError"));
    let does_fs =
        func.events.iter().any(|e| matches!(e, Event::Call { path, .. } if is_fs_call(path)));
    fallible_ret || does_fs
}

fn check_dominance(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !COVERED_FILES.contains(&file.file_name.as_str()) {
            continue;
        }
        let fns: Vec<&Function> = file.model.functions.iter().filter(|f| !f.is_test).collect();
        let by_name: HashMap<&str, Vec<usize>> = {
            let mut m: HashMap<&str, Vec<usize>> = HashMap::new();
            for (i, f) in fns.iter().enumerate() {
                m.entry(f.name.as_str()).or_default().push(i);
            }
            m
        };
        // `covered[i]`: function i's body reaches an inject() call, directly or
        // through intra-file calls (fixpoint).
        let mut covered: Vec<bool> = fns.iter().map(|f| f.calls_any("inject")).collect();
        loop {
            let mut changed = false;
            for (i, f) in fns.iter().enumerate() {
                if covered[i] {
                    continue;
                }
                let reaches = f.events.iter().any(|e| {
                    let Event::Call { path, .. } = e else { return false };
                    let Some(callee) = path.last() else { return false };
                    by_name.get(callee.as_str()).is_some_and(|ts| ts.iter().any(|&t| covered[t]))
                });
                if reaches {
                    covered[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (i, f) in fns.iter().enumerate() {
            if needs_coverage(f) && !covered[i] {
                let surface = if f
                    .events
                    .iter()
                    .any(|e| matches!(e, Event::Call { path, .. } if is_fs_call(path)))
                {
                    "performs std::fs calls"
                } else {
                    "returns a StoreError-fallible Result"
                };
                diags.push(Diagnostic::warn(
                    CODE,
                    &file.path,
                    f.line,
                    f.col,
                    format!(
                        "fn `{}` {surface} but is not dominated by an inject(FaultSite::…) \
                         failpoint — the chaos suite cannot exercise this path; add a failpoint \
                         or route through a covered helper",
                        f.qualified
                    ),
                ));
            }
        }
    }
}

fn check_inventory(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    // The inventory rule only makes sense when the crate defining the sites is
    // part of the analyzed set (fixture runs analyze a synthetic crate and
    // would otherwise report every site missing).
    if !ws.files.iter().any(|f| f.crate_name == "core" && f.file_name == "fault.rs") {
        return;
    }
    let mut seen: HashSet<String> = HashSet::new();
    for file in &ws.files {
        for func in &file.model.functions {
            if func.is_test {
                continue;
            }
            for event in &func.events {
                let Event::Call { path, ident_args, .. } = event else { continue };
                if path.last().map(String::as_str) != Some("inject") {
                    continue;
                }
                // `inject(fault::FaultSite::StoreRead)` — the variant is one of
                // the top-level identifier arguments.
                for arg in ident_args {
                    seen.insert(arg.clone());
                }
            }
        }
    }
    for site in FaultSite::ALL {
        let variant = format!("{site:?}");
        if !seen.contains(&variant) {
            diags.push(Diagnostic::warn(
                CODE,
                "(workspace)",
                0,
                0,
                format!(
                    "declared fault site FaultSite::{variant} (\"{}\") has no live \
                     inject(FaultSite::{variant}) call site in the analyzed source — either wire \
                     the failpoint back in or retire the site",
                    site.label()
                ),
            ));
        }
    }
}
