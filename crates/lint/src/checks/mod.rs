//! The check catalog.
//!
//! | code | invariant |
//! |------|-----------|
//! | `lock-order` | ranked locks are only acquired in the documented order, over all statically possible call chains |
//! | `panic-site` (+ `panic-site::index`) | no `unwrap`/`expect`/`panic!`-family macros or direct slice indexing in production code |
//! | `fault-coverage` | every fallible store/stream function is dominated by an `inject(FaultSite::…)` failpoint, and every declared fault site has at least one live failpoint |
//! | `clock-accounting` | uncharged detector/NN scoring entry points are only called from allowlisted charged wrappers |
//! | `sync-primitive` | production locks/atomics are constructed via the `blazeit_core::sync` shim, never raw `parking_lot::`/`std::sync::` |

pub mod clock_accounting;
pub mod fault_coverage;
pub mod lock_order;
pub mod panic_site;
pub mod sync_primitive;

use crate::diag::Diagnostic;
use crate::model::FileModel;

/// One file under analysis, tagged with the crate it belongs to.
#[derive(Debug)]
pub struct SourceFile {
    /// Crate name (`core`, `nn`, …) — the call-graph unit for `lock-order`.
    pub crate_name: String,
    /// Repo-relative path used in diagnostics.
    pub path: String,
    /// Base file name (`store.rs`), used by file-scoped checks.
    pub file_name: String,
    /// Parsed model.
    pub model: FileModel,
}

/// All files under analysis.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Files in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
}

/// Runs every check over the workspace, returning raw (pre-suppression)
/// diagnostics.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(lock_order::check(ws));
    diags.extend(panic_site::check(ws));
    diags.extend(fault_coverage::check(ws));
    diags.extend(clock_accounting::check(ws));
    diags.extend(sync_primitive::check(ws));
    diags
}
