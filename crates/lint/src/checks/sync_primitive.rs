//! `sync-primitive`: production locks and atomics go through the sync shim.
//!
//! The `model` cargo feature routes every `Mutex`/`RwLock`/`Condvar`/
//! `AtomicU64`/`OnceLock` in the engine through the `blazeit-model` schedule
//! explorer — but only if the primitive was constructed via the shim
//! (`blazeit_core::sync`, backed by `blazeit_videostore::sync`). A raw
//! `parking_lot::` or `std::sync::` primitive is invisible to the model
//! checker: its acquisitions are not scheduling points, so races and
//! deadlocks through it are silently unexplored. This check keeps the
//! model-checkable surface closed by flagging raw imports and qualified calls
//! in production code.
//!
//! Exemptions:
//!
//! * test code (`#[test]` fns, `#[cfg(test)]` modules) — tests may use
//!   whatever they like;
//! * the shim itself (`crates/videostore/src/sync.rs` carries a justified
//!   `allow-file`), which must wrap the raw primitives;
//! * non-primitive `std::sync` items with no scheduling semantics of their
//!   own: `Arc`/`Weak` (refcounts, not locks), `mpsc` channels (modeled at
//!   their mutex-guarded receiver), `atomic::Ordering`, and the poison-API
//!   marker types.

use super::Workspace;
use crate::diag::Diagnostic;
use crate::model::Event;

const CODE: &str = "sync-primitive";

/// `std::sync` items allowed outside the shim: nothing in this list is a
/// blocking or atomic primitive the model checker would need to interpose on.
const ALLOWED_STD_SYNC: &[&str] = &[
    "Arc",
    "Weak",
    "mpsc",
    "atomic::Ordering",
    "PoisonError",
    "LockResult",
    "TryLockError",
    "WaitTimeoutResult",
];

/// Returns the offending prefix when `path` names a raw sync primitive.
fn banned(path: &str) -> Option<&'static str> {
    if path == "parking_lot" || path.starts_with("parking_lot::") {
        return Some("parking_lot");
    }
    let rest = if path == "std::sync" {
        "" // glob or bare module import: everything primitive comes along
    } else {
        path.strip_prefix("std::sync::")?
    };
    let allowed =
        ALLOWED_STD_SYNC.iter().any(|a| rest == *a || rest.starts_with(&format!("{a}::")));
    if allowed {
        None
    } else {
        Some("std::sync")
    }
}

fn message(path: &str, origin: &'static str) -> String {
    format!(
        "raw `{path}` bypasses the sync shim — construct locks/atomics via \
         `blazeit_core::sync` (or `blazeit_videostore::sync` below core) so the \
         `model` feature can explore them; `{origin}` primitives are invisible \
         to the schedule checker"
    )
}

pub(super) fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        for u in &file.model.uses {
            if u.in_test {
                continue;
            }
            if let Some(origin) = banned(&u.path) {
                diags.push(Diagnostic::warn(
                    CODE,
                    &file.path,
                    u.line,
                    u.col,
                    message(&u.path, origin),
                ));
            }
        }
        for func in &file.model.functions {
            if func.is_test {
                continue;
            }
            for event in &func.events {
                let Event::Call { path, line, col, .. } = event else { continue };
                if path.len() < 2 {
                    continue; // bare calls resolve through `use`, checked above
                }
                let joined = path.join("::");
                if let Some(origin) = banned(&joined) {
                    diags.push(Diagnostic::warn(
                        CODE,
                        &file.path,
                        *line,
                        *col,
                        message(&joined, origin),
                    ));
                }
            }
        }
    }
    diags
}
