//! `lock-order`: the static superset of the runtime `lockorder.rs` assertion.
//!
//! The runtime check only fires on interleavings that debug-build tests happen
//! to execute. This check instead considers every *statically possible*
//! acquisition: it extracts ranked-lock acquisitions (`lock_ordered(RANK_…,
//! "name", …)` call sites and helpers returning `OrderedGuard`), propagates
//! them through an intra-crate, name-matched call graph, and flags any chain
//! on which a lock could be acquired while an equal- or higher-ranked lock is
//! already held. With the total rank order enforced everywhere, the lock graph
//! cannot contain a cycle — so this check subsumes static deadlock-cycle
//! detection for the ranked hierarchy.
//!
//! The rank table is **not** duplicated here: it is imported from
//! `blazeit_core::lockorder::RANKED_LOCKS`, the same table the runtime
//! assertion uses, so the two layers cannot diverge.

use std::collections::{HashMap, HashSet};

use blazeit_core::lockorder::RANKED_LOCKS;

use super::Workspace;
use crate::diag::Diagnostic;
use crate::model::{signature_matches, Event, Function, Receiver};

const CODE: &str = "lock-order";

/// Renders the documented order (`admission → … → video → obs_trace`).
pub fn documented_order() -> String {
    RANKED_LOCKS.iter().map(|l| l.name).collect::<Vec<_>>().join(" → ")
}

/// The `RANK_*` constant name for a table entry (`monitor` → `RANK_MONITOR`).
pub fn rank_const_name(lock_name: &str) -> String {
    format!("RANK_{}", lock_name.to_uppercase())
}

fn rank_table() -> HashMap<String, (u8, &'static str)> {
    RANKED_LOCKS.iter().map(|l| (rank_const_name(l.name), (l.rank, l.name))).collect()
}

/// A function's lock summary: the set of ranks it may acquire, directly or
/// through any call chain (bitmask over ranks).
type RankMask = u64;

fn mask_ranks(mask: RankMask) -> impl Iterator<Item = u8> {
    (0..64u8).filter(move |r| mask & (1 << r) != 0)
}

fn lock_name(rank: u8) -> &'static str {
    RANKED_LOCKS.iter().find(|l| l.rank == rank).map(|l| l.name).unwrap_or("?")
}

struct FnRef<'a> {
    file: usize,
    func: &'a Function,
}

/// Per-crate analysis state.
struct CrateGraph<'a> {
    fns: Vec<FnRef<'a>>,
    /// name → indices into `fns` (all same-named functions in the crate).
    by_name: HashMap<&'a str, Vec<usize>>,
    /// Transitive acquirable-rank mask per function.
    summary: Vec<RankMask>,
    /// Functions returning an `OrderedGuard` (treated as acquisitions at the caller).
    returns_guard: Vec<bool>,
}

impl<'a> CrateGraph<'a> {
    /// Resolves a call event to candidate callee indices: same name AND a
    /// signature (receiver shape + argument count) compatible with the call
    /// site. For `self.m(..)` calls, candidates on the caller's own impl type
    /// win outright when any exist.
    fn resolve(&self, caller: usize, event: &Event) -> Vec<usize> {
        let Event::Call { path, receiver, nargs, .. } = event else { return Vec::new() };
        let Some(callee) = path.last() else { return Vec::new() };
        // A call spelled `drop(x)` is always `std::mem::drop` — the language
        // rejects direct `Drop::drop` calls — so resolving it to the crate's
        // `Drop` impls would fabricate edges into destructors (the walker
        // separately interprets `drop(binding)` as releasing a held guard).
        if callee == "drop" {
            return Vec::new();
        }
        let Some(targets) = self.by_name.get(callee.as_str()) else { return Vec::new() };
        let compatible: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&t| signature_matches(receiver, *nargs, self.fns[t].func))
            .collect();
        if *receiver == Receiver::SelfMethod {
            if let Some(st) = &self.fns[caller].func.self_type {
                let own: Vec<usize> = compatible
                    .iter()
                    .copied()
                    .filter(|&t| self.fns[t].func.self_type.as_ref() == Some(st))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        compatible
    }
}

pub(super) fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let ranks = rank_table();
    let mut diags = Vec::new();
    let mut crates: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in ws.files.iter().enumerate() {
        crates.entry(&f.crate_name).or_default().push(i);
    }
    let mut crate_names: Vec<&&str> = crates.keys().collect();
    crate_names.sort();
    for name in crate_names {
        let graph = build_graph(ws, &crates[*name], &ranks, &mut diags);
        walk_functions(ws, &graph, &ranks, &mut diags);
    }
    diags
}

fn build_graph<'a>(
    ws: &'a Workspace,
    file_indices: &[usize],
    ranks: &HashMap<String, (u8, &'static str)>,
    diags: &mut Vec<Diagnostic>,
) -> CrateGraph<'a> {
    let mut fns = Vec::new();
    for &fi in file_indices {
        for func in &ws.files[fi].model.functions {
            if !func.is_test {
                fns.push(FnRef { file: fi, func });
            }
        }
    }
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.func.name.as_str()).or_default().push(i);
    }
    let returns_guard: Vec<bool> =
        fns.iter().map(|f| f.func.ret_idents.iter().any(|i| i == "OrderedGuard")).collect();
    // Direct acquisitions; malformed call sites are diagnosed here.
    let summary: Vec<RankMask> = fns
        .iter()
        .map(|f| {
            let mut mask = 0u64;
            for (rank, _name, _line, _col) in acquisitions(ws, f, ranks, Some(diags)) {
                mask |= 1 << rank;
            }
            mask
        })
        .collect();
    let mut graph = CrateGraph { fns, by_name, summary, returns_guard };
    // Fixpoint over the signature-resolved call graph.
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            let mut mask = graph.summary[i];
            for event in &graph.fns[i].func.events {
                if matches!(event, Event::Call { .. }) {
                    for t in graph.resolve(i, event) {
                        mask |= graph.summary[t];
                    }
                }
            }
            if mask != graph.summary[i] {
                graph.summary[i] = mask;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    graph
}

/// Direct `lock_ordered` acquisitions in a function, with rank-table
/// validation (unknown `RANK_*` constants and name/rank mismatches are
/// themselves diagnostics when `diags` is provided).
fn acquisitions(
    ws: &Workspace,
    f: &FnRef<'_>,
    ranks: &HashMap<String, (u8, &'static str)>,
    mut diags: Option<&mut Vec<Diagnostic>>,
) -> Vec<(u8, String, u32, u32)> {
    let path = &ws.files[f.file].path;
    let mut out = Vec::new();
    for event in &f.func.events {
        let Event::Call { path: cpath, rank_arg, str_arg, line, col, .. } = event else { continue };
        if cpath.last().map(String::as_str) != Some("lock_ordered") {
            continue;
        }
        let Some(rank_const) = rank_arg else {
            if let Some(d) = diags.as_deref_mut() {
                d.push(Diagnostic::warn(
                    CODE,
                    path,
                    *line,
                    *col,
                    "lock_ordered call without a recognizable RANK_* constant — the static \
                     checker cannot rank this acquisition"
                        .to_string(),
                ));
            }
            continue;
        };
        match ranks.get(rank_const) {
            None => {
                if let Some(d) = diags.as_deref_mut() {
                    d.push(Diagnostic::warn(
                        CODE,
                        path,
                        *line,
                        *col,
                        format!(
                            "unknown rank constant `{rank_const}` — not present in \
                             lockorder::RANKED_LOCKS; add the lock to the table first"
                        ),
                    ));
                }
            }
            Some(&(rank, table_name)) => {
                if let Some(site_name) = str_arg {
                    if site_name != table_name {
                        if let Some(d) = diags.as_deref_mut() {
                            d.push(Diagnostic::warn(
                                CODE,
                                path,
                                *line,
                                *col,
                                format!(
                                    "acquisition names lock \"{site_name}\" but `{rank_const}` is \
                                     documented as \"{table_name}\" in lockorder::RANKED_LOCKS"
                                ),
                            ));
                        }
                    }
                }
                out.push((
                    rank,
                    str_arg.clone().unwrap_or_else(|| table_name.to_string()),
                    *line,
                    *col,
                ));
            }
        }
    }
    out
}

struct Held {
    rank: u8,
    name: String,
    depth: u32,
    binding: Option<String>,
}

fn walk_functions(
    ws: &Workspace,
    graph: &CrateGraph<'_>,
    ranks: &HashMap<String, (u8, &'static str)>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, f) in graph.fns.iter().enumerate() {
        let path = &ws.files[f.file].path;
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0u32;
        for event in &f.func.events {
            match event {
                Event::OpenBlock => depth += 1,
                Event::CloseBlock => {
                    depth = depth.saturating_sub(1);
                    held.retain(|h| h.depth <= depth);
                }
                Event::Call { path: cpath, binding, ident_args, line, col, depth: d, .. } => {
                    let callee = cpath.last().map(String::as_str).unwrap_or("");
                    if callee == "lock_ordered" {
                        let acq = acquisitions_at(ws, f, ranks, *line, *col);
                        for (rank, name) in acq {
                            report_conflicts(path, *line, *col, rank, &name, &held, None, diags);
                            held.push(Held { rank, name, depth: *d, binding: binding.clone() });
                        }
                        continue;
                    }
                    if callee == "drop" {
                        held.retain(|h| h.binding.as_ref().is_none_or(|b| !ident_args.contains(b)));
                        continue;
                    }
                    // A call into the crate: anything the callee (transitively)
                    // acquires must rank strictly above everything held here.
                    let targets = graph.resolve(i, event);
                    if targets.is_empty() || targets.iter().all(|&t| t == i) {
                        continue; // unresolved, or pure self-recursion
                    }
                    let mut acquired: RankMask = 0;
                    let mut guard_ranks: RankMask = 0;
                    for &t in &targets {
                        acquired |= graph.summary[t];
                        if graph.returns_guard[t] {
                            guard_ranks |= graph.summary[t];
                        }
                    }
                    for rank in mask_ranks(acquired) {
                        report_conflicts(
                            path,
                            *line,
                            *col,
                            rank,
                            lock_name(rank),
                            &held,
                            Some(callee),
                            diags,
                        );
                    }
                    // Guard-returning helpers hand the acquisition back to us:
                    // from here on this function holds those ranks.
                    for rank in mask_ranks(guard_ranks) {
                        held.push(Held {
                            rank,
                            name: lock_name(rank).to_string(),
                            depth: *d,
                            binding: binding.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

/// Re-extracts the (rank, name) pairs of the `lock_ordered` call at a specific
/// source position (the event list does not cache the parse).
fn acquisitions_at(
    ws: &Workspace,
    f: &FnRef<'_>,
    ranks: &HashMap<String, (u8, &'static str)>,
    line: u32,
    col: u32,
) -> Vec<(u8, String)> {
    acquisitions(ws, f, ranks, None)
        .into_iter()
        .filter(|&(_, _, l, c)| l == line && c == col)
        .map(|(r, n, _, _)| (r, n))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn report_conflicts(
    path: &str,
    line: u32,
    col: u32,
    rank: u8,
    name: &str,
    held: &[Held],
    via_call: Option<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut reported: HashSet<u8> = HashSet::new();
    for h in held {
        if h.rank >= rank && reported.insert(h.rank) {
            let how = match via_call {
                Some(callee) => format!("call to `{callee}` may acquire"),
                None => "acquires".to_string(),
            };
            diags.push(Diagnostic::warn(
                CODE,
                path,
                line,
                col,
                format!(
                    "{how} \"{name}\" (rank {rank}) while \"{}\" (rank {}) is held; \
                     the documented order is {}",
                    h.name,
                    h.rank,
                    documented_order()
                ),
            ));
        }
    }
}
