//! `panic-site`: panic-freedom in production code.
//!
//! Flags, outside `#[cfg(test)]` modules and `#[test]` functions:
//!
//! * `.unwrap()` / `.expect(…)` method calls (`unwrap_or*` and friends are
//!   fine — exact-name matching only);
//! * the panicking macros `panic!`, `unreachable!`, `todo!`, `unimplemented!`;
//! * direct slice/array indexing `expr[…]` (code `panic-site::index`, so hot
//!   numeric kernels can carry a narrow file-level allow without also hiding
//!   new `unwrap`s).
//!
//! The engine's invariant since PR 6 is "never a panic, never silently wrong";
//! this check is what keeps that invariant from decaying as code is added.

use super::Workspace;
use crate::diag::Diagnostic;
use crate::model::{Event, Receiver};

const CODE: &str = "panic-site";
const CODE_INDEX: &str = "panic-site::index";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

pub(super) fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        for func in &file.model.functions {
            if func.is_test {
                continue;
            }
            for event in &func.events {
                match event {
                    Event::MacroCall { name, line, col }
                        if PANIC_MACROS.contains(&name.as_str()) =>
                    {
                        diags.push(Diagnostic::warn(
                            CODE,
                            &file.path,
                            *line,
                            *col,
                            format!(
                                "`{name}!` in production fn `{}` — return a typed error instead \
                                 (or justify with `// blazeit-lint: allow(panic-site) -- <reason>`)",
                                func.qualified
                            ),
                        ));
                    }
                    Event::Call { path, receiver, line, col, .. }
                        if matches!(receiver, Receiver::Method | Receiver::SelfMethod)
                            && path.len() == 1
                            && PANIC_METHODS.contains(&path[0].as_str()) =>
                    {
                        diags.push(Diagnostic::warn(
                            CODE,
                            &file.path,
                            *line,
                            *col,
                            format!(
                                "`.{}()` in production fn `{}` — handle the failure as a typed \
                                 error (or justify with `// blazeit-lint: allow(panic-site) -- \
                                 <reason>`)",
                                path[0], func.qualified
                            ),
                        ));
                    }
                    // Literal indices into named constants are compile-checked
                    // for arrays; flagging them would only breed suppressions.
                    Event::Index { const_literal: true, .. } => {}
                    Event::Index { line, col, .. } => {
                        diags.push(Diagnostic::warn(
                            CODE_INDEX,
                            &file.path,
                            *line,
                            *col,
                            format!(
                                "direct indexing in production fn `{}` can panic on an \
                                 out-of-range index — prefer `.get(…)` or justify the bound \
                                 (`// blazeit-lint: allow(panic-site::index) -- <reason>`)",
                                func.qualified
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
    diags
}
