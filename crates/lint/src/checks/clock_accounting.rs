//! `clock-accounting`: no un-charged simulated inference.
//!
//! Every expensive operation in the engine must charge the shared `SimClock`
//! before (or while) it runs — that is what makes simulated runtimes honest
//! and comparable. The charging happens in a small set of wrapper functions;
//! the raw scoring primitives they wrap perform real work but touch no clock.
//! This check pins that layering: each *restricted* entry point below may only
//! be called from its allowlisted charged wrappers (or from test code). A new
//! call site anywhere else means somebody found a way to run detector or NN
//! scoring without paying for it.
//!
//! The table is part of the lint's project configuration on purpose: adding a
//! new charged wrapper is a deliberate, reviewed act (edit the table), not
//! something inferred from the code under analysis.

use super::Workspace;
use crate::diag::Diagnostic;
use crate::model::Event;

const CODE: &str = "clock-accounting";

/// A restricted scoring entry point and the charged wrappers allowed to call it.
pub struct ClockRule {
    /// Callee method/function name (matched on the last path segment).
    pub callee: &'static str,
    /// Functions (bare names) allowed to call it.
    pub allowed_callers: &'static [&'static str],
    /// Why the callee is restricted — rendered in diagnostics.
    pub note: &'static str,
}

/// The restricted-callee table.
///
/// * Detector: `detect_uncharged` generates detections without charging; only
///   the region-charging wrappers may reach it.
/// * NN forward passes: `logits_batch` is the uncharged inner loop; the
///   `predict_*` family wraps it without charging and is therefore restricted
///   too, all the way up to `SpecializedNN::{score_batch, score_frame}` — the
///   two places that charge `CostCategory::SpecializedInference`.
/// * `Dense::forward` / `forward_into` / `forward_inference` are the layer
///   kernels under all of the above plus the (training-charged) fit loop.
pub const RULES: &[ClockRule] = &[
    ClockRule {
        callee: "detect_uncharged",
        allowed_callers: &["detect_in_region", "detect_batch_in_region"],
        note: "generates detections without charging CostCategory::Detection",
    },
    ClockRule {
        callee: "logits_batch",
        allowed_callers: &["logits", "predict_scores_into_rows"],
        note: "uncharged forward pass",
    },
    ClockRule {
        callee: "logits",
        allowed_callers: &["evaluate", "fit"],
        note: "uncharged forward pass (allocating variant)",
    },
    ClockRule {
        callee: "predict_scores_into_rows",
        allowed_callers: &["score_batch", "predict_scores"],
        note: "uncharged batched scoring into a ScoreMatrix",
    },
    ClockRule {
        callee: "predict_scores",
        allowed_callers: &["predict_probs", "predict_classes"],
        note: "uncharged batched scoring",
    },
    ClockRule {
        callee: "predict_probs",
        allowed_callers: &["score_frame"],
        note: "uncharged per-example scoring",
    },
    ClockRule {
        callee: "predict_classes",
        allowed_callers: &["evaluate", "accuracy"],
        note: "uncharged argmax scoring",
    },
    ClockRule {
        callee: "accuracy",
        allowed_callers: &["train"],
        note: "uncharged evaluation (full forward pass per example); \
               SpecializedNN::train charges CostCategory::Training beforehand",
    },
    ClockRule {
        callee: "forward",
        allowed_callers: &["train_batch"],
        note: "uncharged layer forward pass (training-cached variant)",
    },
    ClockRule {
        callee: "forward_into",
        allowed_callers: &["logits_batch", "forward_inference"],
        note: "uncharged layer forward pass into scratch",
    },
    ClockRule {
        callee: "forward_inference",
        allowed_callers: &[],
        note: "uncharged layer forward pass (allocating inference variant; test-only)",
    },
];

pub(super) fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        for func in &file.model.functions {
            if func.is_test {
                continue;
            }
            for event in &func.events {
                let Event::Call { path, line, col, .. } = event else { continue };
                let Some(callee) = path.last() else { continue };
                let Some(rule) = RULES.iter().find(|r| r.callee == callee) else { continue };
                if rule.allowed_callers.contains(&func.name.as_str()) {
                    continue;
                }
                diags.push(Diagnostic::warn(
                    CODE,
                    &file.path,
                    *line,
                    *col,
                    format!(
                        "`{}` ({}) called from `{}`, which is not an allowlisted charged \
                         wrapper (allowed: {}) — route through a charging wrapper or extend \
                         the table in crates/lint/src/checks/clock_accounting.rs",
                        rule.callee,
                        rule.note,
                        func.qualified,
                        if rule.allowed_callers.is_empty() {
                            "none — test-only entry point".to_string()
                        } else {
                            rule.allowed_callers.join(", ")
                        }
                    ),
                ));
            }
        }
    }
    diags
}
