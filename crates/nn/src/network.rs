//! The sequential multi-layer network with grouped softmax heads.

// blazeit-lint: allow-file(panic-site::index) -- forward/backward kernels: layer buffers are sized
// from the network's own topology at construction

use crate::layers::{softmax_segments_into, Dense};
use crate::loss::{grouped_cross_entropy, HeadLayout};
use crate::optimizer::{SgdConfig, SgdState};
use crate::score::ScoreMatrix;
use crate::tensor::Matrix;
use crate::{NnError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Reusable buffers for batched inference forward passes.
///
/// [`Network::logits_batch`] ping-pongs layer activations between the two
/// matrices held here, so a steady-state forward pass over a batch performs no
/// allocation and no per-layer clones. Create one scratch per scoring loop and
/// reuse it across batches; buffers grow to the largest batch seen and stay
/// there.
#[derive(Debug, Default)]
pub struct ForwardScratch {
    bufs: [Matrix; 2],
}

/// Architecture of a specialized network: input size, hidden sizes and output heads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths (each followed by a ReLU). The paper's "tiny ResNet" has 10
    /// layers at 65x65 input; an MLP with one or two modest hidden layers on extracted
    /// frame features plays the same role here.
    pub hidden: Vec<usize>,
    /// Output heads: the number of classes of each softmax head.
    pub heads: HeadLayout,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl NetworkConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.input_dim == 0 {
            return Err(NnError::InvalidConfig("input_dim must be positive".into()));
        }
        if self.heads.is_empty() || self.heads.iter().any(|&h| h < 2) {
            return Err(NnError::InvalidConfig("every head needs at least 2 classes".into()));
        }
        if self.hidden.contains(&0) {
            return Err(NnError::InvalidConfig("hidden widths must be positive".into()));
        }
        Ok(())
    }

    /// Total output width (sum of head sizes).
    pub fn output_dim(&self) -> usize {
        self.heads.iter().sum()
    }
}

/// A feed-forward network with ReLU hidden layers and grouped softmax output heads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    config: NetworkConfig,
    layers: Vec<Dense>,
    #[serde(skip)]
    optimizer_state: Vec<(SgdState, SgdState)>,
}

impl Network {
    /// Builds a network with freshly initialized weights.
    pub fn new(config: NetworkConfig) -> Result<Network> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut dims = vec![config.input_dim];
        dims.extend(&config.hidden);
        dims.push(config.output_dim());
        let mut layers = Vec::new();
        for i in 0..dims.len() - 1 {
            let is_last = i == dims.len() - 2;
            layers.push(Dense::new(dims[i], dims[i + 1], !is_last, &mut rng));
        }
        Ok(Network { config, layers, optimizer_state: Vec::new() })
    }

    /// Reassembles a network from a configuration and its layers (the persistence
    /// path). Layer shapes must match the architecture `config` describes.
    pub fn from_parts(config: NetworkConfig, layers: Vec<Dense>) -> Result<Network> {
        config.validate()?;
        let mut dims = vec![config.input_dim];
        dims.extend(&config.hidden);
        dims.push(config.output_dim());
        if layers.len() != dims.len() - 1 {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "{} layers for an architecture of {}",
                    layers.len(),
                    dims.len() - 1
                ),
            });
        }
        for (i, layer) in layers.iter().enumerate() {
            let is_last = i == dims.len() - 2;
            if layer.input_dim() != dims[i] || layer.output_dim() != dims[i + 1] {
                return Err(NnError::ShapeMismatch {
                    context: format!(
                        "layer {i} is {}x{}, architecture wants {}x{}",
                        layer.input_dim(),
                        layer.output_dim(),
                        dims[i],
                        dims[i + 1]
                    ),
                });
            }
            if layer.relu == is_last {
                return Err(NnError::ShapeMismatch {
                    context: format!("layer {i} has relu={}, architecture disagrees", layer.relu),
                });
            }
        }
        Ok(Network { config, layers, optimizer_state: Vec::new() })
    }

    /// The network's configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The layers, input to output (read-only; the persistence path serializes them).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Forward pass producing raw logits (no caching; safe for concurrent inference).
    pub fn logits(&self, input: &Matrix) -> Result<Matrix> {
        let mut scratch = ForwardScratch::default();
        Ok(self.logits_batch(input, &mut scratch)?.clone())
    }

    /// Batched forward pass into reusable scratch buffers, returning the logits.
    ///
    /// Unlike [`Network::logits`], no matrix is allocated once `scratch` has
    /// warmed up: activations ping-pong between the two scratch buffers, and the
    /// returned reference points at whichever holds the final layer's output.
    /// This is the inner loop of
    /// [`SpecializedNN::score_batch`](crate::specialized::SpecializedNN::score_batch)
    /// and produces bit-identical logits to the row-at-a-time path.
    pub fn logits_batch<'s>(
        &self,
        input: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> Result<&'s Matrix> {
        let (first, rest) = self
            .layers
            .split_first()
            .ok_or_else(|| NnError::InvalidConfig("network has no layers".into()))?;
        first.forward_into(input, &mut scratch.bufs[0])?;
        let mut cur = 0usize;
        for layer in rest {
            let (a, b) = scratch.bufs.split_at_mut(1);
            let (src, dst) = if cur == 0 { (&a[0], &mut b[0]) } else { (&b[0], &mut a[0]) };
            layer.forward_into(src, dst)?;
            cur ^= 1;
        }
        Ok(&scratch.bufs[cur])
    }

    /// Per-head softmax scores for a batch, in flat [`ScoreMatrix`] form.
    ///
    /// Row `r` of the result holds the grouped-softmax probabilities of example
    /// `r`. Softmax is applied per head segment with the same max-shift /
    /// exponentiate / normalize sequence the nested API uses, so the two agree
    /// element-wise.
    pub fn predict_scores(
        &self,
        input: &Matrix,
        scratch: &mut ForwardScratch,
    ) -> Result<ScoreMatrix> {
        let mut scores = ScoreMatrix::zeros(input.rows(), self.config.heads.clone());
        self.predict_scores_into_rows(input, scratch, &mut scores, 0)?;
        Ok(scores)
    }

    /// Scores a batch into rows `first_row..first_row + input.rows()` of an
    /// existing [`ScoreMatrix`] (the whole-video indexing loop fills one big
    /// matrix batch by batch).
    pub fn predict_scores_into_rows(
        &self,
        input: &Matrix,
        scratch: &mut ForwardScratch,
        scores: &mut ScoreMatrix,
        first_row: usize,
    ) -> Result<()> {
        if scores.head_sizes() != self.config.heads.as_slice() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "score matrix heads {:?} vs network heads {:?}",
                    scores.head_sizes(),
                    self.config.heads
                ),
            });
        }
        if first_row + input.rows() > scores.num_frames() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "batch of {} rows at offset {first_row} overflows score matrix of {}",
                    input.rows(),
                    scores.num_frames()
                ),
            });
        }
        let logits = self.logits_batch(input, scratch)?;
        for r in 0..logits.rows() {
            softmax_segments_into(logits.row(r), &self.config.heads, scores.row_mut(first_row + r));
        }
        Ok(())
    }

    /// Per-head softmax probabilities for a batch: `probs[example][head][class]`.
    ///
    /// Legacy nested layout; batched callers should prefer
    /// [`Network::predict_scores`], which produces the same numbers without the
    /// per-example allocations.
    pub fn predict_probs(&self, input: &Matrix) -> Result<Vec<Vec<Vec<f32>>>> {
        let mut scratch = ForwardScratch::default();
        let scores = self.predict_scores(input, &mut scratch)?;
        Ok((0..scores.num_frames()).map(|r| scores.frame_probs(r)).collect())
    }

    /// Argmax class per head for each example (NaN-safe).
    pub fn predict_classes(&self, input: &Matrix) -> Result<Vec<Vec<usize>>> {
        let mut scratch = ForwardScratch::default();
        let scores = self.predict_scores(input, &mut scratch)?;
        Ok((0..scores.num_frames())
            .map(|r| (0..scores.num_heads()).map(|h| scores.argmax_count(r, h)).collect())
            .collect())
    }

    fn ensure_optimizer(&mut self, sgd: SgdConfig) {
        if self.optimizer_state.len() != self.layers.len() {
            self.optimizer_state = self
                .layers
                .iter()
                .map(|l| {
                    (
                        SgdState::new(l.weights.rows(), l.weights.cols(), sgd),
                        SgdState::new(1, l.bias.cols(), sgd),
                    )
                })
                .collect();
        }
    }

    /// Runs one training step on a mini-batch, returning the batch loss.
    ///
    /// `labels[i][h]` is the target class of head `h` for example `i`.
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        labels: &[Vec<usize>],
        sgd: SgdConfig,
    ) -> Result<f32> {
        self.ensure_optimizer(sgd);
        // Forward with caching.
        let mut activations = input.clone();
        for layer in self.layers.iter_mut() {
            activations = layer.forward(&activations)?;
        }
        let (loss, mut grad) = grouped_cross_entropy(&activations, labels, &self.config.heads)?;
        // Backward in reverse order.
        let mut param_grads = Vec::with_capacity(self.layers.len());
        for layer in self.layers.iter_mut().rev() {
            let (d_input, grads) = layer.backward(&grad)?;
            param_grads.push(grads);
            grad = d_input;
        }
        param_grads.reverse();
        // Global gradient-norm clipping keeps training stable at higher learning rates
        // (standardized features produce occasional large batch gradients).
        let total_norm: f32 = param_grads
            .iter()
            .map(|g| g.d_weights.norm().powi(2) + g.d_bias.norm().powi(2))
            .sum::<f32>()
            .sqrt();
        let clip = 5.0f32;
        let scale = if total_norm > clip { clip / total_norm } else { 1.0 };
        // Parameter update.
        for (i, (layer, grads)) in self.layers.iter_mut().zip(param_grads).enumerate() {
            let (w_state, b_state) = &mut self.optimizer_state[i];
            w_state.step(&mut layer.weights, &grads.d_weights.scale(scale))?;
            b_state.step(&mut layer.bias, &grads.d_bias.scale(scale))?;
        }
        Ok(loss)
    }

    /// Fraction of examples where every head's argmax matches the label.
    pub fn accuracy(&self, input: &Matrix, labels: &[Vec<usize>]) -> Result<f64> {
        let preds = self.predict_classes(input)?;
        if preds.len() != labels.len() {
            return Err(NnError::ShapeMismatch {
                context: format!("{} predictions vs {} labels", preds.len(), labels.len()),
            });
        }
        if preds.is_empty() {
            return Ok(0.0);
        }
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / preds.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn xor_like_data(n: usize, seed: u64) -> (Matrix, Vec<Vec<usize>>) {
        // Two clusters that are linearly separable with margin, plus noise.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let class: usize = rng.gen_range(0..2);
            let center = if class == 0 { -1.0 } else { 1.0 };
            rows.push(vec![
                center + rng.gen_range(-0.3..0.3),
                -center + rng.gen_range(-0.3..0.3),
                rng.gen_range(-0.1..0.1),
            ]);
            labels.push(vec![class]);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn config_validation() {
        let bad = NetworkConfig { input_dim: 0, hidden: vec![4], heads: vec![2], seed: 0 };
        assert!(Network::new(bad).is_err());
        let bad_head = NetworkConfig { input_dim: 3, hidden: vec![], heads: vec![1], seed: 0 };
        assert!(Network::new(bad_head).is_err());
    }

    #[test]
    fn forward_shapes_and_prob_normalization() {
        let net = Network::new(NetworkConfig {
            input_dim: 5,
            hidden: vec![8],
            heads: vec![3, 2],
            seed: 42,
        })
        .unwrap();
        let x = Matrix::zeros(4, 5);
        let probs = net.predict_probs(&x).unwrap();
        assert_eq!(probs.len(), 4);
        assert_eq!(probs[0].len(), 2);
        assert_eq!(probs[0][0].len(), 3);
        assert_eq!(probs[0][1].len(), 2);
        for heads in &probs {
            for head in heads {
                let s: f32 = head.iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
        assert!(net.num_params() > 0);
    }

    #[test]
    fn training_learns_separable_data() {
        let (x, y) = xor_like_data(400, 3);
        let mut net =
            Network::new(NetworkConfig { input_dim: 3, hidden: vec![16], heads: vec![2], seed: 7 })
                .unwrap();
        let sgd = SgdConfig { learning_rate: 0.1, momentum: 0.9, weight_decay: 0.0 };
        let initial_acc = net.accuracy(&x, &y).unwrap();
        for _ in 0..30 {
            net.train_batch(&x, &y, sgd).unwrap();
        }
        let final_acc = net.accuracy(&x, &y).unwrap();
        assert!(final_acc > 0.95, "accuracy only reached {final_acc} (started at {initial_acc})");
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = xor_like_data(200, 9);
        let mut net =
            Network::new(NetworkConfig { input_dim: 3, hidden: vec![8], heads: vec![2], seed: 1 })
                .unwrap();
        let sgd = SgdConfig::default();
        let first = net.train_batch(&x, &y, sgd).unwrap();
        let mut last = first;
        for _ in 0..20 {
            last = net.train_batch(&x, &y, sgd).unwrap();
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn multi_head_training_learns_both_heads() {
        // Head 0 depends on feature 0; head 1 depends on feature 1.
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..400 {
            let a: usize = rng.gen_range(0..2);
            let b: usize = rng.gen_range(0..3);
            rows.push(vec![
                a as f32 * 2.0 - 1.0 + rng.gen_range(-0.2..0.2),
                b as f32 - 1.0 + rng.gen_range(-0.2..0.2),
            ]);
            labels.push(vec![a, b]);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut net = Network::new(NetworkConfig {
            input_dim: 2,
            hidden: vec![16],
            heads: vec![2, 3],
            seed: 5,
        })
        .unwrap();
        let sgd = SgdConfig { learning_rate: 0.1, momentum: 0.9, weight_decay: 0.0 };
        for _ in 0..60 {
            net.train_batch(&x, &labels, sgd).unwrap();
        }
        assert!(net.accuracy(&x, &labels).unwrap() > 0.9);
    }

    #[test]
    fn deterministic_initialization() {
        let cfg = NetworkConfig { input_dim: 4, hidden: vec![6], heads: vec![2], seed: 123 };
        let a = Network::new(cfg.clone()).unwrap();
        let b = Network::new(cfg).unwrap();
        let x = Matrix::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(a.logits(&x).unwrap(), b.logits(&x).unwrap());
    }
}
