//! Versioned, checksummed binary serialization for the durable index artifacts.
//!
//! The paper's "BlazeIt (indexed)" scenario assumes specialized-NN scores outlive
//! the process that computed them. This module defines the on-disk byte format for
//! the two artifacts the index store persists:
//!
//! * a [`ScoreMatrix`] — the per-video score index built by
//!   [`SpecializedNN::score_video`](crate::specialized::SpecializedNN::score_video);
//! * a trained [`SpecializedNN`] — its full configuration, standardization
//!   statistics, and layer weights (enough to reconstruct inference exactly;
//!   optimizer state is deliberately not persisted).
//!
//! Floating-point values are stored as raw IEEE-754 bits, so a decoded artifact is
//! **bit-identical** to the encoded one — loading an index from disk produces
//! exactly the scores a fresh computation would.
//!
//! ## Envelope layout
//!
//! Every artifact is wrapped in a fixed envelope (all integers little-endian):
//!
//! | offset | bytes | contents |
//! |---|---|---|
//! | 0 | 4 | magic `b"BZIX"` |
//! | 4 | 1 | artifact kind ([`KIND_SCORE_INDEX`] or [`KIND_SPECIALIZED_NN`]) |
//! | 5 | 4 | format version ([`FORMAT_VERSION`], `u32`) |
//! | 9 | 8 | payload length (`u64`) |
//! | 17 | n | payload |
//! | 17+n | 8 | FNV-1a 64 checksum of the payload (`u64`) |
//!
//! Decoding checks magic, kind, and version **before** the checksum (a version bump
//! may move the checksum), then length and checksum, and finally parses the
//! payload; every failure is a typed [`PersistError`], never a panic. The payload
//! begins with the caller's cache-identity key string, which decode verifies
//! against the expected key — a hashed filename that collides (or a file renamed by
//! hand) is rejected as [`PersistError::KeyMismatch`] instead of silently serving
//! another head set's scores.

use crate::features::Standardizer;
use crate::layers::Dense;
use crate::network::Network;
use crate::score::ScoreMatrix;
use crate::specialized::{SpecializedConfig, SpecializedHead, SpecializedNN};
use crate::tensor::Matrix;
use crate::train::TrainConfig;
use blazeit_detect::{CostProfile, SimClock};
use blazeit_videostore::ObjectClass;
use std::sync::Arc;

/// The current on-disk format version. Bump on any layout change; older files are
/// rejected with [`PersistError::VersionMismatch`] and recomputed.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every persisted artifact.
pub const MAGIC: [u8; 4] = *b"BZIX";

/// Artifact kind byte for a persisted [`ScoreMatrix`].
pub const KIND_SCORE_INDEX: u8 = 1;

/// Artifact kind byte for a persisted [`SpecializedNN`].
pub const KIND_SPECIALIZED_NN: u8 = 2;

/// Artifact kind byte for a persisted labeled-set annotation day (the payload
/// codec lives in `blazeit-core`, which owns the labeled-set types; the
/// envelope, checksum, and key verification are shared through this module's
/// [`Writer`] / [`Reader`] / [`seal`] / [`open`] surface).
pub const KIND_LABELED_SET: u8 = 3;

const HEADER_LEN: usize = 4 + 1 + 4 + 8;

/// A typed decoding failure. The index store surfaces these (wrapped with the file
/// path) and falls back to recomputing the artifact; nothing in the load path
/// panics on hostile bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The bytes are not a well-formed artifact: bad magic, wrong kind, truncated,
    /// trailing garbage, checksum mismatch, or an unparseable payload.
    Corrupt(String),
    /// The artifact was written by a different format version.
    VersionMismatch {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads and writes ([`FORMAT_VERSION`]).
        expected: u32,
    },
    /// The artifact is valid but belongs to a different cache identity.
    KeyMismatch {
        /// The key the caller asked for.
        expected: String,
        /// The key recorded in the file.
        found: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "format version {found} (this build reads version {expected})")
            }
            PersistError::KeyMismatch { expected, found } => {
                write!(f, "artifact key '{found}' does not match requested key '{expected}'")
            }
        }
    }
}

impl std::error::Error for PersistError {}

type PResult<T> = std::result::Result<T, PersistError>;

/// FNV-1a 64-bit hash, used both as the payload checksum and (by the index store)
/// to derive stable filenames from cache keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------------
// Byte-level writer / reader.
// ---------------------------------------------------------------------------------

/// Appends little-endian primitives to a payload buffer (the write half of the
/// artifact codec). Public so sibling crates can persist their own artifact
/// kinds (e.g. labeled-set annotations) through the same envelope.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `usize` as a little-endian `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Appends an `f32` as its raw IEEE-754 bits (round-trips bit-identically).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    /// Appends an `f64` as its raw IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Appends a length-prefixed `f32` slice.
    pub fn f32s(&mut self, values: &[f32]) {
        self.usize(values.len());
        for &v in values {
            self.f32(v);
        }
    }
    /// Appends a length-prefixed `usize` slice.
    pub fn usizes(&mut self, values: &[usize]) {
        self.usize(values.len());
        for &v in values {
            self.usize(v);
        }
    }
    /// Appends a length-prefixed `u64` slice.
    pub fn u64s(&mut self, values: &[u64]) {
        self.usize(values.len());
        for &v in values {
            self.u64(v);
        }
    }
    /// The accumulated payload bytes (pass to [`seal`]).
    pub fn payload(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads little-endian primitives off a payload buffer, rejecting truncated or
/// implausible data with typed [`PersistError`]s (the read half of the codec).
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload (as returned by [`open`]) for reading.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> PResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            PersistError::Corrupt(format!(
                "truncated payload: {what} needs {n} bytes at offset {}, {} available",
                self.pos,
                self.buf.len()
            ))
        })?;
        // blazeit-lint: allow(panic-site::index) -- end was checked_add-validated against buf.len()
        // directly above
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads exactly `N` bytes as a fixed array. `take` enforces the bound;
    /// a conversion failure is reported as corruption, not a panic.
    fn take_array<const N: usize>(&mut self, what: &str) -> PResult<[u8; N]> {
        self.take(N, what)?
            .try_into()
            .map_err(|_| PersistError::Corrupt(format!("{what}: short read of {N} bytes")))
    }

    /// Reads one byte (`what` names the field in error messages).
    pub fn u8(&mut self, what: &str) -> PResult<u8> {
        let [byte] = self.take_array(what)?;
        Ok(byte)
    }
    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> PResult<u32> {
        Ok(u32::from_le_bytes(self.take_array(what)?))
    }
    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> PResult<u64> {
        Ok(u64::from_le_bytes(self.take_array(what)?))
    }
    /// Reads a `usize`, rejecting lengths that exceed the remaining buffer.
    pub fn usize(&mut self, what: &str) -> PResult<usize> {
        let v = self.u64(what)?;
        // A length larger than the remaining buffer is corruption, not allocation
        // advice — reject it before any `Vec::with_capacity` can act on it.
        if v > self.buf.len() as u64 {
            return Err(PersistError::Corrupt(format!(
                "implausible length {v} for {what} in a {}-byte payload",
                self.buf.len()
            )));
        }
        Ok(v as usize)
    }
    /// Reads an `f32` from its raw bits.
    pub fn f32(&mut self, what: &str) -> PResult<f32> {
        Ok(f32::from_bits(self.u32(what)?))
    }
    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self, what: &str) -> PResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> PResult<String> {
        let len = self.usize(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt(format!("{what} is not valid UTF-8")))
    }
    /// Reads a length-prefixed `f32` slice.
    pub fn f32s(&mut self, what: &str) -> PResult<Vec<f32>> {
        let len = self.usize(what)?;
        // 4 bytes per value; `take` enforces the exact bound.
        let raw = self.take(len * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            // blazeit-lint: allow(panic-site) -- chunks_exact(4) yields exactly-4-byte
            // slices by contract; the conversion cannot fail.
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect())
    }
    /// Reads a length-prefixed `usize` slice.
    pub fn usizes(&mut self, what: &str) -> PResult<Vec<usize>> {
        let len = self.usize(what)?;
        (0..len).map(|_| self.usize(what)).collect()
    }
    /// Reads a length-prefixed `u64` slice.
    pub fn u64s(&mut self, what: &str) -> PResult<Vec<u64>> {
        let len = self.usize(what)?;
        let raw = self.take(len * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            // blazeit-lint: allow(panic-site) -- chunks_exact(8) yields exactly-8-byte
            // slices by contract; the conversion cannot fail.
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
    /// Verifies the whole payload was consumed (trailing bytes are corruption).
    pub fn finish(&self) -> PResult<()> {
        if self.pos != self.buf.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------------
// Envelope.
// ---------------------------------------------------------------------------------

/// Wraps a payload in the versioned, checksummed envelope for artifact `kind`.
pub fn seal(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Computes the content fingerprint of a trained network: the FNV-1a hash of its
/// full serialized form (configuration, standardizer statistics, every layer's
/// weights). Two networks fingerprint equal iff they are bit-identical — this is
/// what lets score-index cache keys pin *which weights* produced the scores,
/// rather than merely which architecture (two networks with identical configs
/// but different training data must never share a score index).
///
/// Called once per network at construction; readers should use the cached
/// [`SpecializedNN::weights_fingerprint`] instead of re-serializing.
pub fn specialized_nn_fingerprint(nn: &SpecializedNN) -> u64 {
    fnv1a(&encode_specialized_nn(nn, ""))
}

/// Unwraps an envelope of artifact `kind`, verifying magic, kind, version,
/// length, and checksum; returns the payload slice.
pub fn open(kind: u8, bytes: &[u8]) -> PResult<&[u8]> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(PersistError::Corrupt(format!(
            "file of {} bytes is shorter than the {}-byte envelope",
            bytes.len(),
            HEADER_LEN + 8
        )));
    }
    fn field<const N: usize>(bytes: &[u8], at: usize, what: &str) -> PResult<[u8; N]> {
        bytes
            .get(at..at + N)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| PersistError::Corrupt(format!("truncated envelope header: {what}")))
    }
    if field::<4>(bytes, 0, "magic")? != MAGIC {
        return Err(PersistError::Corrupt("bad magic bytes".into()));
    }
    let [found_kind] = field::<1>(bytes, 4, "kind")?;
    if found_kind != kind {
        return Err(PersistError::Corrupt(format!(
            "artifact kind {found_kind} where kind {kind} was expected"
        )));
    }
    let version = u32::from_le_bytes(field(bytes, 5, "format version")?);
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch { found: version, expected: FORMAT_VERSION });
    }
    let payload_len = u64::from_le_bytes(field(bytes, 9, "payload length")?);
    // checked_add: a hostile length near u64::MAX must read as Corrupt, not
    // overflow (which would panic under debug overflow checks).
    let expected_total = payload_len.checked_add((HEADER_LEN + 8) as u64);
    if expected_total != Some(bytes.len() as u64) {
        return Err(PersistError::Corrupt(format!(
            "file of {} bytes for a declared payload of {payload_len}",
            bytes.len()
        )));
    }
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + payload_len as usize)
        .ok_or_else(|| PersistError::Corrupt("truncated payload".into()))?;
    let stored = u64::from_le_bytes(field(bytes, HEADER_LEN + payload_len as usize, "checksum")?);
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    Ok(payload)
}

/// Reads the leading cache-identity key of a payload and verifies it matches
/// `expected` (every artifact stores its full key; see the module docs).
pub fn check_key(reader: &mut Reader<'_>, expected: &str) -> PResult<()> {
    let found = reader.str("cache key")?;
    if found != expected {
        return Err(PersistError::KeyMismatch { expected: expected.to_string(), found });
    }
    Ok(())
}

// ---------------------------------------------------------------------------------
// ScoreMatrix.
// ---------------------------------------------------------------------------------

/// Serializes a score index under its cache-identity `key`.
pub fn encode_score_matrix(scores: &ScoreMatrix, key: &str) -> Vec<u8> {
    let mut w = Writer::default();
    w.str(key);
    w.usize(scores.num_frames());
    w.usizes(scores.head_sizes());
    w.f32s(scores.probs());
    seal(KIND_SCORE_INDEX, &w.buf)
}

/// Decodes a score index, verifying the envelope and that it was stored under
/// `expected_key`. The result is bit-identical to the encoded matrix.
pub fn decode_score_matrix(bytes: &[u8], expected_key: &str) -> PResult<ScoreMatrix> {
    let payload = open(KIND_SCORE_INDEX, bytes)?;
    let mut r = Reader::new(payload);
    check_key(&mut r, expected_key)?;
    let frames = r.usize("frame count")?;
    let heads = r.usizes("head sizes")?;
    let probs = r.f32s("probabilities")?;
    r.finish()?;
    ScoreMatrix::from_raw(frames, heads, probs)
        .map_err(|e| PersistError::Corrupt(format!("inconsistent score matrix: {e}")))
}

// ---------------------------------------------------------------------------------
// SpecializedNN.
// ---------------------------------------------------------------------------------

/// Serializes a trained specialized network (configuration, standardizer, layer
/// weights) under its cache-identity `key`.
pub fn encode_specialized_nn(nn: &SpecializedNN, key: &str) -> Vec<u8> {
    let mut w = Writer::default();
    w.str(key);

    let config = nn.config();
    w.usize(config.heads.len());
    for head in &config.heads {
        w.u8(head.class.index() as u8);
        w.usize(head.max_count);
    }
    w.usize(config.features.grid_side);
    w.u8(config.features.include_stats as u8);
    w.u8(config.features.include_deviation as u8);
    w.usizes(&config.hidden);
    w.usize(config.train.epochs);
    w.usize(config.train.batch_size);
    w.f32(config.train.sgd.learning_rate);
    w.f32(config.train.sgd.momentum);
    w.f32(config.train.sgd.weight_decay);
    w.u64(config.train.seed);
    w.u64(config.seed);
    w.f64(config.cost.specialized_fps);
    w.f64(config.cost.training_fps);
    w.f64(config.cost.filter_fps);
    w.f64(config.cost.decode_fps);

    w.f32s(nn.standardizer().means());
    w.f32s(nn.standardizer().inv_stds());

    let layers = nn.network().layers();
    w.usize(layers.len());
    for layer in layers {
        w.u8(layer.relu as u8);
        w.usize(layer.weights.rows());
        w.usize(layer.weights.cols());
        w.f32s(layer.weights.data());
        w.f32s(layer.bias.data());
    }
    seal(KIND_SPECIALIZED_NN, &w.buf)
}

/// Decodes a trained specialized network, verifying the envelope and key, and
/// binding the result to `clock` (warm loads charge nothing; the clock is only
/// used by subsequent inference). Inference with the decoded network is
/// bit-identical to the encoded one.
pub fn decode_specialized_nn(
    bytes: &[u8],
    expected_key: &str,
    clock: Arc<SimClock>,
) -> PResult<SpecializedNN> {
    let payload = open(KIND_SPECIALIZED_NN, bytes)?;
    let mut r = Reader::new(payload);
    check_key(&mut r, expected_key)?;

    let num_heads = r.usize("head count")?;
    let mut heads = Vec::with_capacity(num_heads);
    for _ in 0..num_heads {
        let class_index = r.u8("head class")?;
        let class = ObjectClass::ALL.get(class_index as usize).copied().ok_or_else(|| {
            PersistError::Corrupt(format!("unknown object class index {class_index}"))
        })?;
        let max_count = r.usize("head max count")?;
        heads.push(SpecializedHead { class, max_count });
    }
    let mut config = SpecializedConfig::for_heads(heads);
    config.features.grid_side = r.usize("grid side")?;
    config.features.include_stats = r.u8("include_stats")? != 0;
    config.features.include_deviation = r.u8("include_deviation")? != 0;
    config.hidden = r.usizes("hidden widths")?;
    config.train = TrainConfig {
        epochs: r.usize("epochs")?,
        batch_size: r.usize("batch size")?,
        sgd: crate::optimizer::SgdConfig {
            learning_rate: r.f32("learning rate")?,
            momentum: r.f32("momentum")?,
            weight_decay: r.f32("weight decay")?,
        },
        seed: r.u64("train seed")?,
    };
    config.seed = r.u64("init seed")?;
    config.cost = CostProfile {
        specialized_fps: r.f64("specialized fps")?,
        training_fps: r.f64("training fps")?,
        filter_fps: r.f64("filter fps")?,
        decode_fps: r.f64("decode fps")?,
    };

    let means = r.f32s("standardizer means")?;
    let inv_stds = r.f32s("standardizer inverse stds")?;
    let standardizer = Standardizer::from_parts(means, inv_stds)
        .map_err(|e| PersistError::Corrupt(format!("inconsistent standardizer: {e}")))?;

    let num_layers = r.usize("layer count")?;
    let mut layers = Vec::with_capacity(num_layers);
    for i in 0..num_layers {
        let relu = r.u8("layer relu flag")? != 0;
        let rows = r.usize("layer rows")?;
        let cols = r.usize("layer cols")?;
        let weights_data = r.f32s("layer weights")?;
        let weights = Matrix::from_vec(rows, cols, weights_data)
            .map_err(|e| PersistError::Corrupt(format!("layer {i} weights: {e}")))?;
        let bias_data = r.f32s("layer bias")?;
        let bias = Matrix::from_vec(1, bias_data.len(), bias_data)
            .map_err(|e| PersistError::Corrupt(format!("layer {i} bias: {e}")))?;
        let layer = Dense::from_parts(weights, bias, relu)
            .map_err(|e| PersistError::Corrupt(format!("layer {i}: {e}")))?;
        layers.push(layer);
    }
    r.finish()?;

    let network = Network::from_parts(config.network_config(), layers)
        .map_err(|e| PersistError::Corrupt(format!("inconsistent network: {e}")))?;
    SpecializedNN::from_parts(config, standardizer, network, clock)
        .map_err(|e| PersistError::Corrupt(format!("inconsistent specialized network: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_detect::CountVector;
    use blazeit_videostore::{DatasetPreset, FrameIndex, Video, DAY_TRAIN};

    fn trained_nn() -> (SpecializedNN, Video) {
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TRAIN, 600).unwrap();
        let frames: Vec<FrameIndex> = (0..600).step_by(4).collect();
        let labels: Vec<CountVector> = frames
            .iter()
            .map(|&f| CountVector::from_ground_truth(&video.scene().visible_at(f)))
            .collect();
        let heads = vec![
            SpecializedHead { class: ObjectClass::Car, max_count: 3 },
            SpecializedHead { class: ObjectClass::Bus, max_count: 1 },
        ];
        let mut config = SpecializedConfig::for_heads(heads);
        config.train.epochs = 2;
        let (nn, _) =
            SpecializedNN::train(config, &video, &frames, &labels, SimClock::new()).unwrap();
        (nn, video)
    }

    #[test]
    fn score_matrix_round_trip_is_bit_identical() {
        let (nn, video) = trained_nn();
        let scores = nn.score_batch(&video, &(0..100).collect::<Vec<_>>()).unwrap();
        let bytes = encode_score_matrix(&scores, "some-key");
        let decoded = decode_score_matrix(&bytes, "some-key").unwrap();
        assert_eq!(decoded, scores);
        // Exact bit equality of every probability, not just PartialEq.
        for (a, b) in decoded.probs().iter().zip(scores.probs()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn specialized_nn_round_trip_scores_identically() {
        let (nn, video) = trained_nn();
        let bytes = encode_specialized_nn(&nn, "nn-key");
        let decoded = decode_specialized_nn(&bytes, "nn-key", SimClock::new()).unwrap();
        assert_eq!(decoded.config(), nn.config());
        let frames: Vec<FrameIndex> = (0..80).collect();
        let original = nn.score_batch(&video, &frames).unwrap();
        let restored = decoded.score_batch(&video, &frames).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn wrong_key_is_a_key_mismatch() {
        let (nn, video) = trained_nn();
        let scores = nn.score_batch(&video, &[0, 1, 2]).unwrap();
        let bytes = encode_score_matrix(&scores, "key-a");
        match decode_score_matrix(&bytes, "key-b") {
            Err(PersistError::KeyMismatch { expected, found }) => {
                assert_eq!(expected, "key-b");
                assert_eq!(found, "key-a");
            }
            other => panic!("expected KeyMismatch, got {other:?}"),
        }
    }

    #[test]
    fn tampered_bytes_are_rejected_not_panicked_on() {
        let (nn, video) = trained_nn();
        let scores = nn.score_batch(&video, &[0, 1, 2, 3]).unwrap();
        let good = encode_score_matrix(&scores, "k");

        // Truncation (any prefix) is Corrupt.
        for cut in [0, 3, HEADER_LEN, good.len() / 2, good.len() - 1] {
            match decode_score_matrix(&good[..cut], "k") {
                Err(PersistError::Corrupt(_)) => {}
                other => panic!("truncated at {cut}: expected Corrupt, got {other:?}"),
            }
        }

        // A flipped payload byte fails the checksum.
        let mut flipped = good.clone();
        flipped[HEADER_LEN + 9] ^= 0xFF;
        assert!(matches!(decode_score_matrix(&flipped, "k"), Err(PersistError::Corrupt(_))));

        // A declared payload length near u64::MAX must read as Corrupt, not
        // overflow (debug builds panic on unchecked arithmetic overflow).
        let mut huge = good.clone();
        huge[9..17].copy_from_slice(&(u64::MAX - 10).to_le_bytes());
        assert!(matches!(decode_score_matrix(&huge, "k"), Err(PersistError::Corrupt(_))));

        // A bumped version byte (offset 5) is VersionMismatch, checked before the
        // checksum so future formats report honestly.
        let mut bumped = good.clone();
        bumped[5] = bumped[5].wrapping_add(1);
        assert!(matches!(
            decode_score_matrix(&bumped, "k"),
            Err(PersistError::VersionMismatch { expected: FORMAT_VERSION, .. })
        ));

        // Wrong artifact kind.
        match decode_specialized_nn(&good, "k", SimClock::new()) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("kind"), "{msg}"),
            other => panic!("expected Corrupt(kind), got {other:?}"),
        }

        // The untouched original still decodes.
        assert_eq!(decode_score_matrix(&good, "k").unwrap(), scores);
    }

    #[test]
    fn implausible_lengths_do_not_allocate() {
        // A payload declaring a multi-terabyte vector must be rejected by the
        // length sanity check, not attempted.
        let mut w = Writer::default();
        w.str("k");
        w.u64(u64::MAX / 8); // frame count
        let bytes = seal(KIND_SCORE_INDEX, &w.buf);
        assert!(matches!(decode_score_matrix(&bytes, "k"), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn crafted_dimensions_whose_product_explodes_are_rejected() {
        // Each declared field individually fits the payload-length sanity check
        // (the payload is padded large enough), but frames x stride = 10^12:
        // reconstruction must reject the inconsistency *before* zero-filling a
        // terabyte buffer.
        let mut w = Writer::default();
        w.str("k");
        w.usize(1_000_000); // frames
        w.usize(1); // one head...
        w.usize(1_000_000); // ...of a million classes
        w.f32s(&vec![0.0f32; 300_000]); // ~1.2 MB of actual probabilities
        let bytes = seal(KIND_SCORE_INDEX, &w.buf);
        match decode_score_matrix(&bytes, "k") {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("score buffer"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
