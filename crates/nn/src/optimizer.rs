//! SGD with momentum.
//!
//! The paper trains its specialized networks with SGD and momentum 0.9 (Section 9).

use crate::tensor::Matrix;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Configuration for the SGD optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0.9 in the paper).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { learning_rate: 0.05, momentum: 0.9, weight_decay: 1e-4 }
    }
}

/// SGD-with-momentum state for one parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgdState {
    velocity: Matrix,
    config: SgdConfig,
}

impl SgdState {
    /// Creates optimizer state for a parameter of the given shape.
    pub fn new(rows: usize, cols: usize, config: SgdConfig) -> SgdState {
        SgdState { velocity: Matrix::zeros(rows, cols), config }
    }

    /// Applies one update step: `v = momentum*v - lr*(grad + wd*param); param += v`.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) -> Result<()> {
        let effective_grad = grad.add(&param.scale(self.config.weight_decay))?;
        self.velocity = self
            .velocity
            .scale(self.config.momentum)
            .sub(&effective_grad.scale(self.config.learning_rate))?;
        *param = param.add(&self.velocity)?;
        Ok(())
    }

    /// The configuration in use.
    pub fn config(&self) -> SgdConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_against_gradient() {
        let mut param = Matrix::from_vec(1, 2, vec![1.0, -1.0]).unwrap();
        let grad = Matrix::from_vec(1, 2, vec![1.0, -1.0]).unwrap();
        let mut state =
            SgdState::new(1, 2, SgdConfig { learning_rate: 0.1, momentum: 0.0, weight_decay: 0.0 });
        state.step(&mut param, &grad).unwrap();
        assert!(param.get(0, 0) < 1.0);
        assert!(param.get(0, 1) > -1.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p_no_momentum = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        let mut p_momentum = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        let grad = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        let mut plain =
            SgdState::new(1, 1, SgdConfig { learning_rate: 0.1, momentum: 0.0, weight_decay: 0.0 });
        let mut with_mom =
            SgdState::new(1, 1, SgdConfig { learning_rate: 0.1, momentum: 0.9, weight_decay: 0.0 });
        for _ in 0..5 {
            plain.step(&mut p_no_momentum, &grad).unwrap();
            with_mom.step(&mut p_momentum, &grad).unwrap();
        }
        // With momentum the parameter has moved further in the same number of steps.
        assert!(p_momentum.get(0, 0) < p_no_momentum.get(0, 0));
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut param = Matrix::from_vec(1, 1, vec![10.0]).unwrap();
        let zero_grad = Matrix::zeros(1, 1);
        let mut state =
            SgdState::new(1, 1, SgdConfig { learning_rate: 0.1, momentum: 0.0, weight_decay: 0.5 });
        for _ in 0..10 {
            state.step(&mut param, &zero_grad).unwrap();
        }
        assert!(param.get(0, 0) < 10.0);
        assert!(param.get(0, 0) > 0.0);
    }

    #[test]
    fn quadratic_convergence() {
        // Minimize f(x) = (x - 3)^2 with gradient 2(x - 3).
        let mut x = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        let mut state = SgdState::new(
            1,
            1,
            SgdConfig { learning_rate: 0.05, momentum: 0.9, weight_decay: 0.0 },
        );
        for _ in 0..200 {
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (x.get(0, 0) - 3.0)]).unwrap();
            state.step(&mut x, &grad).unwrap();
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-2, "converged to {}", x.get(0, 0));
    }
}
