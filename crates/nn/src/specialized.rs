//! Specialized networks: the core primitive of BlazeIt.
//!
//! A specialized NN is a small model trained to mimic the expensive object detector on
//! a *reduced* task (Section 3): counting the objects of one class per frame, counting
//! several classes at once (one softmax head per class, Section 7.1), or binary
//! presence (the NoScope task, which is just "count >= 1"). Because the task is so much
//! simpler than detection, inference runs orders of magnitude faster (~10,000 fps vs
//! ~3 fps), which is the entire source of BlazeIt's speedups.
//!
//! This module provides:
//!
//! * [`SpecializedNN::train`] — featurize labeled frames and train the network with
//!   SGD + momentum, charging simulated training time.
//! * [`SpecializedNN::score_batch`] / [`SpecializedNN::score_video`] — the batched
//!   scoring pipeline: frames are featurized in parallel chunks, stacked into one
//!   feature matrix per batch, pushed through a single scratch-buffer forward pass,
//!   and written into a flat [`ScoreMatrix`]. Simulated inference time is charged
//!   once per batch with the same per-frame totals as the serial path, and the
//!   scores are element-wise identical to [`SpecializedNN::score_frame`].
//! * [`SpecializedNN::score_frame`] — per-frame scoring with probability outputs per
//!   head (the serial compatibility path; full-video scans should use the batch API).
//! * [`SpecializedNN::estimate_fcount_error`] — the bootstrap error estimate on the
//!   held-out day used by Algorithm 1 to decide whether query rewriting is safe.
//! * [`SpecializedNN::calibrate_presence_threshold`] — the no-false-negative threshold
//!   selection used by the label-based selection filter (Section 8).

use crate::features::{FeatureConfig, FrameFeaturizer, Standardizer};
use crate::network::{ForwardScratch, Network, NetworkConfig};
use crate::parallel::par_fill_chunks;
use crate::score::{argmax, expectation, tail_probability, ScoreMatrix};
use crate::tensor::Matrix;
use crate::train::{TrainConfig, Trainer};
use crate::{NnError, Result};
use blazeit_detect::clock::CostCategory;
use blazeit_detect::{CostProfile, CountVector, SimClock};
use blazeit_videostore::{FrameIndex, ObjectClass, Video};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One output head of a specialized network: counts of one object class, capped at
/// `max_count` (so the head is a softmax over `0..=max_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecializedHead {
    /// The object class this head counts.
    pub class: ObjectClass,
    /// The largest count the head distinguishes; larger true counts are clamped.
    pub max_count: usize,
}

impl SpecializedHead {
    /// Chooses `max_count` as the paper prescribes (Section 6.2): the highest count
    /// that occurs in at least `min_fraction` of the labeled frames.
    pub fn from_counts<I>(class: ObjectClass, counts: I, min_fraction: f64) -> SpecializedHead
    where
        I: IntoIterator<Item = usize>,
    {
        // Single pass: histogram the counts, then walk the suffix sum downward.
        // `running` after processing bucket k is the number of frames with count
        // >= k, so the first k (from the top) whose suffix fraction clears the
        // threshold is the answer — O(n + max_count) instead of O(n·max_count).
        let mut histogram: Vec<usize> = Vec::new();
        let mut n = 0usize;
        for count in counts {
            if count >= histogram.len() {
                histogram.resize(count + 1, 0);
            }
            // blazeit-lint: allow(panic-site::index) -- the resize directly above guarantees
            // histogram.len() > count
            histogram[count] += 1;
            n += 1;
        }
        let n = n.max(1) as f64;
        let mut max_count = 1usize;
        let mut running = 0usize;
        for k in (1..histogram.len()).rev() {
            // blazeit-lint: allow(panic-site::index) -- k ranges over 1..histogram.len()
            running += histogram[k];
            if running as f64 / n >= min_fraction {
                max_count = k;
                break;
            }
        }
        SpecializedHead { class, max_count: max_count.max(1) }
    }

    /// Number of classes of this head's softmax (`max_count + 1`).
    pub fn head_size(&self) -> usize {
        self.max_count + 1
    }
}

/// Configuration of a specialized network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecializedConfig {
    /// Output heads (one per queried object class).
    pub heads: Vec<SpecializedHead>,
    /// Frame featurization settings.
    pub features: FeatureConfig,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Training-loop settings.
    pub train: TrainConfig,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Simulated throughput profile (inference / training cost).
    pub cost: CostProfile,
}

impl SpecializedConfig {
    /// A sensible default configuration for the given heads.
    pub fn for_heads(heads: Vec<SpecializedHead>) -> SpecializedConfig {
        SpecializedConfig {
            heads,
            features: FeatureConfig::default(),
            hidden: vec![32],
            train: TrainConfig::default(),
            seed: 7,
            cost: CostProfile::default(),
        }
    }

    pub(crate) fn network_config(&self) -> NetworkConfig {
        NetworkConfig {
            input_dim: self.features.dim(),
            hidden: self.hidden.clone(),
            heads: self.heads.iter().map(|h| h.head_size()).collect(),
            seed: self.seed,
        }
    }
}

/// Summary of training a specialized network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Number of labeled frames used.
    pub num_examples: usize,
    /// Simulated seconds charged for training (featurization + SGD).
    pub training_cost_secs: f64,
    /// Final-epoch mean loss.
    pub final_loss: f32,
    /// Training-set exact-match accuracy (all heads correct).
    pub train_accuracy: f64,
}

/// The bootstrap error estimate of a specialized network's frame-averaged count
/// (FCOUNT) on a held-out day, used by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcountErrorEstimate {
    /// Mean predicted count per frame on the held-out data.
    pub mean_predicted: f64,
    /// Mean true count per frame on the held-out data.
    pub mean_true: f64,
    /// Absolute error of the means.
    pub abs_error: f64,
    /// Mean absolute per-frame error (a stricter diagnostic).
    pub mean_abs_frame_error: f64,
    /// Bootstrap distribution of the absolute error of the mean.
    pub bootstrap_errors: Vec<f64>,
}

impl FcountErrorEstimate {
    /// Estimated probability that the FCOUNT error on unseen data is within `tolerance`.
    pub fn prob_error_within(&self, tolerance: f64) -> f64 {
        if self.bootstrap_errors.is_empty() {
            return if self.abs_error <= tolerance { 1.0 } else { 0.0 };
        }
        let within = self.bootstrap_errors.iter().filter(|&&e| e <= tolerance).count();
        within as f64 / self.bootstrap_errors.len() as f64
    }
}

/// A trained specialized network bound to a simulated clock.
#[derive(Debug, Clone)]
pub struct SpecializedNN {
    config: SpecializedConfig,
    featurizer: FrameFeaturizer,
    standardizer: Standardizer,
    network: Network,
    clock: Arc<SimClock>,
    /// Content fingerprint of (config, standardizer, weights), computed once at
    /// construction — see [`SpecializedNN::weights_fingerprint`].
    fingerprint: u64,
}

impl SpecializedNN {
    /// Trains a specialized network on labeled frames of `video`.
    ///
    /// `frames[i]` is a frame index of the (training-day) video and `labels[i]` the
    /// per-class ground-truth counts for that frame, as produced by running the object
    /// detector over the labeled set.
    pub fn train(
        config: SpecializedConfig,
        video: &Video,
        frames: &[FrameIndex],
        labels: &[CountVector],
        clock: Arc<SimClock>,
    ) -> Result<(SpecializedNN, TrainingReport)> {
        if frames.len() != labels.len() {
            return Err(NnError::InvalidTrainingData(format!(
                "{} frames vs {} labels",
                frames.len(),
                labels.len()
            )));
        }
        if frames.is_empty() {
            return Err(NnError::InvalidTrainingData("no labeled frames".into()));
        }
        if config.heads.is_empty() {
            return Err(NnError::InvalidConfig("at least one head required".into()));
        }

        let featurizer = FrameFeaturizer::new(config.features);
        let mut xs = Vec::with_capacity(frames.len());
        let mut ys = Vec::with_capacity(frames.len());
        for (&f, counts) in frames.iter().zip(labels) {
            xs.push(
                featurizer
                    .features_for_video_frame(video, f)
                    .map_err(|e| NnError::InvalidTrainingData(e.to_string()))?,
            );
            ys.push(
                config
                    .heads
                    .iter()
                    .map(|h| counts.get(h.class).min(h.max_count))
                    .collect::<Vec<usize>>(),
            );
        }

        // Standardize features with training-set statistics (the stand-in for the
        // normalization layers of the paper's tiny ResNet); without this the tiny
        // per-object signal is swamped by the common-mode background component.
        let standardizer = Standardizer::fit(&xs);
        let xs: Vec<Vec<f32>> = xs.iter().map(|row| standardizer.transform(row)).collect();

        let mut network = Network::new(config.network_config())?;
        let trainer = Trainer::new(config.train);
        let outcome = trainer.fit(&mut network, &xs, &ys)?;

        // Charge simulated training time: one training pass per example-visit, plus
        // decode time for reading the labeled frames (reported separately).
        let training_cost =
            outcome.examples_processed as f64 * config.cost.training_cost_per_example();
        clock.charge(CostCategory::Training, training_cost);
        clock.charge(CostCategory::Decode, frames.len() as f64 * config.cost.decode_cost());

        let x_matrix = crate::tensor::Matrix::from_rows(&xs)?;
        let train_accuracy = network.accuracy(&x_matrix, &ys)?;

        let mut nn =
            SpecializedNN { config, featurizer, standardizer, network, clock, fingerprint: 0 };
        nn.fingerprint = crate::persist::specialized_nn_fingerprint(&nn);
        let report = TrainingReport {
            num_examples: frames.len(),
            training_cost_secs: training_cost,
            final_loss: outcome.final_loss,
            train_accuracy,
        };
        Ok((nn, report))
    }

    /// Reassembles a trained network from its parts, binding it to `clock` (the
    /// persistence path: weights and statistics come off disk, the clock is the
    /// deserializing catalog's). The standardizer and network must match the
    /// architecture `config` describes.
    pub fn from_parts(
        config: SpecializedConfig,
        standardizer: Standardizer,
        network: Network,
        clock: Arc<SimClock>,
    ) -> Result<SpecializedNN> {
        if config.heads.is_empty() {
            return Err(NnError::InvalidConfig("at least one head required".into()));
        }
        if standardizer.dim() != config.features.dim() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "standardizer dim {} vs feature dim {}",
                    standardizer.dim(),
                    config.features.dim()
                ),
            });
        }
        if *network.config() != config.network_config() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "network config {:?} does not match specialized config's architecture {:?}",
                    network.config(),
                    config.network_config()
                ),
            });
        }
        let featurizer = FrameFeaturizer::new(config.features);
        let mut nn =
            SpecializedNN { config, featurizer, standardizer, network, clock, fingerprint: 0 };
        nn.fingerprint = crate::persist::specialized_nn_fingerprint(&nn);
        Ok(nn)
    }

    /// A stable content fingerprint of this network — the FNV-1a hash of its
    /// full serialized form (configuration, standardizer statistics, every
    /// layer's weights), computed once at construction. Two networks share a
    /// fingerprint iff they are bit-identical, which is what lets score-index
    /// cache keys pin *which weights* produced the scores.
    pub fn weights_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    pub(crate) fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    pub(crate) fn network(&self) -> &Network {
        &self.network
    }

    /// The configuration used to build this network.
    pub fn config(&self) -> &SpecializedConfig {
        &self.config
    }

    /// The output heads.
    pub fn heads(&self) -> &[SpecializedHead] {
        &self.config.heads
    }

    /// The index of the head for `class`, if present.
    pub fn head_index(&self, class: ObjectClass) -> Option<usize> {
        self.config.heads.iter().position(|h| h.class == class)
    }

    /// The sizes of this network's output heads (`max_count + 1` each).
    pub fn head_sizes(&self) -> Vec<usize> {
        self.config.heads.iter().map(|h| h.head_size()).collect()
    }

    /// Number of frames scored per forward pass by the batch API.
    pub const BATCH_FRAMES: usize = 512;

    /// Scores a set of frames with batched, data-parallel inference.
    ///
    /// Frames are processed in batches of [`SpecializedNN::BATCH_FRAMES`]: each
    /// batch is featurized and standardized in parallel chunks (one contiguous
    /// chunk per available core), stacked into a single feature matrix, pushed
    /// through one scratch-buffer forward pass, and softmaxed into row
    /// `i` of the returned [`ScoreMatrix`] (row `i` corresponds to `frames[i]`).
    ///
    /// Simulated decode and specialized-inference time are charged once per
    /// batch, with the same per-frame totals [`SpecializedNN::score_frame`]
    /// charges. Scores are element-wise identical to the serial path: the
    /// per-frame featurize → standardize → forward → per-head softmax sequence
    /// is unchanged, only its batching differs.
    pub fn score_batch(&self, video: &Video, frames: &[FrameIndex]) -> Result<ScoreMatrix> {
        let mut scores = ScoreMatrix::zeros(frames.len(), self.head_sizes());
        let dim = self.featurizer.dim();
        let mut features = Matrix::zeros(0, 0);
        let mut scratch = ForwardScratch::default();
        for (batch_index, batch) in frames.chunks(Self::BATCH_FRAMES).enumerate() {
            self.clock
                .charge(CostCategory::Decode, batch.len() as f64 * self.config.cost.decode_cost());
            self.clock.charge(
                CostCategory::SpecializedInference,
                batch.len() as f64 * self.config.cost.specialized_inference_cost(),
            );
            features.reset_zeroed(batch.len(), dim);
            par_fill_chunks(features.data_mut(), dim, |offset, chunk| {
                let first = offset / dim;
                for (i, row) in chunk.chunks_mut(dim).enumerate() {
                    // Sparse-render featurization straight into this frame's row
                    // of the batch feature matrix: only the sampled grid pixels
                    // are rendered, and no per-frame buffers are allocated —
                    // identical features to the full-frame path.
                    // blazeit-lint: allow(panic-site::index) -- par_fill_chunks hands each task a
                    // chunk of rows inside the matrix, so first + i < batch.len()
                    self.featurizer.features_for_video_frame_into(video, batch[first + i], row)?;
                    self.standardizer.transform_in_place(row);
                }
                Ok(())
            })?;
            self.network.predict_scores_into_rows(
                &features,
                &mut scratch,
                &mut scores,
                batch_index * Self::BATCH_FRAMES,
            )?;
        }
        Ok(scores)
    }

    /// Scores every frame of `video`, producing the reusable per-video score
    /// index (the paper's "BlazeIt (indexed)" artifact). Row `f` of the result
    /// holds frame `f`'s per-head probabilities.
    pub fn score_video(&self, video: &Video) -> Result<ScoreMatrix> {
        let frames: Vec<FrameIndex> = (0..video.len()).collect();
        self.score_batch(video, &frames)
    }

    /// Scores one frame: per-head probability distributions over counts.
    ///
    /// Charges simulated specialized-inference time (plus decode time, tracked
    /// separately and excluded from reported runtimes, as in the paper). This is
    /// the serial compatibility path; full-video scans should use
    /// [`SpecializedNN::score_batch`] / [`SpecializedNN::score_video`].
    pub fn score_frame(&self, video: &Video, frame: FrameIndex) -> Result<Vec<Vec<f32>>> {
        let f = video.frame(frame).map_err(|e| NnError::InvalidConfig(e.to_string()))?;
        self.clock.charge(CostCategory::Decode, self.config.cost.decode_cost());
        self.clock.charge(
            CostCategory::SpecializedInference,
            self.config.cost.specialized_inference_cost(),
        );
        let mut feats = self.featurizer.features(&f)?;
        self.standardizer.transform_in_place(&mut feats);
        let x = crate::tensor::Matrix::row_from_slice(&feats);
        let probs = self.network.predict_probs(&x)?;
        Ok(probs.into_iter().next().unwrap_or_default())
    }

    /// Predicted (argmax) count per head for one frame.
    pub fn predict_counts(&self, video: &Video, frame: FrameIndex) -> Result<Vec<usize>> {
        let probs = self.score_frame(video, frame)?;
        Ok(probs.iter().map(|head| argmax(head)).collect())
    }

    /// Expected count (`sum_k k * p_k`) for `class` in one frame.
    pub fn expected_count(
        &self,
        video: &Video,
        frame: FrameIndex,
        class: ObjectClass,
    ) -> Result<f64> {
        let head = self
            .head_index(class)
            .ok_or_else(|| NnError::InvalidConfig(format!("no head for class {class}")))?;
        let probs = self.score_frame(video, frame)?;
        // blazeit-lint: allow(panic-site::index) -- head comes from head_index, and probs holds one
        // row per head
        Ok(expectation(&probs[head]))
    }

    /// Probability that the frame contains at least `n` objects of `class`.
    pub fn prob_at_least(
        &self,
        video: &Video,
        frame: FrameIndex,
        class: ObjectClass,
        n: usize,
    ) -> Result<f64> {
        let head = self
            .head_index(class)
            .ok_or_else(|| NnError::InvalidConfig(format!("no head for class {class}")))?;
        let probs = self.score_frame(video, frame)?;
        // blazeit-lint: allow(panic-site::index) -- head comes from head_index, and probs holds one
        // row per head
        Ok(tail_probability(&probs[head], n))
    }

    /// The scrubbing confidence signal for a conjunction of requirements
    /// (Section 7: "the sum of the probability of the frame having at least one bus
    /// and at least five cars").
    pub fn requirement_confidence(
        &self,
        video: &Video,
        frame: FrameIndex,
        requirements: &[(ObjectClass, usize)],
    ) -> Result<f64> {
        let probs = self.score_frame(video, frame)?;
        let mut total = 0.0;
        for &(class, n) in requirements {
            let head = self
                .head_index(class)
                .ok_or_else(|| NnError::InvalidConfig(format!("no head for class {class}")))?;
            // blazeit-lint: allow(panic-site::index) -- head comes from head_index, and probs holds
            // one row per head
            total += tail_probability(&probs[head], n);
        }
        Ok(total)
    }

    /// Estimates the FCOUNT error of this network for `class` on a held-out day via the
    /// bootstrap (Section 6.2), given the held-out frames' true counts.
    pub fn estimate_fcount_error(
        &self,
        video: &Video,
        frames: &[FrameIndex],
        true_counts: &[usize],
        class: ObjectClass,
        bootstrap_samples: usize,
        seed: u64,
    ) -> Result<FcountErrorEstimate> {
        if frames.len() != true_counts.len() || frames.is_empty() {
            return Err(NnError::InvalidTrainingData(
                "held-out frames and counts must be non-empty and equal length".into(),
            ));
        }
        let scores = self.score_batch(video, frames)?;
        self.estimate_fcount_error_from_scores(&scores, true_counts, class, bootstrap_samples, seed)
    }

    /// Like [`SpecializedNN::estimate_fcount_error`], but reuses an existing
    /// [`ScoreMatrix`] over the held-out frames (row `i` of `scores` must be
    /// the frame `true_counts[i]` describes). No inference time is charged —
    /// this is how the engine re-checks Algorithm 1 against a cached index.
    pub fn estimate_fcount_error_from_scores(
        &self,
        scores: &ScoreMatrix,
        true_counts: &[usize],
        class: ObjectClass,
        bootstrap_samples: usize,
        seed: u64,
    ) -> Result<FcountErrorEstimate> {
        if scores.num_frames() != true_counts.len() || true_counts.is_empty() {
            return Err(NnError::InvalidTrainingData(
                "held-out scores and counts must be non-empty and equal length".into(),
            ));
        }
        let head = self
            .head_index(class)
            .ok_or_else(|| NnError::InvalidConfig(format!("no head for class {class}")))?;
        let predicted: Vec<f64> =
            (0..scores.num_frames()).map(|i| scores.expected_count(i, head)).collect();
        let n = true_counts.len();
        let mean_pred = predicted.iter().sum::<f64>() / n as f64;
        let mean_true = true_counts.iter().sum::<usize>() as f64 / n as f64;
        let mean_abs_frame_error =
            predicted.iter().zip(true_counts).map(|(p, &t)| (p - t as f64).abs()).sum::<f64>()
                / n as f64;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut bootstrap_errors = Vec::with_capacity(bootstrap_samples);
        for _ in 0..bootstrap_samples {
            let mut sum_p = 0.0;
            let mut sum_t = 0.0;
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                // blazeit-lint: allow(panic-site::index) -- i is gen_range(0..n) where n is the
                // common length of both slices
                sum_p += predicted[i];
                // blazeit-lint: allow(panic-site::index) -- i is gen_range(0..n) where n is the
                // common length of both slices
                sum_t += true_counts[i] as f64;
            }
            bootstrap_errors.push(((sum_p - sum_t) / n as f64).abs());
        }

        Ok(FcountErrorEstimate {
            mean_predicted: mean_pred,
            mean_true,
            abs_error: (mean_pred - mean_true).abs(),
            mean_abs_frame_error,
            bootstrap_errors,
        })
    }

    /// Calibrates a presence threshold for `class` with no false negatives on the
    /// held-out frames: returns the largest confidence `t` such that every held-out
    /// frame that truly contains the class scores `P(count >= 1) >= t`.
    ///
    /// Frames scoring below the returned threshold can be discarded by the label-based
    /// selection filter without introducing false negatives on the held-out day
    /// (Section 8).
    pub fn calibrate_presence_threshold(
        &self,
        video: &Video,
        frames: &[FrameIndex],
        true_counts: &[usize],
        class: ObjectClass,
    ) -> Result<f64> {
        if frames.len() != true_counts.len() || frames.is_empty() {
            return Err(NnError::InvalidTrainingData(
                "held-out frames and counts must be non-empty and equal length".into(),
            ));
        }
        let scores = self.score_batch(video, frames)?;
        self.presence_threshold_from_scores(&scores, true_counts, class)
    }

    /// Like [`SpecializedNN::calibrate_presence_threshold`], but reuses an
    /// existing [`ScoreMatrix`] over the held-out frames (row `i` of `scores`
    /// must be the frame `true_counts[i]` describes). No inference time is
    /// charged.
    pub fn presence_threshold_from_scores(
        &self,
        scores: &ScoreMatrix,
        true_counts: &[usize],
        class: ObjectClass,
    ) -> Result<f64> {
        if scores.num_frames() != true_counts.len() || true_counts.is_empty() {
            return Err(NnError::InvalidTrainingData(
                "held-out scores and counts must be non-empty and equal length".into(),
            ));
        }
        let head = self
            .head_index(class)
            .ok_or_else(|| NnError::InvalidConfig(format!("no head for class {class}")))?;
        let mut min_positive_score = f64::INFINITY;
        for (i, &count) in true_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let p = scores.tail_probability(i, head, 1);
            if p < min_positive_score {
                min_positive_score = p;
            }
        }
        if !min_positive_score.is_finite() {
            // No positive frames in the held-out set: nothing can be safely filtered.
            return Ok(0.0);
        }
        // Small safety margin against held-out/test distribution mismatch.
        Ok((min_positive_score * 0.9).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::{DatasetPreset, DAY_HELDOUT, DAY_TRAIN};

    fn labeled_counts(video: &Video, frames: &[FrameIndex]) -> Vec<CountVector> {
        frames
            .iter()
            .map(|&f| CountVector::from_ground_truth(&video.scene().visible_at(f)))
            .collect()
    }

    fn train_car_counter(
        frames_per_day: u64,
        train_stride: usize,
    ) -> (SpecializedNN, Video, Video) {
        let train_video =
            DatasetPreset::Taipei.generate_with_frames(DAY_TRAIN, frames_per_day).unwrap();
        let heldout_video =
            DatasetPreset::Taipei.generate_with_frames(DAY_HELDOUT, frames_per_day).unwrap();
        let frames: Vec<FrameIndex> = (0..frames_per_day).step_by(train_stride).collect();
        let labels = labeled_counts(&train_video, &frames);
        let max_count = labels.iter().map(|c| c.get(ObjectClass::Car)).max().unwrap_or(1);
        let head = SpecializedHead { class: ObjectClass::Car, max_count: max_count.max(1) };
        let mut config = SpecializedConfig::for_heads(vec![head]);
        config.train.epochs = 3;
        let clock = SimClock::new();
        let (nn, report) =
            SpecializedNN::train(config, &train_video, &frames, &labels, clock).unwrap();
        assert!(report.training_cost_secs > 0.0);
        (nn, train_video, heldout_video)
    }

    #[test]
    fn head_from_counts_uses_one_percent_rule() {
        // 1000 frames: counts of 3 occur 2% of the time, counts of 4 only 0.5%.
        let mut counts = vec![0usize; 700];
        counts.extend(vec![1; 200]);
        counts.extend(vec![2; 75]);
        counts.extend(vec![3; 20]);
        counts.extend(vec![4; 5]);
        let head = SpecializedHead::from_counts(ObjectClass::Car, counts, 0.01);
        assert_eq!(head.max_count, 3);
        assert_eq!(head.head_size(), 4);
    }

    #[test]
    fn head_from_counts_handles_empty_and_all_zero() {
        let empty = SpecializedHead::from_counts(ObjectClass::Car, Vec::<usize>::new(), 0.01);
        assert_eq!(empty.max_count, 1);
        let zeros = SpecializedHead::from_counts(ObjectClass::Car, vec![0; 100], 0.01);
        assert_eq!(zeros.max_count, 1);
    }

    #[test]
    fn training_produces_correlated_counts() {
        let (nn, train_video, _) = train_car_counter(3_000, 3);
        // On the training day the predicted counts should correlate with ground truth.
        let mut pred_sum = 0.0;
        let mut true_sum = 0.0;
        let mut agree = 0usize;
        let mut total = 0usize;
        for f in (0..3_000).step_by(97) {
            let true_count = train_video.ground_truth_count(f, ObjectClass::Car).unwrap();
            let pred = nn.predict_counts(&train_video, f).unwrap()[0];
            pred_sum += pred as f64;
            true_sum += true_count as f64;
            if (pred as i64 - true_count as i64).abs() <= 1 {
                agree += 1;
            }
            total += 1;
        }
        assert!(
            agree as f64 / total as f64 > 0.6,
            "specialized NN within-1 agreement too low: {agree}/{total}"
        );
        // The averages should be in the same ballpark (not identical — it is a proxy).
        assert!((pred_sum - true_sum).abs() / (total as f64) < 1.0);
    }

    #[test]
    fn score_batch_matches_score_frame_elementwise_over_a_day() {
        // The batched pipeline must be a pure performance change: every
        // probability it produces for an entire preset day must equal the
        // serial per-frame path bit for bit.
        let frames_per_day = 1_500u64;
        let (nn, _, heldout) = train_car_counter(frames_per_day, 5);
        let batched = nn.score_video(&heldout).unwrap();
        assert_eq!(batched.num_frames() as u64, frames_per_day);
        for f in 0..frames_per_day {
            let serial = nn.score_frame(&heldout, f).unwrap();
            assert_eq!(
                batched.frame_probs(f as usize),
                serial,
                "batched and serial scores diverge at frame {f}"
            );
        }
    }

    #[test]
    fn score_batch_charges_the_same_inference_totals_as_serial() {
        let (nn, train_video, _) = train_car_counter(1_000, 5);
        let frames: Vec<FrameIndex> = (0..1_000).collect();

        let before = nn.clock.breakdown();
        let _ = nn.score_batch(&train_video, &frames).unwrap();
        let batched = nn.clock.breakdown().since(&before);

        let before = nn.clock.breakdown();
        for &f in &frames {
            nn.score_frame(&train_video, f).unwrap();
        }
        let serial = nn.clock.breakdown().since(&before);

        assert!((batched.specialized - serial.specialized).abs() < 1e-9);
        assert!((batched.decode - serial.decode).abs() < 1e-9);
        let expected = 1_000.0 * nn.config.cost.specialized_inference_cost();
        assert!((batched.specialized - expected).abs() < 1e-9);
    }

    #[test]
    fn score_batch_handles_multiple_heads_and_odd_batch_sizes() {
        let frames_per_day = 700u64; // not a multiple of BATCH_FRAMES
        let train_video =
            DatasetPreset::Taipei.generate_with_frames(DAY_TRAIN, frames_per_day).unwrap();
        let frames: Vec<FrameIndex> = (0..frames_per_day).step_by(2).collect();
        let labels = labeled_counts(&train_video, &frames);
        let heads = vec![
            SpecializedHead { class: ObjectClass::Car, max_count: 3 },
            SpecializedHead { class: ObjectClass::Bus, max_count: 1 },
        ];
        let mut config = SpecializedConfig::for_heads(heads);
        config.train.epochs = 2;
        let (nn, _) =
            SpecializedNN::train(config, &train_video, &frames, &labels, SimClock::new()).unwrap();

        let scores = nn.score_batch(&train_video, &frames).unwrap();
        assert_eq!(scores.num_frames(), frames.len());
        assert_eq!(scores.head_sizes(), &[4, 2]);
        for (i, &f) in frames.iter().enumerate() {
            assert_eq!(scores.frame_probs(i), nn.score_frame(&train_video, f).unwrap());
        }
        // Empty input is fine.
        let empty = nn.score_batch(&train_video, &[]).unwrap();
        assert_eq!(empty.num_frames(), 0);
    }

    #[test]
    fn scoring_charges_inference_time() {
        let (nn, train_video, _) = train_car_counter(1_500, 5);
        let before = nn.clock.breakdown().specialized;
        nn.score_frame(&train_video, 100).unwrap();
        nn.score_frame(&train_video, 101).unwrap();
        let after = nn.clock.breakdown().specialized;
        let expected = 2.0 * nn.config.cost.specialized_inference_cost();
        assert!((after - before - expected).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_normalized_and_tail_is_monotone() {
        let (nn, _, heldout) = train_car_counter(1_500, 5);
        let probs = nn.score_frame(&heldout, 700).unwrap();
        assert_eq!(probs.len(), 1);
        let head = &probs[0];
        let sum: f32 = head.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        let mut prev = 1.0 + 1e-6;
        for n in 0..head.len() {
            let tail = tail_probability(head, n);
            assert!(tail <= prev + 1e-6);
            prev = tail;
        }
    }

    #[test]
    fn fcount_error_estimate_and_bootstrap() {
        let (nn, _, heldout) = train_car_counter(2_000, 4);
        let frames: Vec<FrameIndex> = (0..2_000).step_by(7).collect();
        let true_counts: Vec<usize> = frames
            .iter()
            .map(|&f| heldout.ground_truth_count(f, ObjectClass::Car).unwrap())
            .collect();
        let est = nn
            .estimate_fcount_error(&heldout, &frames, &true_counts, ObjectClass::Car, 50, 3)
            .unwrap();
        assert_eq!(est.bootstrap_errors.len(), 50);
        assert!(est.mean_true > 0.0);
        assert!(est.abs_error < 1.0, "held-out FCOUNT error too large: {}", est.abs_error);
        // Probability is monotone in the tolerance.
        assert!(est.prob_error_within(1.0) >= est.prob_error_within(0.01));
        assert!(est.prob_error_within(10.0) == 1.0);
    }

    #[test]
    fn presence_threshold_has_no_false_negatives_on_heldout() {
        let (nn, _, heldout) = train_car_counter(2_000, 4);
        let frames: Vec<FrameIndex> = (0..2_000).step_by(11).collect();
        let true_counts: Vec<usize> = frames
            .iter()
            .map(|&f| heldout.ground_truth_count(f, ObjectClass::Car).unwrap())
            .collect();
        let threshold = nn
            .calibrate_presence_threshold(&heldout, &frames, &true_counts, ObjectClass::Car)
            .unwrap();
        assert!((0.0..=1.0).contains(&threshold));
        // Every held-out frame containing a car must score at or above the threshold.
        for (&f, &count) in frames.iter().zip(&true_counts) {
            if count > 0 {
                let p = nn.prob_at_least(&heldout, f, ObjectClass::Car, 1).unwrap();
                assert!(p >= threshold, "frame {f} with {count} cars scored {p} < {threshold}");
            }
        }
    }

    #[test]
    fn mismatched_training_inputs_rejected() {
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TRAIN, 200).unwrap();
        let config = SpecializedConfig::for_heads(vec![SpecializedHead {
            class: ObjectClass::Car,
            max_count: 3,
        }]);
        let clock = SimClock::new();
        let err = SpecializedNN::train(config.clone(), &video, &[1, 2, 3], &[], clock.clone());
        assert!(err.is_err());
        let err2 = SpecializedNN::train(config, &video, &[], &[], clock);
        assert!(err2.is_err());
    }

    #[test]
    fn missing_head_is_an_error() {
        let (nn, train_video, _) = train_car_counter(1_000, 10);
        assert!(nn.expected_count(&train_video, 0, ObjectClass::Boat).is_err());
        assert!(nn.head_index(ObjectClass::Boat).is_none());
        assert!(nn.head_index(ObjectClass::Car).is_some());
    }
}
