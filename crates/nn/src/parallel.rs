//! Data-parallel helpers for the batched scoring pipeline.
//!
//! The build environment has no `rayon`, so this module provides the one primitive
//! batched featurization needs: splitting a flat output buffer into contiguous chunks
//! and filling them from worker threads. Workers live in a process-wide persistent
//! pool (spawned once, on first use) instead of being re-spawned per `score_batch`
//! call; the contiguous-chunk strategy is unchanged. On a single-core host (or for
//! small inputs) the work runs inline with zero threading overhead.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

/// A unit of work shipped to the pool. The `'static` bound is produced by an unsafe
/// lifetime extension in [`run_scoped`], which is sound because the submitting call
/// blocks until every one of its jobs has finished.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool: `available_parallelism() - 1` detached workers
/// pulling jobs off one shared channel (the submitting thread works too, so the
/// total concurrency matches the core count).
struct WorkerPool {
    sender: Mutex<Sender<Job>>,
    workers: usize,
}

impl WorkerPool {
    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let workers = threads.saturating_sub(1);
            let (sender, receiver) = channel::<Job>();
            let receiver = std::sync::Arc::new(Mutex::new(receiver));
            for i in 0..workers {
                let receiver = std::sync::Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("blazeit-score-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning a pool worker");
            }
            WorkerPool { sender: Mutex::new(sender), workers }
        })
    }

    fn submit(&self, job: Job) {
        self.sender
            .lock()
            .expect("pool sender lock")
            .send(job)
            .expect("pool workers never hang up");
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // Channel closed: process is shutting down.
        }
    }
}

/// Counts outstanding jobs of one `run_scoped` call and wakes the submitter when the
/// last one finishes (normally or by panic).
struct Latch {
    state: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch { state: Mutex::new(count), done: Condvar::new() }
    }

    fn complete_one(&self) {
        let mut remaining = self.state.lock().expect("latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.state.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch wait");
        }
    }
}

/// Runs `tasks` on the persistent pool (all but the first, which runs on the calling
/// thread) and blocks until every task has completed. Panics from workers are
/// captured and re-raised on the caller.
///
/// # Safety
///
/// Task closures may borrow caller-local data: they are lifetime-extended to
/// `'static` before entering the pool, which is sound because this function does not
/// return until the latch confirms every task has run to completion (panicking tasks
/// included), so no closure can outlive the borrows it captured.
fn run_scoped<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    let pool = WorkerPool::global();
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let latch = Latch::new(tasks.len());

    let mut tasks = tasks.into_iter();
    let first = tasks.next().expect("tasks is non-empty");
    for task in tasks {
        let latch_ref = &latch;
        let panic_ref = &panic_slot;
        let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = match panic_ref.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                slot.get_or_insert(payload);
            }
            latch_ref.complete_one();
        });
        // SAFETY: see the function-level safety comment — the latch wait below keeps
        // every borrow captured by `wrapped` alive until the job has finished.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(wrapped) };
        pool.submit(job);
    }

    // The caller is a worker too: run the first task inline.
    let inline_result = catch_unwind(AssertUnwindSafe(first));
    latch.complete_one();
    latch.wait();

    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    let payload = match panic_slot.lock() {
        Ok(mut guard) => guard.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    };
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Splits `data` into at most `available_parallelism()` contiguous chunks whose
/// lengths are multiples of `align` and runs `f(start_offset, chunk)` for each, on
/// the persistent worker pool when more than one core is available.
///
/// `align` is the row width of the flattened 2-D buffer, so chunk boundaries
/// always fall between rows. The first error (by chunk order) is returned;
/// panics in workers propagate.
pub fn par_fill_chunks<T, E, F>(data: &mut [T], align: usize, f: F) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &mut [T]) -> Result<(), E> + Sync,
{
    assert!(align > 0 && data.len().is_multiple_of(align), "buffer is not row-aligned");
    let rows = data.len() / align;
    let threads = WorkerPool::global().workers + 1;
    let rows_per_chunk = rows.div_ceil(threads.max(1)).max(1);
    let chunk_len = rows_per_chunk * align;

    if threads <= 1 || rows <= rows_per_chunk {
        let mut start = 0usize;
        for chunk in data.chunks_mut(chunk_len) {
            let len = chunk.len();
            f(start, chunk)?;
            start += len;
        }
        return Ok(());
    }

    let f = &f;
    let num_chunks = rows.div_ceil(rows_per_chunk);
    let results: Vec<Mutex<Option<Result<(), E>>>> =
        (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(num_chunks);
    let mut start = 0usize;
    for (chunk, slot) in data.chunks_mut(chunk_len).zip(&results) {
        let offset = start;
        start += chunk.len();
        tasks.push(Box::new(move || {
            let outcome = f(offset, chunk);
            let mut guard = match slot.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = Some(outcome);
        }));
    }
    run_scoped(tasks);

    for slot in &results {
        let outcome = match slot.lock() {
            Ok(mut guard) => guard.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(Err(e)) = outcome {
            return Err(e);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_every_row_exactly_once() {
        let mut data = vec![0u32; 7 * 3];
        par_fill_chunks(&mut data, 3, |start, chunk| -> Result<(), ()> {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as u32;
            }
            Ok(())
        })
        .unwrap();
        let expected: Vec<u32> = (0..21).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn propagates_errors() {
        let mut data = vec![0u8; 8];
        let err =
            par_fill_chunks(&mut data, 2, |start, _| if start == 0 { Err("boom") } else { Ok(()) });
        assert_eq!(err, Err("boom"));
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        par_fill_chunks(&mut data, 4, |_, _| -> Result<(), ()> { panic!("should not run") })
            .unwrap();
    }

    #[test]
    fn pool_is_reused_across_many_calls() {
        // Large enough rows to engage the pool path on multi-core hosts; repeated
        // calls must neither deadlock nor leak (workers are persistent).
        for round in 0..50u32 {
            let rows = 512usize;
            let mut data = vec![0u64; rows * 4];
            par_fill_chunks(&mut data, 4, |start, chunk| -> Result<(), ()> {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (start + i) as u64 + u64::from(round);
                }
                Ok(())
            })
            .unwrap();
            assert_eq!(data[0], u64::from(round));
            assert_eq!(*data.last().unwrap(), (rows * 4 - 1) as u64 + u64::from(round));
        }
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut data = vec![0u32; 64 * 8];
                    par_fill_chunks(&mut data, 8, |start, chunk| -> Result<(), ()> {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = (start + i) as u32;
                        }
                        Ok(())
                    })
                    .unwrap();
                    assert_eq!(data[511], 511);
                });
            }
        });
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        // The first chunk (start == 0) exists on every host, whether it runs inline,
        // on the caller-as-worker path, or in a single serial chunk — so the panic
        // must always surface (and never hang the latch).
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut data = vec![0u8; 1024 * 2];
            let _ = par_fill_chunks(&mut data, 2, |start, _| -> Result<(), ()> {
                if start == 0 {
                    panic!("worker exploded");
                }
                Ok(())
            });
        }));
        assert!(outcome.is_err());
    }
}
