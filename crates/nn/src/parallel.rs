//! Data-parallel helpers for the batched scoring pipeline.
//!
//! The build environment has no `rayon`, so this module provides the one
//! primitive batched featurization needs: splitting a flat output buffer into
//! contiguous chunks and filling them from scoped worker threads. On a
//! single-core host (or for small inputs) the work runs inline with zero
//! threading overhead.

/// Splits `data` into at most `available_parallelism()` contiguous chunks whose
/// lengths are multiples of `align` and runs `f(start_offset, chunk)` for each,
/// in parallel when more than one core is available.
///
/// `align` is the row width of the flattened 2-D buffer, so chunk boundaries
/// always fall between rows. The first error (by chunk order) is returned;
/// panics in workers propagate.
pub fn par_fill_chunks<T, E, F>(data: &mut [T], align: usize, f: F) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &mut [T]) -> Result<(), E> + Sync,
{
    assert!(align > 0 && data.len() % align == 0, "buffer is not row-aligned");
    let rows = data.len() / align;
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rows_per_chunk = rows.div_ceil(threads.max(1)).max(1);
    let chunk_len = rows_per_chunk * align;

    if threads <= 1 || rows <= rows_per_chunk {
        let mut start = 0usize;
        for chunk in data.chunks_mut(chunk_len) {
            let len = chunk.len();
            f(start, chunk)?;
            start += len;
        }
        return Ok(());
    }

    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        let mut start = 0usize;
        for chunk in data.chunks_mut(chunk_len) {
            let offset = start;
            start += chunk.len();
            handles.push(scope.spawn(move || f(offset, chunk)));
        }
        let mut result = Ok(());
        for handle in handles {
            let outcome = handle.join().expect("parallel featurization worker panicked");
            if result.is_ok() {
                result = outcome;
            }
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_every_row_exactly_once() {
        let mut data = vec![0u32; 7 * 3];
        par_fill_chunks(&mut data, 3, |start, chunk| -> Result<(), ()> {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as u32;
            }
            Ok(())
        })
        .unwrap();
        let expected: Vec<u32> = (0..21).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn propagates_errors() {
        let mut data = vec![0u8; 8];
        let err =
            par_fill_chunks(&mut data, 2, |start, _| if start == 0 { Err("boom") } else { Ok(()) });
        assert_eq!(err, Err("boom"));
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        par_fill_chunks(&mut data, 4, |_, _| -> Result<(), ()> { panic!("should not run") })
            .unwrap();
    }
}
