//! Data-parallel helpers built on one process-wide persistent worker pool.
//!
//! The build environment has no `rayon`, so this module provides the two primitives
//! the engine needs:
//!
//! * [`par_fill_chunks`] — split a flat output buffer into contiguous chunks and fill
//!   them from worker threads (what batched featurization uses).
//! * [`par_run`] — run a set of heterogeneous scoped tasks to completion and collect
//!   their results in submission order (what the catalog's cross-video query fan-out
//!   uses to execute per-video sub-queries concurrently).
//!
//! Workers live in a process-wide persistent pool (spawned once, on first use)
//! instead of being re-spawned per call. On a single-core host (or for small inputs)
//! the work runs inline with zero threading overhead.
//!
//! **Nesting is safe.** A task running on the pool may itself call back into
//! [`par_fill_chunks`] or [`par_run`] (a fanned-out sub-query scores its video through
//! the same pool). Blocking a worker on a latch while its sub-jobs sit in the shared
//! queue would deadlock once every worker waits, so latch waits are *cooperative*: a
//! waiting submitter steals queued jobs — anyone's — and runs them until its own jobs
//! have all finished.

use blazeit_detect::SimClock;
use blazeit_videostore::sync::{AtomicU64, Condvar, Mutex, MutexGuard, OnceLock, Ordering};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Worker threads in the pool (0 until the pool has spawned on first use;
/// reading this never forces the spawn).
static POOL_WORKERS: AtomicU64 = AtomicU64::new(0);
/// Jobs queued onto the shared channel by [`WorkerPool::submit`].
static JOBS_SUBMITTED: AtomicU64 = AtomicU64::new(0);
/// Jobs dequeued and run by dedicated worker threads.
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Jobs stolen off the queue and run inline by a cooperatively waiting
/// submitter.
static JOBS_STOLEN: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the pool's lifetime counters, for the metrics registry.
///
/// `submitted` counts queued jobs only — each `run_scoped` call's first task
/// runs inline on the caller and is deliberately not counted. A submitted job
/// ends up either `executed` (by a dedicated worker) or `stolen` (by a waiting
/// submitter); the difference `submitted - executed - stolen` is the queue's
/// instantaneous depth plus jobs mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Dedicated worker threads (0 before first pool use).
    pub workers: u64,
    /// Jobs queued onto the shared channel.
    pub submitted: u64,
    /// Jobs run by dedicated worker threads.
    pub executed: u64,
    /// Jobs stolen and run inline by waiting submitters.
    pub stolen: u64,
}

/// Reads the pool's lifetime counters without forcing the pool to spawn.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        workers: POOL_WORKERS.load(Ordering::Relaxed),
        submitted: JOBS_SUBMITTED.load(Ordering::Relaxed),
        executed: JOBS_EXECUTED.load(Ordering::Relaxed),
        stolen: JOBS_STOLEN.load(Ordering::Relaxed),
    }
}

/// A unit of work shipped to the pool. The `'static` bound is produced by an unsafe
/// lifetime extension in the private `run_scoped` entry point, which is sound
/// because the submitting call blocks until every one of its jobs has finished.
///
/// Public so the model-checker test suite (`blazeit-model`) can drive
/// [`Latch::wait_with_steal`] with synthetic jobs.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool: `available_parallelism() - 1` detached workers
/// pulling jobs off one shared channel (the submitting thread works too, so the
/// total concurrency matches the core count).
struct WorkerPool {
    sender: Mutex<Sender<Job>>,
    receiver: Arc<Mutex<Receiver<Job>>>,
    workers: usize,
}

impl WorkerPool {
    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let workers = threads.saturating_sub(1);
            let (sender, receiver) = channel::<Job>();
            let receiver = Arc::new(Mutex::new(receiver));
            for i in 0..workers {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("blazeit-score-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    // blazeit-lint: allow(panic-site) -- pool bootstrap inside
                    // OnceLock::get_or_init has no error channel; a failed spawn is
                    // unrecoverable resource exhaustion at first use.
                    .expect("spawning a pool worker");
            }
            POOL_WORKERS.store(workers as u64, Ordering::Relaxed);
            WorkerPool { sender: Mutex::new(sender), receiver, workers }
        })
    }

    fn submit(&self, job: Job) {
        JOBS_SUBMITTED.fetch_add(1, Ordering::Relaxed);
        // The sync-shim lock ignores poisoning: a panic inside `send` does not
        // leave the channel in a broken state, so future submissions keep going.
        let sender = self.sender.lock();
        // blazeit-lint: allow(panic-site) -- the global pool's workers hold the
        // receiver for the process lifetime, so send cannot observe a closed channel.
        sender.send(job).expect("pool workers never hang up");
    }

    /// Dequeues one pending job without blocking (used by cooperative latch waits).
    fn try_steal(&self) -> Option<Job> {
        self.receiver.try_lock()?.try_recv().ok()
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = receiver.lock().recv();
        match job {
            Ok(job) => {
                job();
                JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => return, // Channel closed: process is shutting down.
        }
    }
}

/// Counts outstanding jobs of one `run_scoped` call and wakes the submitter when the
/// last one finishes (normally or by panic).
///
/// Public (though not part of the stable API) so the `blazeit-model` schedule
/// explorer can exhaustively check the wait/complete protocol for lost wakeups:
/// under the `model` feature the condvar wait never times out, so the protocol
/// must be correct on notify placement alone — the timeout below is only a
/// queue-recheck heartbeat, never a correctness crutch.
#[doc(hidden)]
pub struct Latch {
    state: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    /// A latch counting down from `count` outstanding jobs.
    pub fn new(count: usize) -> Latch {
        Latch { state: Mutex::new(count), done: Condvar::new() }
    }

    /// Locks the counter. The sync-shim lock ignores poisoning, which is the
    /// behavior this protocol needs: a `usize` has no invariant a panic can
    /// break mid-update, and refusing to decrement would hang the submitter's
    /// latch wait forever — the one failure mode this module must never have.
    fn state(&self) -> MutexGuard<'_, usize> {
        self.state.lock()
    }

    /// Marks one counted job finished, waking waiters when the count hits zero.
    pub fn complete_one(&self) {
        let mut remaining = self.state();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Whether every counted job has finished.
    pub fn is_done(&self) -> bool {
        *self.state() == 0
    }

    /// Waits for every counted job, *cooperatively*: while the latch is open,
    /// `steal()` is polled for queued jobs (this call's or anyone else's), which run
    /// on the waiting thread. This is what makes nested pool use deadlock-free — a
    /// pool worker blocked here still drains the shared queue, so the sub-jobs it
    /// (or a sibling) submitted always make progress even when every dedicated
    /// worker is occupied.
    ///
    /// Lost-wakeup freedom: the final `remaining == 0` check and the condvar wait
    /// happen under the same lock [`complete_one`] holds while decrementing and
    /// notifying, so a completion can never slip between the check and the block.
    /// The `blazeit-model` suite proves this across every interleaving.
    pub fn wait_with_steal(&self, mut steal: impl FnMut() -> Option<Job>) {
        loop {
            if self.is_done() {
                return;
            }
            if let Some(job) = steal() {
                job();
                JOBS_STOLEN.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Nothing to steal right now: block briefly on the condvar. The timeout
            // re-checks the queue, since job submission does not signal this latch.
            let remaining = self.state();
            if *remaining == 0 {
                return;
            }
            let _ = self.done.wait_timeout(remaining, Duration::from_micros(200));
        }
    }

    fn wait_cooperatively(&self, pool: &WorkerPool) {
        self.wait_with_steal(|| pool.try_steal());
    }
}

/// Runs `tasks` on the persistent pool (all but the first, which runs on the calling
/// thread) and blocks until every task has completed. Panics from workers are
/// captured and re-raised on the caller.
///
/// # Safety
///
/// Task closures may borrow caller-local data: they are lifetime-extended to
/// `'static` before entering the pool, which is sound because this function does not
/// return until the latch confirms every task has run to completion (panicking tasks
/// included), so no closure can outlive the borrows it captured.
fn run_scoped<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    let pool = WorkerPool::global();
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let latch = Latch::new(tasks.len());

    // Cost attribution: jobs run on whichever thread dequeues them (a pool
    // worker, or any cooperative latch-waiter stealing from the shared queue),
    // so the submitter's simulated-clock charge tag is captured here and
    // re-established around the job body — charges land in the submitting
    // session's ledger no matter where the work physically executes.
    let tag = SimClock::charge_tag();
    let mut tasks = tasks.into_iter();
    let Some(first) = tasks.next() else { return };
    for task in tasks {
        let latch_ref = &latch;
        let panic_ref = &panic_slot;
        let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            SimClock::with_charge_tag(tag, || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    panic_ref.lock().get_or_insert(payload);
                }
            });
            latch_ref.complete_one();
        });
        // SAFETY: see the function-level safety comment — the latch wait below keeps
        // every borrow captured by `wrapped` alive until the job has finished.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(wrapped) };
        pool.submit(job);
    }

    // The caller is a worker too: run the first task inline.
    let inline_result = catch_unwind(AssertUnwindSafe(first));
    latch.complete_one();
    latch.wait_cooperatively(pool);

    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    let payload = panic_slot.lock().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Runs every task to completion — concurrently on the persistent worker pool when
/// more than one core is available, inline otherwise — and returns their results in
/// submission order.
///
/// This is the fan-out primitive for heterogeneous scoped work (e.g. executing one
/// sub-query per video of a multi-video FrameQL query): tasks may borrow from the
/// caller's stack, the call blocks until all of them have finished, and a panicking
/// task re-raises its payload on the caller after the others complete. Tasks may
/// themselves use the pool ([`par_fill_chunks`] or a nested `par_run`); waiting
/// submitters steal queued jobs, so nesting cannot deadlock.
pub fn par_run<'scope, T: Send + 'scope>(
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'scope>>,
) -> Vec<T> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let slots: Vec<Mutex<Option<T>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let wrapped: Vec<Box<dyn FnOnce() + Send + '_>> = tasks
        .into_iter()
        .zip(&slots)
        .map(|(task, slot)| {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let value = task();
                *slot.lock() = Some(value);
            });
            job
        })
        .collect();
    run_scoped(wrapped);
    slots
        .into_iter()
        .map(|slot| {
            // blazeit-lint: allow(panic-site) -- run_scoped returns only after the
            // latch counts every task (worker panics are re-thrown before this), so
            // every slot has been filled.
            slot.lock().take().expect("run_scoped ran every task to completion")
        })
        .collect()
}

/// A panic captured at a [`par_run_caught`] task boundary, carrying the stringified
/// panic payload. Converting panics into values here keeps a single exploding task
/// from aborting its siblings or re-raising on the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic message (`&str` / `String` payloads verbatim; a placeholder for
    /// anything else).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`par_run`], but a panicking task yields `Err(TaskPanic)` in its slot
/// instead of re-raising on the caller once the batch drains.
///
/// Every panic is caught *inside* the task before it reaches the pool machinery, so
/// the worker thread, the shared queue, and sibling tasks are untouched — the pool
/// cannot be poisoned or deadlocked by one bad task, and callers get a typed,
/// per-task verdict they can surface as an error value.
pub fn par_run_caught<'scope, T: Send + 'scope>(
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'scope>>,
) -> Vec<Result<T, TaskPanic>> {
    let caught: Vec<Box<dyn FnOnce() -> Result<T, TaskPanic> + Send + 'scope>> = tasks
        .into_iter()
        .map(|task| {
            let wrapped: Box<dyn FnOnce() -> Result<T, TaskPanic> + Send + 'scope> =
                Box::new(move || {
                    catch_unwind(AssertUnwindSafe(task))
                        .map_err(|payload| TaskPanic { message: panic_message(payload.as_ref()) })
                });
            wrapped
        })
        .collect();
    par_run(caught)
}

/// Splits `data` into at most `available_parallelism()` contiguous chunks whose
/// lengths are multiples of `align` and runs `f(start_offset, chunk)` for each, on
/// the persistent worker pool when more than one core is available.
///
/// `align` is the row width of the flattened 2-D buffer, so chunk boundaries
/// always fall between rows. The first error (by chunk order) is returned;
/// panics in workers propagate.
pub fn par_fill_chunks<T, E, F>(data: &mut [T], align: usize, f: F) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &mut [T]) -> Result<(), E> + Sync,
{
    assert!(align > 0 && data.len().is_multiple_of(align), "buffer is not row-aligned");
    let rows = data.len() / align;
    let threads = WorkerPool::global().workers + 1;
    let rows_per_chunk = rows.div_ceil(threads.max(1)).max(1);
    let chunk_len = rows_per_chunk * align;

    if threads <= 1 || rows <= rows_per_chunk {
        let mut start = 0usize;
        for chunk in data.chunks_mut(chunk_len) {
            let len = chunk.len();
            f(start, chunk)?;
            start += len;
        }
        return Ok(());
    }

    let f = &f;
    let num_chunks = rows.div_ceil(rows_per_chunk);
    let results: Vec<Mutex<Option<Result<(), E>>>> =
        (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(num_chunks);
    let mut start = 0usize;
    for (chunk, slot) in data.chunks_mut(chunk_len).zip(&results) {
        let offset = start;
        start += chunk.len();
        tasks.push(Box::new(move || {
            let outcome = f(offset, chunk);
            *slot.lock() = Some(outcome);
        }));
    }
    run_scoped(tasks);

    for slot in &results {
        if let Some(Err(e)) = slot.lock().take() {
            return Err(e);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_every_row_exactly_once() {
        let mut data = vec![0u32; 7 * 3];
        par_fill_chunks(&mut data, 3, |start, chunk| -> Result<(), ()> {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as u32;
            }
            Ok(())
        })
        .unwrap();
        let expected: Vec<u32> = (0..21).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn propagates_errors() {
        let mut data = vec![0u8; 8];
        let err =
            par_fill_chunks(&mut data, 2, |start, _| if start == 0 { Err("boom") } else { Ok(()) });
        assert_eq!(err, Err("boom"));
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        par_fill_chunks(&mut data, 4, |_, _| -> Result<(), ()> { panic!("should not run") })
            .unwrap();
    }

    #[test]
    fn pool_is_reused_across_many_calls() {
        // Large enough rows to engage the pool path on multi-core hosts; repeated
        // calls must neither deadlock nor leak (workers are persistent).
        for round in 0..50u32 {
            let rows = 512usize;
            let mut data = vec![0u64; rows * 4];
            par_fill_chunks(&mut data, 4, |start, chunk| -> Result<(), ()> {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (start + i) as u64 + u64::from(round);
                }
                Ok(())
            })
            .unwrap();
            assert_eq!(data[0], u64::from(round));
            assert_eq!(*data.last().unwrap(), (rows * 4 - 1) as u64 + u64::from(round));
        }
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut data = vec![0u32; 64 * 8];
                    par_fill_chunks(&mut data, 8, |start, chunk| -> Result<(), ()> {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = (start + i) as u32;
                        }
                        Ok(())
                    })
                    .unwrap();
                    assert_eq!(data[511], 511);
                });
            }
        });
    }

    #[test]
    fn par_run_returns_results_in_submission_order() {
        let inputs: Vec<u64> = (0..23).collect();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = inputs
            .iter()
            .map(|&i| {
                let task: Box<dyn FnOnce() -> u64 + Send + '_> = Box::new(move || i * i);
                task
            })
            .collect();
        let results = par_run(tasks);
        let expected: Vec<u64> = inputs.iter().map(|&i| i * i).collect();
        assert_eq!(results, expected);
        assert!(par_run::<u8>(Vec::new()).is_empty());
    }

    #[test]
    fn par_run_tasks_may_borrow_caller_state() {
        let words = ["alpha".to_string(), "beta".to_string(), "gamma".to_string()];
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = words
            .iter()
            .map(|w| {
                let task: Box<dyn FnOnce() -> usize + Send + '_> = Box::new(move || w.len());
                task
            })
            .collect();
        assert_eq!(par_run(tasks), vec![5, 4, 5]);
    }

    #[test]
    fn nested_pool_use_does_not_deadlock() {
        // Each outer task occupies the pool AND fans out again through it — both via
        // par_fill_chunks and a nested par_run. With naive (non-cooperative) latch
        // waits this configuration deadlocks as soon as outer tasks outnumber the
        // workers; the cooperative wait steals the queued inner jobs instead.
        let outer: Vec<Box<dyn FnOnce() -> u64 + Send + 'static>> = (0..16)
            .map(|round| {
                let task: Box<dyn FnOnce() -> u64 + Send + 'static> = Box::new(move || {
                    let mut data = vec![0u64; 256 * 4];
                    par_fill_chunks(&mut data, 4, |start, chunk| -> Result<(), ()> {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = (start + i) as u64 + round;
                        }
                        Ok(())
                    })
                    .unwrap();
                    let data_ref = &data;
                    let inner: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..4)
                        .map(|k| {
                            let t: Box<dyn FnOnce() -> u64 + Send + '_> =
                                Box::new(move || data_ref[k] + 1);
                            t
                        })
                        .collect();
                    par_run(inner).into_iter().sum()
                });
                task
            })
            .collect();
        let sums = par_run(outer);
        for (round, sum) in sums.iter().enumerate() {
            // data[k] = k + round for k in 0..4, +1 each: sum = (0+1+2+3) + 4*round + 4.
            assert_eq!(*sum, 6 + 4 * round as u64 + 4);
        }
    }

    #[test]
    fn par_run_caught_converts_panics_to_typed_errors() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send + 'static>> = (0..8)
            .map(|i| {
                let task: Box<dyn FnOnce() -> u32 + Send + 'static> = Box::new(move || {
                    if i % 3 == 0 {
                        panic!("task {i} exploded");
                    }
                    i * 10
                });
                task
            })
            .collect();
        let results = par_run_caught(tasks);
        assert_eq!(results.len(), 8);
        for (i, result) in results.iter().enumerate() {
            if i % 3 == 0 {
                let panic = result.as_ref().unwrap_err();
                assert_eq!(panic.message, format!("task {i} exploded"));
            } else {
                assert_eq!(*result.as_ref().unwrap(), i as u32 * 10);
            }
        }
    }

    #[test]
    fn pool_survives_caught_panics() {
        // A batch where every task panics must leave the pool fully functional.
        let bad: Vec<Box<dyn FnOnce() -> u8 + Send + 'static>> = (0..16)
            .map(|_| {
                let task: Box<dyn FnOnce() -> u8 + Send + 'static> = Box::new(|| panic!("chaos"));
                task
            })
            .collect();
        for result in par_run_caught(bad) {
            assert!(result.is_err());
        }
        let good: Vec<Box<dyn FnOnce() -> u64 + Send + 'static>> = (0..16)
            .map(|i| {
                let task: Box<dyn FnOnce() -> u64 + Send + 'static> = Box::new(move || i + 1);
                task
            })
            .collect();
        let sums: u64 = par_run_caught(good).into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(sums, (1..=16).sum::<u64>());
    }

    #[test]
    fn pool_stats_accounts_for_queued_work() {
        let before = pool_stats();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + 'static>> = (0..32u64)
            .map(|i| Box::new(move || i) as Box<dyn FnOnce() -> u64 + Send + 'static>)
            .collect();
        let results = par_run(tasks);
        assert_eq!(results.len(), 32);
        let after = pool_stats();
        // The first task ran inline (never counted); the other 31 were queued.
        // Executed/stolen tallies land just after each job body, so they can
        // lag the latch — only the submission count is exact here.
        assert!(after.submitted >= before.submitted + 31);
        assert_eq!(after.workers as usize, WorkerPool::global().workers);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        // The first chunk (start == 0) exists on every host, whether it runs inline,
        // on the caller-as-worker path, or in a single serial chunk — so the panic
        // must always surface (and never hang the latch).
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut data = vec![0u8; 1024 * 2];
            let _ = par_fill_chunks(&mut data, 2, |start, _| -> Result<(), ()> {
                if start == 0 {
                    panic!("worker exploded");
                }
                Ok(())
            });
        }));
        assert!(outcome.is_err());
    }
}
