//! Frame featurization for specialized networks.
//!
//! The paper's specialized NNs consume 65x65 RGB crops and learn convolutional
//! features. Here the convolutional stem is replaced by a deterministic featurizer: the
//! frame is resized to a small grid and flattened, and a handful of per-channel
//! statistics over that grid are appended. This keeps training cheap on CPU while
//! preserving what the optimizations need — features that are *predictive but not
//! perfectly predictive* of the detector's per-frame counts.
//!
//! Every feature depends only on the `grid_side × grid_side` nearest-neighbor sample
//! of the frame. That property is what makes the batched scoring pipeline fast: the
//! fast path ([`FrameFeaturizer::features_for_video_frame`]) renders *only* those
//! sampled pixels via [`Video::frame_sampled`] (bit-identical to decoding the full
//! frame and resizing) instead of materializing the whole buffer per frame.

// blazeit-lint: allow-file(panic-site::index) -- feature-extraction kernels: indices are derived
// from the frame's own width/height and fixed channel strides

use crate::Result;
use blazeit_videostore::ingest::resize;
use blazeit_videostore::{BoundingBox, Frame, FrameIndex, Video};
use serde::{Deserialize, Serialize};

/// Configuration of the frame featurizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Side length of the downsampled grid (the grid is `side x side` pixels).
    pub grid_side: usize,
    /// Whether to append global channel statistics (mean and variance per channel,
    /// plus redness/blueness summaries).
    pub include_stats: bool,
    /// Whether to append a per-cell "deviation from the frame's mean color" map.
    ///
    /// Counting requires a signal that is invariant to *which* color an object is; the
    /// deviation map measures how much each grid cell departs from the background,
    /// which is what a small CNN's early layers would learn. Without it, a linear model
    /// tends to learn the training day's count prior instead of actually counting.
    pub include_deviation: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { grid_side: 12, include_stats: true, include_deviation: true }
    }
}

impl FeatureConfig {
    /// The dimensionality of the produced feature vectors.
    pub fn dim(&self) -> usize {
        let cells = self.grid_side * self.grid_side;
        cells * 3
            + if self.include_deviation { cells + 2 * self.grid_side + 3 } else { 0 }
            + if self.include_stats { 8 } else { 0 }
    }
}

/// Converts frames (or frame regions) into fixed-length feature vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameFeaturizer {
    config: FeatureConfig,
}

impl FrameFeaturizer {
    /// Creates a featurizer.
    pub fn new(config: FeatureConfig) -> FrameFeaturizer {
        FrameFeaturizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> FeatureConfig {
        self.config
    }

    /// The dimensionality of produced features.
    pub fn dim(&self) -> usize {
        self.config.dim()
    }

    /// Featurizes a whole frame.
    ///
    /// The representation is what the first layers of a small counting CNN would
    /// compute, made explicit so a modest MLP can learn counting from a few thousand
    /// labeled frames:
    ///
    /// * background-subtracted grid pixels (per-channel deviation from the frame's mean
    ///   color, signed) — carries *where* and *what color* foreground objects are;
    /// * a per-cell L1 deviation map — a color-agnostic occupancy map;
    /// * row and column sums of the deviation map, the total deviation, and the number
    ///   of cells above two occupancy thresholds — pooled features whose magnitude
    ///   scales directly with the number of visible objects;
    /// * optional per-channel statistics over the grid (mean, variance,
    ///   redness/blueness summaries).
    pub fn features(&self, frame: &Frame) -> Result<Vec<f32>> {
        let side = self.config.grid_side;
        let small =
            resize(frame, side, side).map_err(|e| crate::NnError::InvalidConfig(e.to_string()))?;
        let mut out = vec![0.0f32; self.dim()];
        self.features_into_grid(&small, &mut out);
        Ok(out)
    }

    /// Featurizes a frame of `video` through the sparse-render fast path.
    ///
    /// Renders only the `grid_side × grid_side` pixels featurization samples
    /// ([`Video::frame_sampled`]) instead of decoding the full frame — the same
    /// feature vector as `features(&video.frame(f)?)`, at a fraction of the
    /// per-frame cost.
    pub fn features_for_video_frame(&self, video: &Video, frame: FrameIndex) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; self.dim()];
        self.features_for_video_frame_into(video, frame, &mut out)?;
        Ok(out)
    }

    /// Like [`FrameFeaturizer::features_for_video_frame`], but writes into a
    /// caller-provided slice of length [`FrameFeaturizer::dim`] — the
    /// allocation-free featurization kernel of the batched scoring pipeline
    /// (each worker fills its rows of the batch feature matrix directly).
    pub fn features_for_video_frame_into(
        &self,
        video: &Video,
        frame: FrameIndex,
        out: &mut [f32],
    ) -> Result<()> {
        if out.len() != self.dim() {
            return Err(crate::NnError::ShapeMismatch {
                context: format!("feature buffer of {} for dim {}", out.len(), self.dim()),
            });
        }
        let side = self.config.grid_side;
        let small = video
            .frame_sampled(frame, side, side)
            .map_err(|e| crate::NnError::InvalidConfig(e.to_string()))?;
        self.features_into_grid(&small, out);
        Ok(())
    }

    /// Assembles the feature vector from an already-downsampled `grid_side ×
    /// grid_side` frame into `out` (length [`FrameFeaturizer::dim`]); the shared
    /// back half of [`FrameFeaturizer::features`] and the fast paths. Writes
    /// every position, in the same order and with the same arithmetic as the
    /// original push-based construction.
    fn features_into_grid(&self, small: &Frame, out: &mut [f32]) {
        let side = self.config.grid_side;
        let cells = side * side;
        // Per-channel mean of the downsampled frame (background estimate).
        let n = cells.max(1) as f32;
        let mut mean = [0.0f32; 3];
        for px in small.pixels.chunks_exact(3) {
            for c in 0..3 {
                mean[c] += px[c] as f32 / 255.0;
            }
        }
        for m in &mut mean {
            *m /= n;
        }

        // Background-subtracted grid pixels.
        for (i, px) in small.pixels.chunks_exact(3).enumerate() {
            for c in 0..3 {
                out[i * 3 + c] = px[c] as f32 / 255.0 - mean[c];
            }
        }

        let mut cursor = cells * 3;
        if self.config.include_deviation {
            // Color-agnostic occupancy map plus pooled summaries. The deviation
            // map is written straight into its output slot and the pooled sums
            // read it back from there.
            for (d, px) in out[cursor..cursor + cells].iter_mut().zip(small.pixels.chunks_exact(3))
            {
                *d = (0..3).map(|c| (px[c] as f32 / 255.0 - mean[c]).abs()).sum::<f32>() / 3.0;
            }
            let (head, rest) = out.split_at_mut(cursor + cells);
            let deviation = &head[cursor..];
            let (row_sums, rest) = rest.split_at_mut(side);
            let (col_sums, pooled) = rest.split_at_mut(side);
            row_sums.fill(0.0);
            col_sums.fill(0.0);
            for (i, &d) in deviation.iter().enumerate() {
                row_sums[i / side] += d;
                col_sums[i % side] += d;
            }
            let total: f32 = deviation.iter().sum();
            let occupied_loose = deviation.iter().filter(|&&d| d > 0.05).count() as f32;
            let occupied_tight = deviation.iter().filter(|&&d| d > 0.12).count() as f32;
            pooled[0] = total / 20.0;
            pooled[1] = occupied_loose / 10.0;
            pooled[2] = occupied_tight / 10.0;
            cursor += cells + 2 * side + 3;
        }
        if self.config.include_stats {
            out[cursor..cursor + 8].copy_from_slice(&Self::channel_stats(small));
        }
    }

    /// Featurizes a region of a frame (used by spatially filtered pipelines).
    pub fn features_in(&self, frame: &Frame, region: &BoundingBox) -> Result<Vec<f32>> {
        let cropped = blazeit_videostore::ingest::crop(frame, region)
            .map_err(|e| crate::NnError::InvalidConfig(e.to_string()))?;
        self.features(&cropped)
    }

    /// Per-channel mean/variance and redness/blueness summaries of the grid.
    ///
    /// Computed over the downsampled grid rather than the full frame so that the
    /// entire feature vector depends only on the sampled pixels — the invariant
    /// the sparse-render fast path relies on. (Per-dimension standardization
    /// statistics are computed separately by [`Standardizer::fit`].)
    fn channel_stats(frame: &Frame) -> [f32; 8] {
        let n = frame.num_pixels().max(1) as f64;
        let mut sums = [0.0f64; 3];
        let mut sq = [0.0f64; 3];
        for px in frame.pixels.chunks_exact(3) {
            for c in 0..3 {
                let v = px[c] as f64 / 255.0;
                sums[c] += v;
                sq[c] += v * v;
            }
        }
        let mean: Vec<f64> = sums.iter().map(|s| s / n).collect();
        let var: Vec<f64> = sq.iter().zip(&mean).map(|(s, m)| (s / n - m * m).max(0.0)).collect();
        [
            mean[0] as f32,
            mean[1] as f32,
            mean[2] as f32,
            var[0] as f32,
            var[1] as f32,
            var[2] as f32,
            (mean[0] - (mean[1] + mean[2]) / 2.0) as f32, // redness
            (mean[2] - (mean[0] + mean[1]) / 2.0) as f32, // blueness
        ]
    }
}

/// Per-dimension standardization (zero mean, unit variance), fit on the training set
/// and applied at inference time.
///
/// The raw frame features have a large common-mode component (background, gradient,
/// sensor noise) and a per-object signal that is orders of magnitude smaller; without
/// standardization, SGD settles on the bias-only solution (the training day's count
/// prior) long before it amplifies the per-object signal. Standardizing each dimension
/// with training-set statistics is the moral equivalent of the batch normalization the
/// paper's tiny ResNet uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f32>,
    inv_stds: Vec<f32>,
}

impl Standardizer {
    /// Fits standardization statistics from training feature rows.
    pub fn fit(rows: &[Vec<f32>]) -> Standardizer {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let n = rows.len().max(1) as f64;
        let mut means = vec![0.0f64; dim];
        for row in rows {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += f64::from(v);
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0f64; dim];
        for row in rows {
            for ((v, &x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = f64::from(x) - m;
                *v += d * d;
            }
        }
        let inv_stds = vars
            .iter()
            .map(|v| {
                let std = (v / n).sqrt();
                if std < 1e-4 {
                    0.0 // constant feature: zero it out rather than amplify noise
                } else {
                    (1.0 / std) as f32
                }
            })
            .collect();
        Standardizer { means: means.into_iter().map(|m| m as f32).collect(), inv_stds }
    }

    /// Reassembles a standardizer from its statistics (the persistence path).
    pub fn from_parts(means: Vec<f32>, inv_stds: Vec<f32>) -> crate::Result<Standardizer> {
        if means.len() != inv_stds.len() {
            return Err(crate::NnError::ShapeMismatch {
                context: format!("{} means vs {} inverse stds", means.len(), inv_stds.len()),
            });
        }
        Ok(Standardizer { means, inv_stds })
    }

    /// The per-dimension means subtracted before scaling.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// The per-dimension inverse standard deviations (0 for constant features).
    pub fn inv_stds(&self) -> &[f32] {
        &self.inv_stds
    }

    /// The feature dimensionality this standardizer was fit on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one feature vector in place.
    pub fn transform_in_place(&self, features: &mut [f32]) {
        for ((x, m), inv) in features.iter_mut().zip(&self.means).zip(&self.inv_stds) {
            *x = (*x - m) * inv;
        }
    }

    /// Standardizes a copy of one feature vector.
    pub fn transform(&self, features: &[f32]) -> Vec<f32> {
        let mut out = features.to_vec();
        self.transform_in_place(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::{DatasetPreset, ObjectClass, DAY_TEST};

    #[test]
    fn standardizer_zero_means_and_unit_variance() {
        let rows = vec![
            vec![1.0f32, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
            vec![4.0, 400.0, 5.0],
        ];
        let st = Standardizer::fit(&rows);
        assert_eq!(st.dim(), 3);
        let transformed: Vec<Vec<f32>> = rows.iter().map(|r| st.transform(r)).collect();
        for d in 0..2 {
            let mean: f32 = transformed.iter().map(|r| r[d]).sum::<f32>() / 4.0;
            let var: f32 = transformed.iter().map(|r| r[d] * r[d]).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "dim {d} var {var}");
        }
        // The constant dimension is zeroed, not blown up.
        assert!(transformed.iter().all(|r| r[2] == 0.0));
    }

    #[test]
    fn feature_dimension_matches_config() {
        let f = FrameFeaturizer::new(FeatureConfig {
            grid_side: 8,
            include_stats: true,
            include_deviation: true,
        });
        assert_eq!(f.dim(), 8 * 8 * 3 + (8 * 8 + 2 * 8 + 3) + 8);
        let plain = FrameFeaturizer::new(FeatureConfig {
            grid_side: 8,
            include_stats: false,
            include_deviation: false,
        });
        assert_eq!(plain.dim(), 8 * 8 * 3);
    }

    #[test]
    fn features_have_declared_length_and_range() {
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 500).unwrap();
        let featurizer = FrameFeaturizer::default();
        let frame = video.frame(123).unwrap();
        let feats = featurizer.features(&frame).unwrap();
        assert_eq!(feats.len(), featurizer.dim());
        // Background-subtracted values are small; pooled sums are bounded by the grid size.
        assert!(feats.iter().all(|&x| x.is_finite() && x.abs() <= 20.0));
    }

    #[test]
    fn fast_path_features_match_full_frame_features() {
        // The sparse-render fast path must produce exactly the features the
        // decode-then-featurize path produces — it is what makes batched
        // scoring a pure performance change.
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 400).unwrap();
        let featurizer = FrameFeaturizer::default();
        for f in (0..400).step_by(29) {
            let slow = featurizer.features(&video.frame(f).unwrap()).unwrap();
            let fast = featurizer.features_for_video_frame(&video, f).unwrap();
            assert_eq!(slow, fast, "fast-path features diverge at frame {f}");
        }
    }

    #[test]
    fn features_are_deterministic() {
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 500).unwrap();
        let featurizer = FrameFeaturizer::default();
        let frame = video.frame(321).unwrap();
        assert_eq!(featurizer.features(&frame).unwrap(), featurizer.features(&frame).unwrap());
    }

    #[test]
    fn busy_frames_differ_from_empty_frames() {
        // Find an empty frame and a busy frame; their features must differ substantially.
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 4_000).unwrap();
        let featurizer = FrameFeaturizer::default();
        let mut empty = None;
        let mut busy = None;
        for f in 0..4_000 {
            let count = video.ground_truth_count(f, ObjectClass::Car).unwrap();
            if count == 0 && empty.is_none() {
                empty = Some(f);
            }
            if count >= 3 && busy.is_none() {
                busy = Some(f);
            }
            if empty.is_some() && busy.is_some() {
                break;
            }
        }
        let (e, b) = (empty.expect("empty frame"), busy.expect("busy frame"));
        let fe = featurizer.features(&video.frame(e).unwrap()).unwrap();
        let fb = featurizer.features(&video.frame(b).unwrap()).unwrap();
        let dist: f32 = fe.iter().zip(&fb).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 1.0, "feature distance between empty and busy frame was {dist}");
    }

    #[test]
    fn region_features_work() {
        let video = DatasetPreset::Taipei.generate_with_frames(DAY_TEST, 200).unwrap();
        let featurizer = FrameFeaturizer::default();
        let frame = video.frame(50).unwrap();
        let region = BoundingBox::new(0.0, 360.0, 1280.0, 720.0);
        let feats = featurizer.features_in(&frame, &region).unwrap();
        assert_eq!(feats.len(), featurizer.dim());
    }
}
