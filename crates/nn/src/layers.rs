//! Fully-connected layers and activations.

use crate::tensor::Matrix;
use crate::Result;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A fully-connected (dense) layer: `y = x W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `input_dim x output_dim`.
    pub weights: Matrix,
    /// Bias row vector, `1 x output_dim`.
    pub bias: Matrix,
    /// Whether a ReLU is applied after the affine transform.
    pub relu: bool,
    #[serde(skip)]
    cached_input: Option<Matrix>,
    #[serde(skip)]
    cached_pre_activation: Option<Matrix>,
}

/// Gradients of a dense layer's parameters for one batch.
#[derive(Debug, Clone)]
pub struct DenseGradients {
    /// Gradient with respect to the weights.
    pub d_weights: Matrix,
    /// Gradient with respect to the bias.
    pub d_bias: Matrix,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights.
    pub fn new(input_dim: usize, output_dim: usize, relu: bool, rng: &mut StdRng) -> Dense {
        Dense {
            weights: Matrix::xavier(input_dim, output_dim, rng),
            bias: Matrix::zeros(1, output_dim),
            relu,
            cached_input: None,
            cached_pre_activation: None,
        }
    }

    /// Reassembles a layer from its parameters (the persistence path). The shapes
    /// must agree: `bias` is a `1 x output_dim` row matching `weights`' columns.
    pub fn from_parts(weights: Matrix, bias: Matrix, relu: bool) -> Result<Dense> {
        if bias.rows() != 1 || bias.cols() != weights.cols() {
            return Err(crate::NnError::ShapeMismatch {
                context: format!(
                    "dense bias {}x{} does not match weights {}x{}",
                    bias.rows(),
                    bias.cols(),
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        Ok(Dense { weights, bias, relu, cached_input: None, cached_pre_activation: None })
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.cols()
    }

    /// Forward pass, caching activations for a subsequent [`Dense::backward`] call.
    pub fn forward(&mut self, input: &Matrix) -> Result<Matrix> {
        let pre = input.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        let out = if self.relu { pre.map(|x| x.max(0.0)) } else { pre.clone() };
        self.cached_input = Some(input.clone());
        self.cached_pre_activation = Some(pre);
        Ok(out)
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, input: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Forward pass writing into a caller-provided output matrix (inference only).
    ///
    /// The batched-inference kernel: `out`'s storage is reused across calls, so a
    /// steady-state forward pass performs no allocation and no per-layer clones.
    pub fn forward_into(&self, input: &Matrix, out: &mut Matrix) -> Result<()> {
        input.matmul_into(&self.weights, out)?;
        out.add_row_broadcast_in_place(&self.bias)?;
        if self.relu {
            out.relu_in_place();
        }
        Ok(())
    }

    /// Backward pass: takes the gradient of the loss with respect to this layer's
    /// output, returns `(gradient wrt input, parameter gradients)`.
    ///
    /// Must be called after [`Dense::forward`] on the same batch.
    pub fn backward(&mut self, d_output: &Matrix) -> Result<(Matrix, DenseGradients)> {
        let input = self.cached_input.take().ok_or_else(|| {
            crate::NnError::InvalidConfig("backward called before forward".into())
        })?;
        let pre = self.cached_pre_activation.take().ok_or_else(|| {
            crate::NnError::InvalidConfig("backward called before forward".into())
        })?;
        // Gradient through the ReLU.
        let d_pre = if self.relu {
            let mask = pre.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
            d_output.hadamard(&mask)?
        } else {
            d_output.clone()
        };
        let d_weights = input.transpose().matmul(&d_pre)?;
        let d_bias = d_pre.sum_rows();
        let d_input = d_pre.matmul(&self.weights.transpose())?;
        Ok((d_input, DenseGradients { d_weights, d_bias }))
    }
}

/// Softmax over consecutive segments of one logits row, written into `out`.
///
/// `heads` gives the width of each segment (the grouped-softmax head layout);
/// `logits` and `out` must both be exactly `heads.iter().sum()` long. Each
/// segment is normalized with the same numerically stable max-shift sequence as
/// [`softmax_rows`], so batched scoring produces bit-identical probabilities to
/// the row-at-a-time path.
pub fn softmax_segments_into(logits: &[f32], heads: &[usize], out: &mut [f32]) {
    let mut offset = 0usize;
    for &size in heads {
        // blazeit-lint: allow(panic-site::index) -- documented contract: logits and out are exactly
        // heads.iter().sum() long, and offset + size never exceeds that sum
        let seg = &logits[offset..offset + size];
        // blazeit-lint: allow(panic-site::index) -- documented contract: logits and out are exactly
        // heads.iter().sum() long, and offset + size never exceeds that sum
        let dst = &mut out[offset..offset + size];
        let seg_max = seg.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (d, &x) in dst.iter_mut().zip(seg) {
            let e = (x - seg_max).exp();
            *d = e;
            sum += e;
        }
        if sum > 0.0 {
            for d in dst.iter_mut() {
                *d /= sum;
            }
        }
        offset += size;
    }
}

/// Numerically stable softmax over each row of `logits`.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = logits.cols();
    for r in 0..logits.rows() {
        let row_max = logits.row(r).iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for c in 0..cols {
            let e = (logits.get(r, c) - row_max).exp();
            out.set(r, c, e);
            sum += e;
        }
        if sum > 0.0 {
            for c in 0..cols {
                out.set(r, c, out.get(r, c) / sum);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(4, 3, true, &mut rng);
        let x = Matrix::zeros(5, 4);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 3);
        assert_eq!(layer.num_params(), 4 * 3 + 3);
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(2, 2, true, &mut rng);
        layer.weights = Matrix::from_vec(2, 2, vec![-1.0, 1.0, -1.0, 1.0]).unwrap();
        let x = Matrix::row_from_slice(&[1.0, 1.0]);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.get(0, 0), 0.0);
        assert_eq!(y.get(0, 1), 2.0);
    }

    #[test]
    fn backward_before_forward_is_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(2, 2, false, &mut rng);
        assert!(layer.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(6, 4, true, &mut rng);
        let x = Matrix::xavier(3, 6, &mut rng);
        let a = layer.forward(&x).unwrap();
        let b = layer.forward_inference(&x).unwrap();
        assert_eq!(a, b);
    }

    /// Numerical gradient check on a tiny layer: the analytic weight gradient from
    /// `backward` must match finite differences of a scalar loss.
    #[test]
    fn gradient_check_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Dense::new(3, 2, true, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.8, 1.0, 0.3, -0.7]).unwrap();

        // Loss = sum of outputs (so dL/dy = all ones).
        let loss_of = |layer: &Dense, x: &Matrix| -> f32 {
            layer.forward_inference(x).unwrap().data().iter().sum()
        };

        let y = layer.forward(&x).unwrap();
        let d_out = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]).unwrap();
        let (_, grads) = layer.backward(&d_out).unwrap();

        let eps = 1e-3f32;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.weights.get(r, c);
                layer.weights.set(r, c, orig + eps);
                let up = loss_of(&layer, &x);
                layer.weights.set(r, c, orig - eps);
                let down = loss_of(&layer, &x);
                layer.weights.set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads.d_weights.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "grad mismatch at ({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]).unwrap();
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.get(0, 2) > p.get(0, 1));
        assert!(p.get(1, 2) > 0.99);
    }
}
