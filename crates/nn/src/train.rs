//! Mini-batch training loop.
//!
//! The paper trains specialized NNs with SGD + momentum, batch size 16, for one epoch
//! over ~150,000 frames (Section 6.2 / 9). The [`Trainer`] reproduces that procedure
//! (epochs and batch size are configurable) and reports what it did so the engine can
//! charge the simulated training cost.

use crate::network::Network;
use crate::optimizer::SgdConfig;
use crate::tensor::Matrix;
use crate::{NnError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data (1 in the paper).
    pub epochs: usize,
    /// Mini-batch size (16 in the paper).
    pub batch_size: usize,
    /// Optimizer settings.
    pub sgd: SgdConfig,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 1, batch_size: 16, sgd: SgdConfig::default(), seed: 0 }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOutcome {
    /// Number of examples in the training set.
    pub num_examples: usize,
    /// Total number of example-visits (examples x epochs), which drives the simulated
    /// training cost.
    pub examples_processed: usize,
    /// Mean loss of the final epoch.
    pub final_loss: f32,
    /// Mean loss of the first epoch (for convergence checks).
    pub first_epoch_loss: f32,
}

/// Drives mini-batch training of a [`Network`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> TrainConfig {
        self.config
    }

    /// Trains `network` on `(features, labels)` rows.
    pub fn fit(
        &self,
        network: &mut Network,
        features: &[Vec<f32>],
        labels: &[Vec<usize>],
    ) -> Result<TrainOutcome> {
        if features.is_empty() {
            return Err(NnError::InvalidTrainingData("empty training set".into()));
        }
        if features.len() != labels.len() {
            return Err(NnError::InvalidTrainingData(format!(
                "{} feature rows vs {} label rows",
                features.len(),
                labels.len()
            )));
        }
        if self.config.batch_size == 0 || self.config.epochs == 0 {
            return Err(NnError::InvalidConfig("batch_size and epochs must be positive".into()));
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut first_epoch_loss = 0.0f32;
        let mut final_loss = 0.0f32;

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch_rows: Vec<Vec<f32>> =
                    // blazeit-lint: allow(panic-site::index) -- order is a permutation of
                    // 0..features.len(), and labels has the same length (validated by fit)
                    chunk.iter().map(|&i| features[i].clone()).collect();
                let batch_labels: Vec<Vec<usize>> =
                    // blazeit-lint: allow(panic-site::index) -- order is a permutation of
                    // 0..features.len(), and labels has the same length (validated by fit)
                    chunk.iter().map(|&i| labels[i].clone()).collect();
                let x = Matrix::from_rows(&batch_rows)?;
                let loss = network.train_batch(&x, &batch_labels, self.config.sgd)?;
                epoch_loss += f64::from(loss);
                batches += 1;
            }
            let mean = (epoch_loss / batches.max(1) as f64) as f32;
            if epoch == 0 {
                first_epoch_loss = mean;
            }
            final_loss = mean;
        }

        Ok(TrainOutcome {
            num_examples: features.len(),
            examples_processed: features.len() * self.config.epochs,
            final_loss,
            first_epoch_loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use rand::Rng;

    fn make_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<Vec<usize>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let label: usize = rng.gen_range(0..3);
            let base = label as f32;
            xs.push(vec![base + rng.gen_range(-0.2..0.2), -base + rng.gen_range(-0.2..0.2)]);
            ys.push(vec![label]);
        }
        (xs, ys)
    }

    fn network() -> Network {
        Network::new(NetworkConfig { input_dim: 2, hidden: vec![16], heads: vec![3], seed: 2 })
            .unwrap()
    }

    #[test]
    fn fit_learns_three_way_classification() {
        let (xs, ys) = make_data(600, 5);
        let mut net = network();
        let trainer = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::default() });
        let outcome = trainer.fit(&mut net, &xs, &ys).unwrap();
        assert_eq!(outcome.num_examples, 600);
        assert_eq!(outcome.examples_processed, 3000);
        assert!(outcome.final_loss < outcome.first_epoch_loss);
        let x = Matrix::from_rows(&xs).unwrap();
        assert!(net.accuracy(&x, &ys).unwrap() > 0.9);
    }

    #[test]
    fn fit_rejects_invalid_inputs() {
        let mut net = network();
        let trainer = Trainer::new(TrainConfig::default());
        assert!(trainer.fit(&mut net, &[], &[]).is_err());
        assert!(trainer.fit(&mut net, &[vec![0.0, 0.0]], &[vec![0], vec![1]]).is_err());
        let bad_cfg = Trainer::new(TrainConfig { batch_size: 0, ..TrainConfig::default() });
        assert!(bad_cfg.fit(&mut net, &[vec![0.0, 0.0]], &[vec![0]]).is_err());
    }

    #[test]
    fn single_epoch_matches_paper_defaults() {
        let cfg = TrainConfig::default();
        assert_eq!(cfg.epochs, 1);
        assert_eq!(cfg.batch_size, 16);
        assert!((cfg.sgd.momentum - 0.9).abs() < 1e-6);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (xs, ys) = make_data(100, 8);
        let trainer = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() });
        let mut a = network();
        let mut b = network();
        trainer.fit(&mut a, &xs, &ys).unwrap();
        trainer.fit(&mut b, &xs, &ys).unwrap();
        let x = Matrix::from_rows(&xs).unwrap();
        assert_eq!(a.logits(&x).unwrap(), b.logits(&x).unwrap());
    }
}
