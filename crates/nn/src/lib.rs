//! # blazeit-nn
//!
//! A from-scratch neural-network library plus BlazeIt's *specialized networks*.
//!
//! The paper's specialized NNs are "tiny ResNets" trained in PyTorch to mimic the
//! expensive object detector on a reduced task (counting the objects of a class in a
//! frame, or multi-class counting). PyTorch and GPUs are not available here, so this
//! crate implements the minimum viable deep-learning stack needed to *actually train*
//! such models on the synthetic frames:
//!
//! * [`tensor`] — a small dense matrix type with the operations the MLP needs.
//! * [`layers`] — fully-connected layers with ReLU activations.
//! * [`network`] — a sequential network with forward / backward passes and support for
//!   *grouped softmax heads* (one softmax per queried object class, the "single NN that
//!   detects each object class separately" of Section 7.1).
//! * [`loss`] — softmax cross-entropy (per head) and mean-squared error.
//! * [`optimizer`] — SGD with momentum (the paper trains with momentum 0.9).
//! * [`train`] — a mini-batch training loop.
//! * [`features`] — frame featurization (downsampled pixels + channel statistics),
//!   standing in for the 65x65 CNN input.
//! * [`score`] — the flat [`ScoreMatrix`] holding per-frame,
//!   per-head probabilities: the output of batched scoring and the reusable
//!   per-video score index.
//! * [`parallel`] — the persistent worker pool: chunk parallelism for batched
//!   featurization and scoped task fan-out for cross-video query execution
//!   (rayon is unavailable in this build environment).
//! * [`persist`] — the versioned, checksummed binary format for durable index
//!   artifacts: score matrices and trained specialized networks, decoded
//!   bit-identically and rejected (typed errors, no panics) when corrupt.
//! * [`specialized`] — the [`SpecializedNN`] abstraction:
//!   count / multi-class / binary heads, batched scoring
//!   ([`score_batch`](specialized::SpecializedNN::score_batch) /
//!   [`score_video`](specialized::SpecializedNN::score_video)), bootstrap error
//!   estimation on a held-out day, and no-false-negative threshold calibration, with
//!   simulated-time accounting.
//!
//! The point of training real (small) models instead of hard-coding a correlated
//! signal: control variates (Section 6.3) and importance sampling (Section 7) rely on
//! the specialized model being *imperfectly* correlated with the detector. Learned
//! models on rendered frames produce that imperfection organically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod features;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod parallel;
pub mod persist;
pub mod score;
pub mod specialized;
pub mod tensor;
pub mod train;

pub use features::{FeatureConfig, FrameFeaturizer};
pub use network::{ForwardScratch, Network, NetworkConfig};
pub use persist::PersistError;
pub use score::ScoreMatrix;
pub use specialized::{SpecializedConfig, SpecializedHead, SpecializedNN, TrainingReport};
pub use tensor::Matrix;
pub use train::{TrainConfig, Trainer};

/// Errors produced by the NN substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Matrix dimensions do not match for the requested operation.
    ShapeMismatch {
        /// Description of the mismatch.
        context: String,
    },
    /// The training set is empty or labels are inconsistent with the configuration.
    InvalidTrainingData(String),
    /// A configuration value is invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            NnError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;
