//! Flat per-frame score storage for batched specialized-NN inference.
//!
//! [`ScoreMatrix`] replaces the nested `Vec<Vec<Vec<f32>>>` the per-frame
//! scoring path used to produce: one contiguous `Vec<f32>` holding, for every
//! scored frame, the concatenated per-head probability distributions (the same
//! grouped-softmax layout the network's output layer uses). A whole-video score
//! matrix is the paper's reusable *index* over the unseen video: build it once
//! with [`SpecializedNN::score_video`](crate::specialized::SpecializedNN::score_video),
//! then answer aggregation, scrubbing, and selection-filter lookups from it
//! without touching the network again.
//!
//! The probability layout is row-major: row `f` occupies
//! `probs[f * stride .. (f + 1) * stride]`, where `stride` is the sum of the
//! head sizes, and head `h` occupies the sub-slice starting at the head's
//! offset. All derived quantities (expected counts, tail probabilities) use the
//! same `f32 → f64` accumulation order as the old per-frame helpers, so results
//! are bit-identical.

// blazeit-lint: allow-file(panic-site::index) -- row/head stride arithmetic over storage the
// ScoreMatrix sized itself at construction
/// Per-frame, per-head probability distributions in one flat buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreMatrix {
    frames: usize,
    heads: Vec<usize>,
    offsets: Vec<usize>,
    stride: usize,
    probs: Vec<f32>,
}

impl ScoreMatrix {
    /// Creates a zero-filled score matrix for `frames` frames and the given
    /// head sizes.
    pub fn zeros(frames: usize, heads: Vec<usize>) -> ScoreMatrix {
        let mut offsets = Vec::with_capacity(heads.len());
        let mut stride = 0usize;
        for &size in &heads {
            offsets.push(stride);
            stride += size;
        }
        ScoreMatrix { frames, heads, offsets, stride, probs: vec![0.0; frames * stride] }
    }

    /// Reassembles a score matrix from its frame count, head sizes, and flat
    /// probability buffer (the persistence path); `probs` must hold exactly
    /// `frames * stride` values.
    pub fn from_raw(
        frames: usize,
        heads: Vec<usize>,
        probs: Vec<f32>,
    ) -> crate::Result<ScoreMatrix> {
        // Validate (with overflow-safe arithmetic) BEFORE building the matrix:
        // this is the persistence decode path, where a corrupt artifact could
        // otherwise declare dimensions whose zero-fill allocates terabytes.
        let mut offsets = Vec::with_capacity(heads.len());
        let mut stride = 0usize;
        for &size in &heads {
            offsets.push(stride);
            stride = stride.checked_add(size).ok_or_else(|| crate::NnError::ShapeMismatch {
                context: "head sizes overflow the row stride".into(),
            })?;
        }
        if frames.checked_mul(stride) != Some(probs.len()) {
            return Err(crate::NnError::ShapeMismatch {
                context: format!(
                    "score buffer of {} values for {frames} frames x stride {stride}",
                    probs.len(),
                ),
            });
        }
        Ok(ScoreMatrix { frames, heads, offsets, stride, probs })
    }

    /// This matrix with `tail`'s rows appended — the incremental-index
    /// primitive: scoring frames `[0, n)` and then appending scores for
    /// `[n, m)` yields a matrix **bit-identical** to scoring `[0, m)` in one
    /// pass, because every row is a pure per-frame function (batched inference
    /// is batch-composition invariant).
    ///
    /// Fails unless `tail` has exactly the same head sizes.
    pub fn extended(&self, tail: &ScoreMatrix) -> crate::Result<ScoreMatrix> {
        if self.heads != tail.heads {
            return Err(crate::NnError::ShapeMismatch {
                context: format!(
                    "appending rows with head sizes {:?} to a matrix with {:?}",
                    tail.heads, self.heads
                ),
            });
        }
        let mut probs = Vec::with_capacity(self.probs.len() + tail.probs.len());
        probs.extend_from_slice(&self.probs);
        probs.extend_from_slice(&tail.probs);
        Ok(ScoreMatrix {
            frames: self.frames + tail.frames,
            heads: self.heads.clone(),
            offsets: self.offsets.clone(),
            stride: self.stride,
            probs,
        })
    }

    /// Number of scored frames.
    pub fn num_frames(&self) -> usize {
        self.frames
    }

    /// Number of output heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// The size (number of count classes) of each head.
    pub fn head_sizes(&self) -> &[usize] {
        &self.heads
    }

    /// Width of one frame's row (sum of head sizes).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The full flat probability buffer (row-major by frame).
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// One frame's concatenated per-head probabilities.
    pub fn row(&self, frame: usize) -> &[f32] {
        &self.probs[frame * self.stride..(frame + 1) * self.stride]
    }

    /// Mutable access to one frame's row (used while filling the matrix).
    pub fn row_mut(&mut self, frame: usize) -> &mut [f32] {
        &mut self.probs[frame * self.stride..(frame + 1) * self.stride]
    }

    /// The probability distribution of head `head` for `frame`.
    pub fn head(&self, frame: usize, head: usize) -> &[f32] {
        let start = frame * self.stride + self.offsets[head];
        &self.probs[start..start + self.heads[head]]
    }

    /// One frame's scores in the legacy nested layout (`[head][class]`).
    pub fn frame_probs(&self, frame: usize) -> Vec<Vec<f32>> {
        (0..self.heads.len()).map(|h| self.head(frame, h).to_vec()).collect()
    }

    /// Expected count (`Σ k·p_k`) of head `head` for `frame`.
    pub fn expected_count(&self, frame: usize, head: usize) -> f64 {
        expectation(self.head(frame, head))
    }

    /// Probability that `frame` contains at least `n` objects of head `head`.
    pub fn tail_probability(&self, frame: usize, head: usize, n: usize) -> f64 {
        tail_probability(self.head(frame, head), n)
    }

    /// The most likely count of head `head` for `frame` (NaN-safe argmax).
    pub fn argmax_count(&self, frame: usize, head: usize) -> usize {
        argmax(self.head(frame, head))
    }

    /// The scrubbing confidence signal for a conjunction of requirements given
    /// as `(head index, minimum count)` pairs: the sum of per-requirement tail
    /// probabilities (Section 7 of the paper).
    pub fn requirement_confidence(&self, frame: usize, requirements: &[(usize, usize)]) -> f64 {
        requirements.iter().map(|&(head, n)| self.tail_probability(frame, head, n)).sum()
    }
}

/// `Σ k·p_k` over one head's distribution.
pub(crate) fn expectation(probs: &[f32]) -> f64 {
    probs.iter().enumerate().map(|(k, &p)| k as f64 * f64::from(p)).sum()
}

/// `Σ_{k≥n} p_k`, clamped to `[0, 1]`.
pub(crate) fn tail_probability(probs: &[f32], n: usize) -> f64 {
    probs.iter().skip(n).map(|&p| f64::from(p)).sum::<f64>().clamp(0.0, 1.0)
}

/// NaN-safe argmax over one head's distribution (`f32::total_cmp`).
pub(crate) fn argmax(probs: &[f32]) -> usize {
    probs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> ScoreMatrix {
        // 2 frames, heads of size 3 and 2.
        let mut m = ScoreMatrix::zeros(2, vec![3, 2]);
        m.row_mut(0).copy_from_slice(&[0.5, 0.3, 0.2, 0.9, 0.1]);
        m.row_mut(1).copy_from_slice(&[0.1, 0.2, 0.7, 0.4, 0.6]);
        m
    }

    #[test]
    fn layout_and_accessors() {
        let m = filled();
        assert_eq!(m.num_frames(), 2);
        assert_eq!(m.num_heads(), 2);
        assert_eq!(m.stride(), 5);
        assert_eq!(m.head(0, 0), &[0.5, 0.3, 0.2]);
        assert_eq!(m.head(1, 1), &[0.4, 0.6]);
        assert_eq!(m.frame_probs(1), vec![vec![0.1, 0.2, 0.7], vec![0.4, 0.6]]);
    }

    #[test]
    fn derived_quantities() {
        let m = filled();
        assert!((m.expected_count(0, 0) - (0.3 + 2.0 * 0.2)).abs() < 1e-6);
        assert!((m.tail_probability(0, 0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(m.argmax_count(1, 0), 2);
        assert_eq!(m.argmax_count(0, 1), 0);
        let conf = m.requirement_confidence(1, &[(0, 2), (1, 1)]);
        assert!((conf - (0.7 + 0.6)).abs() < 1e-6);
    }

    #[test]
    fn extended_concatenates_rows_bit_for_bit() {
        let m = filled();
        let mut tail = ScoreMatrix::zeros(1, vec![3, 2]);
        tail.row_mut(0).copy_from_slice(&[0.25, 0.5, 0.25, 0.1, 0.9]);
        let grown = m.extended(&tail).unwrap();
        assert_eq!(grown.num_frames(), 3);
        assert_eq!(grown.row(0), m.row(0));
        assert_eq!(grown.row(1), m.row(1));
        assert_eq!(grown.row(2), tail.row(0));
        // Mismatched head sizes are rejected.
        let bad = ScoreMatrix::zeros(1, vec![2, 2]);
        assert!(m.extended(&bad).is_err());
        // Appending an empty tail is the identity.
        let same = m.extended(&ScoreMatrix::zeros(0, vec![3, 2])).unwrap();
        assert_eq!(same, m);
    }

    #[test]
    fn argmax_is_nan_safe() {
        assert_eq!(argmax(&[0.1, f32::NAN, 0.2]), 1); // NaN sorts above all finites
        assert_eq!(argmax(&[0.1, 0.9, 0.2]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn tail_clamps_and_expectation_sums() {
        assert_eq!(tail_probability(&[0.6, 0.7], 0), 1.0);
        assert_eq!(tail_probability(&[0.5, 0.25], 2), 0.0);
        assert!((expectation(&[0.0, 1.0]) - 1.0).abs() < 1e-9);
    }
}
