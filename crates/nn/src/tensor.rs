//! A minimal dense matrix type.
//!
//! Row-major `f32` storage, sized for the small MLPs this project trains (hundreds of
//! inputs, tens of hidden units). The implementation favors clarity and testability
//! over peak throughput; the simulated cost model, not wall-clock matmul speed, drives
//! the experiments.

// blazeit-lint: allow-file(panic-site::index) -- dense matrix kernels: every index is derived from
// the tensor's own dims, and shape mismatches return ShapeMismatch before any loop runs

use crate::{NnError, Result};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Resets to a zero-filled `rows x cols` matrix, reusing the allocation.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Creates a matrix from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "from_vec: {}x{} needs {} values, got {}",
                    rows,
                    cols,
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_from_slice(values: &[f32]) -> Matrix {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates a matrix with Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * other`, written into `out` (resized as needed).
    ///
    /// This is the allocation-free kernel behind batched inference: callers hold
    /// a scratch matrix and reuse its backing storage across batches. Output
    /// columns are processed in fixed-width tiles whose accumulators live in a
    /// stack array the compiler keeps in vector registers across the whole
    /// reduction — no per-element branching (the old zero-skip test is gone)
    /// and no store traffic inside the inner loop. Each output element is still
    /// the sum over `k` in ascending order, so results are element-wise
    /// identical to the naive triple loop.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        const TILE: usize = 16;
        let n = other.cols;
        out.rows = self.rows;
        out.cols = n;
        out.data.clear();
        out.data.resize(self.rows * n, 0.0);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j0 = 0usize;
            while j0 < n {
                let width = TILE.min(n - j0);
                let mut acc = [0.0f32; TILE];
                if width == TILE {
                    for (k, &a) in a_row.iter().enumerate() {
                        let b_tile = &other.data[k * n + j0..k * n + j0 + TILE];
                        for t in 0..TILE {
                            acc[t] += a * b_tile[t];
                        }
                    }
                } else {
                    for (k, &a) in a_row.iter().enumerate() {
                        let b_tile = &other.data[k * n + j0..k * n + j0 + width];
                        for (t, &b) in b_tile.iter().enumerate() {
                            acc[t] += a * b;
                        }
                    }
                }
                out_row[j0..j0 + width].copy_from_slice(&acc[..width]);
                j0 += TILE;
            }
        }
        Ok(())
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "elementwise: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Adds a row vector (1 x cols) to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Result<Matrix> {
        let mut out = self.clone();
        out.add_row_broadcast_in_place(row)?;
        Ok(out)
    }

    /// Adds a row vector (1 x cols) to every row, in place.
    pub fn add_row_broadcast_in_place(&mut self, row: &Matrix) -> Result<()> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "broadcast: matrix {}x{} with row {}x{}",
                    self.rows, self.cols, row.rows, row.cols
                ),
            });
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.data[r * self.cols + c] += row.data[c];
            }
        }
        Ok(())
    }

    /// Applies `max(x, 0)` element-wise, in place.
    pub fn relu_in_place(&mut self) {
        for x in &mut self.data {
            *x = x.max(0.0);
        }
    }

    /// Sums each column, producing a `1 x cols` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Applies `f` element-wise, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Builds a matrix by stacking equal-length rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Matrix> {
        if rows.is_empty() {
            return Err(NnError::InvalidTrainingData("no rows".into()));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(NnError::ShapeMismatch { context: "from_rows: ragged rows".into() });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let bias = Matrix::row_from_slice(&[10.0, 20.0]);
        let out = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn map_scale_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert_eq!(a.scale(2.0).data(), &[6.0, 8.0]);
        assert_eq!(a.map(|x| x - 3.0).data(), &[0.0, 1.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn xavier_init_bounded_and_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(10, 20, &mut rng1);
        let b = Matrix::xavier(10, 20, &mut rng2);
        assert_eq!(a, b);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(a.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn from_rows_validates() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.rows(), 2);
        assert!(Matrix::from_rows(&[vec![1.0], vec![2.0, 3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }
}
