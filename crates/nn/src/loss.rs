//! Loss functions: grouped softmax cross-entropy and mean-squared error.
//!
//! BlazeIt's specialized networks are classifiers: a counting network has one softmax
//! over `0..=K` counts, and the multi-class scrubbing network has one softmax *per
//! queried class* ("the specialized NN would return a separate confidence for 'car' and
//! 'bus'", Section 7.1). The grouped cross-entropy below treats the network's output
//! vector as a concatenation of independent softmax heads.

use crate::layers::softmax_rows;
use crate::tensor::Matrix;
use crate::{NnError, Result};

/// Description of the output heads: each entry is the number of classes of one head.
///
/// A plain count network has `vec![k + 1]`; a bus+car scrubbing network has
/// `vec![k_bus + 1, k_car + 1]`.
pub type HeadLayout = Vec<usize>;

/// Computes the grouped softmax cross-entropy loss and its gradient with respect to the
/// logits.
///
/// * `logits` — `batch x sum(heads)` raw network outputs.
/// * `labels` — `batch x num_heads` integer class labels per head.
///
/// Returns `(mean loss, d_logits)` where the gradient is already averaged over the
/// batch.
pub fn grouped_cross_entropy(
    logits: &Matrix,
    labels: &[Vec<usize>],
    heads: &HeadLayout,
) -> Result<(f32, Matrix)> {
    let total: usize = heads.iter().sum();
    if logits.cols() != total {
        return Err(NnError::ShapeMismatch {
            context: format!("logits have {} cols but heads sum to {}", logits.cols(), total),
        });
    }
    if labels.len() != logits.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!("{} label rows for {} logit rows", labels.len(), logits.rows()),
        });
    }
    let batch = logits.rows().max(1);
    let mut d_logits = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0f64;

    for (r, label_row) in labels.iter().enumerate() {
        if label_row.len() != heads.len() {
            return Err(NnError::InvalidTrainingData(format!(
                "label row {r} has {} entries for {} heads",
                label_row.len(),
                heads.len()
            )));
        }
        let mut offset = 0usize;
        for (h, &head_size) in heads.iter().enumerate() {
            // blazeit-lint: allow(panic-site::index) -- h enumerates heads, and label_row.len() ==
            // heads.len() was validated above
            let label = label_row[h];
            if label >= head_size {
                return Err(NnError::InvalidTrainingData(format!(
                    "label {label} out of range for head {h} of size {head_size}"
                )));
            }
            // Softmax over this head's slice of the row.
            let slice: Vec<f32> = (0..head_size).map(|c| logits.get(r, offset + c)).collect();
            let head_logits = Matrix::row_from_slice(&slice);
            let probs = softmax_rows(&head_logits);
            let p_label = probs.get(0, label).max(1e-12);
            loss -= f64::from(p_label.ln());
            for c in 0..head_size {
                let indicator = if c == label { 1.0 } else { 0.0 };
                d_logits.set(r, offset + c, (probs.get(0, c) - indicator) / batch as f32);
            }
            offset += head_size;
        }
    }

    Ok(((loss / (batch as f64 * heads.len().max(1) as f64)) as f32, d_logits))
}

/// Mean-squared error and its gradient with respect to the predictions.
pub fn mse(predictions: &Matrix, targets: &Matrix) -> Result<(f32, Matrix)> {
    let diff = predictions.sub(targets)?;
    let n = (predictions.rows() * predictions.cols()).max(1) as f32;
    let loss = diff.data().iter().map(|&x| x * x).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_has_low_loss() {
        // Logits strongly favoring the correct class.
        let logits = Matrix::from_vec(2, 3, vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0]).unwrap();
        let labels = vec![vec![0], vec![1]];
        let (loss, grad) = grouped_cross_entropy(&logits, &labels, &vec![3]).unwrap();
        assert!(loss < 1e-3);
        assert!(grad.norm() < 1e-3);
    }

    #[test]
    fn cross_entropy_wrong_prediction_has_high_loss() {
        let logits = Matrix::from_vec(1, 2, vec![10.0, -10.0]).unwrap();
        let labels = vec![vec![1]];
        let (loss, grad) = grouped_cross_entropy(&logits, &labels, &vec![2]).unwrap();
        assert!(loss > 5.0);
        // Gradient pushes logit 0 down and logit 1 up.
        assert!(grad.get(0, 0) > 0.0);
        assert!(grad.get(0, 1) < 0.0);
    }

    #[test]
    fn grouped_heads_are_independent() {
        // Two heads of size 2; first head correct, second head wrong.
        let logits = Matrix::from_vec(1, 4, vec![10.0, -10.0, 10.0, -10.0]).unwrap();
        let labels = vec![vec![0, 1]];
        let (loss, grad) = grouped_cross_entropy(&logits, &labels, &vec![2, 2]).unwrap();
        assert!(loss > 2.0);
        // First head's gradient is near zero, second head's is not.
        assert!(grad.get(0, 0).abs() < 1e-3);
        assert!(grad.get(0, 2) > 0.1);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.5]).unwrap();
        let labels = vec![vec![2]];
        let heads = vec![3usize];
        let (_, grad) = grouped_cross_entropy(&logits, &labels, &heads).unwrap();
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut up = logits.clone();
            up.set(0, c, logits.get(0, c) + eps);
            let mut down = logits.clone();
            down.set(0, c, logits.get(0, c) - eps);
            let (lu, _) = grouped_cross_entropy(&up, &labels, &heads).unwrap();
            let (ld, _) = grouped_cross_entropy(&down, &labels, &heads).unwrap();
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - grad.get(0, c)).abs() < 1e-2,
                "col {c}: numeric {numeric} vs analytic {}",
                grad.get(0, c)
            );
        }
    }

    #[test]
    fn invalid_labels_rejected() {
        let logits = Matrix::zeros(1, 3);
        assert!(grouped_cross_entropy(&logits, &[vec![5]], &vec![3]).is_err());
        assert!(grouped_cross_entropy(&logits, &[vec![0, 0]], &vec![3]).is_err());
        assert!(grouped_cross_entropy(&logits, &[vec![0]], &vec![2]).is_err());
    }

    #[test]
    fn mse_basics() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]).unwrap();
        let (loss, grad) = mse(&pred, &target).unwrap();
        assert!((loss - 0.5).abs() < 1e-6);
        assert!(grad.get(0, 0) > 0.0);
        assert_eq!(grad.get(0, 1), 0.0);
    }
}
