//! Model-aware synchronization primitives.
//!
//! These types mirror the API of `blazeit_videostore::sync` exactly; under the
//! workspace `model` feature the shim re-exports them, so every lock, atomic
//! access, and condvar wait in the engine becomes a scheduling point of the
//! explorer in [`crate::Builder`].
//!
//! Every operation consults the thread-local exploration context first:
//!
//! * **On a model thread** (spawned via [`crate::thread`] inside
//!   `Builder::check`) the operation is routed through the controlled
//!   scheduler — it waits for its turn, is recorded in the schedule trace with
//!   the caller's `file:line` (hence `#[track_caller]` everywhere), and hands
//!   the next scheduling decision to the explorer.
//! * **Outside an exploration** the operation falls through to the underlying
//!   `std::sync` primitive (ignoring poison, like the vendored `parking_lot`),
//!   so code compiled with the `model` feature still runs normally in ordinary
//!   unit tests.
//!
//! Data always lives in the real `std` primitive; the scheduler only arbitrates
//! *when* each thread may touch it. Once the scheduler has granted ownership
//! the inner `std` lock is uncontended by construction, so there is no unsafe
//! code here at all.
//!
//! Model caveats, by design:
//!
//! * `Condvar::wait_timeout` never times out under the model — a protocol that
//!   needs the timeout to make progress is reported as a deadlock, which is
//!   exactly what a lost wakeup is.
//! * Atomics are explored under sequential consistency only (every access is a
//!   serialized scheduling point); weaker-ordering reorderings are out of
//!   scope, which the shim documents at each call site.

use crate::sched;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock as StdOnceLock,
    PoisonError, RwLock as StdRwLock, RwLockReadGuard as StdReadGuard,
    RwLockWriteGuard as StdWriteGuard, TryLockError,
};
use std::time::Duration;

pub use std::sync::atomic::Ordering;

/// Stable address of a sync object for the duration of one exploration run
/// (objects are recreated fresh on every run, so addresses never alias across
/// runs).
fn addr_of<T: ?Sized>(obj: &T) -> usize {
    (obj as *const T).cast::<()>() as usize
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock that becomes a scheduling point under exploration.
///
/// [`Mutex::ranked`] additionally enrolls the lock in the
/// `monitor → live_index → nn_cache → video` hierarchy: the scheduler fails
/// the run (with the violating interleaving) if it is ever acquired while a
/// lock of equal or higher rank is held.
pub struct Mutex<T: ?Sized> {
    rank: Option<(u8, &'static str)>,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unranked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { rank: None, inner: StdMutex::new(value) }
    }

    /// Creates a mutex enrolled in the ranked lock hierarchy under `name`.
    pub const fn ranked(rank: u8, name: &'static str, value: T) -> Mutex<T> {
        Mutex { rank: Some((rank, name)), inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking (a scheduling point under exploration).
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let loc = Location::caller();
        let model = sched::current();
        if let Some((s, me)) = &model {
            s.mutex_lock(addr_of(self), self.rank, *me, loc);
        }
        let std = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { lock: self, std: Some(std), model, loc }
    }

    /// Attempts the lock without blocking; both outcomes are visible
    /// operations under exploration (a failed `try_lock` observes state).
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let loc = Location::caller();
        let model = sched::current();
        if let Some((s, me)) = &model {
            if !s.mutex_try_lock(addr_of(self), self.rank, *me, loc) {
                return None;
            }
            let std = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            return Some(MutexGuard { lock: self, std: Some(std), model, loc });
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { lock: self, std: Some(g), model: None, loc }),
            Err(TryLockError::Poisoned(p)) => {
                Some(MutexGuard { lock: self, std: Some(p.into_inner()), model: None, loc })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Mutex");
        if let Some((rank, name)) = self.rank {
            d.field("rank", &rank).field("name", &name);
        }
        d.finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releasing it is itself a visible operation under
/// exploration (traced at the guard's acquisition site).
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    std: Option<StdMutexGuard<'a, T>>,
    model: Option<(std::sync::Arc<sched::Scheduler>, usize)>,
    loc: &'static Location<'static>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Order matters: give up the data lock before the scheduler hands
        // ownership to another thread.
        drop(self.std.take());
        if let Some((s, me)) = self.model.take() {
            s.mutex_unlock(addr_of(self.lock), self.lock.rank, me, self.loc);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable paired with [`Mutex`] guards.
///
/// Under exploration, `wait` atomically releases the mutex and parks until a
/// notify (no spurious wakeups, no timeouts), and `notify_one` with several
/// parked waiters is itself an explored choice point.
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a condvar.
    pub const fn new() -> Condvar {
        Condvar { inner: StdCondvar::new() }
    }

    /// Releases `guard`'s mutex, parks until notified, then reacquires.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let loc = Location::caller();
        match guard.model.take() {
            Some((s, me)) => {
                let lock = guard.lock;
                guard.std = None;
                drop(guard); // both fields cleared: the drop is a no-op
                s.condvar_wait(addr_of(self), addr_of(lock), lock.rank, me, loc);
                let std = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                MutexGuard { lock, std: Some(std), model: Some((s, me)), loc }
            }
            None => {
                let lock = guard.lock;
                let std = guard.std.take().expect("guard accessed after release");
                drop(guard);
                let std = self.inner.wait(std).unwrap_or_else(PoisonError::into_inner);
                MutexGuard { lock, std: Some(std), model: None, loc }
            }
        }
    }

    /// Like [`wait`](Self::wait) with a timeout; returns the reacquired guard
    /// and whether the wait timed out.
    ///
    /// Under exploration the timeout **never fires** (`timed_out` is always
    /// `false`): a protocol that can only make progress via the timeout shows
    /// up as a deadlock, which is precisely a lost wakeup. This makes the
    /// checker strictly stronger than wall-clock testing.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let loc = Location::caller();
        match guard.model.take() {
            Some((s, me)) => {
                let lock = guard.lock;
                guard.std = None;
                drop(guard);
                s.condvar_wait(addr_of(self), addr_of(lock), lock.rank, me, loc);
                let std = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                (MutexGuard { lock, std: Some(std), model: Some((s, me)), loc }, false)
            }
            None => {
                let lock = guard.lock;
                let std = guard.std.take().expect("guard accessed after release");
                drop(guard);
                let (std, result) =
                    self.inner.wait_timeout(std, timeout).unwrap_or_else(PoisonError::into_inner);
                (MutexGuard { lock, std: Some(std), model: None, loc }, result.timed_out())
            }
        }
    }

    /// Wakes one parked waiter (an explored choice when several are parked);
    /// a no-op when none are — which is how wakeups get lost.
    #[track_caller]
    pub fn notify_one(&self) {
        if let Some((s, me)) = sched::current() {
            s.condvar_notify(addr_of(self), false, me, Location::caller());
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes every parked waiter.
    #[track_caller]
    pub fn notify_all(&self) {
        if let Some((s, me)) = sched::current() {
            s.condvar_notify(addr_of(self), true, me, Location::caller());
        } else {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock that becomes a scheduling point under exploration
/// (reserved for the upcoming serving layer; no ranked variant yet).
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let loc = Location::caller();
        let model = sched::current();
        if let Some((s, me)) = &model {
            s.rw_lock(addr_of(self), false, *me, loc);
        }
        let std = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard { lock: self, std: Some(std), model, loc }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let loc = Location::caller();
        let model = sched::current();
        if let Some((s, me)) = &model {
            s.rw_lock(addr_of(self), true, *me, loc);
        }
        let std = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard { lock: self, std: Some(std), model, loc }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    std: Option<StdReadGuard<'a, T>>,
    model: Option<(std::sync::Arc<sched::Scheduler>, usize)>,
    loc: &'static Location<'static>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if let Some((s, me)) = self.model.take() {
            s.rw_unlock(addr_of(self.lock), false, me, self.loc);
        }
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    std: Option<StdWriteGuard<'a, T>>,
    model: Option<(std::sync::Arc<sched::Scheduler>, usize)>,
    loc: &'static Location<'static>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if let Some((s, me)) = self.model.take() {
            s.rw_unlock(addr_of(self.lock), true, me, self.loc);
        }
    }
}

// ---------------------------------------------------------------------------
// AtomicU64
// ---------------------------------------------------------------------------

/// A 64-bit atomic whose every access is a serialized scheduling point under
/// exploration.
///
/// The model explores **sequential consistency only**: the `Ordering` argument
/// is honored by the underlying hardware atomic but adds no extra reorderings
/// to the explored schedule space.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    inner: StdAtomicU64,
}

impl AtomicU64 {
    /// Creates an atomic with the given initial value.
    pub const fn new(value: u64) -> AtomicU64 {
        AtomicU64 { inner: StdAtomicU64::new(value) }
    }

    /// Loads the value.
    #[track_caller]
    pub fn load(&self, order: Ordering) -> u64 {
        match sched::current() {
            Some((s, me)) => s.atomic_op(
                me,
                Location::caller(),
                |v| format!("atomic load -> {v}"),
                || self.inner.load(order),
            ),
            None => self.inner.load(order),
        }
    }

    /// Stores a value.
    #[track_caller]
    pub fn store(&self, value: u64, order: Ordering) {
        match sched::current() {
            Some((s, me)) => s.atomic_op(
                me,
                Location::caller(),
                |_| format!("atomic store {value}"),
                || self.inner.store(value, order),
            ),
            None => self.inner.store(value, order),
        }
    }

    /// Adds to the value, returning the previous value.
    #[track_caller]
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        match sched::current() {
            Some((s, me)) => s.atomic_op(
                me,
                Location::caller(),
                |prev| format!("atomic fetch_add {value} (was {prev})"),
                || self.inner.fetch_add(value, order),
            ),
            None => self.inner.fetch_add(value, order),
        }
    }

    /// Subtracts from the value, returning the previous value.
    #[track_caller]
    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        match sched::current() {
            Some((s, me)) => s.atomic_op(
                me,
                Location::caller(),
                |prev| format!("atomic fetch_sub {value} (was {prev})"),
                || self.inner.fetch_sub(value, order),
            ),
            None => self.inner.fetch_sub(value, order),
        }
    }

    /// Swaps in a new value, returning the previous value.
    #[track_caller]
    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        match sched::current() {
            Some((s, me)) => s.atomic_op(
                me,
                Location::caller(),
                |prev| format!("atomic swap {value} (was {prev})"),
                || self.inner.swap(value, order),
            ),
            None => self.inner.swap(value, order),
        }
    }

    /// Stores `new` if the current value equals `current`; returns the prior
    /// value as `Ok` on success and `Err` on failure, like the std method.
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match sched::current() {
            Some((s, me)) => s.atomic_op(
                me,
                Location::caller(),
                |r| match r {
                    Ok(prev) => format!("atomic cas {current}->{new} ok (was {prev})"),
                    Err(seen) => format!("atomic cas {current}->{new} failed (saw {seen})"),
                },
                || self.inner.compare_exchange(current, new, success, failure),
            ),
            None => self.inner.compare_exchange(current, new, success, failure),
        }
    }

    /// Mutable access without synchronization (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut u64 {
        self.inner.get_mut()
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// A write-once cell; under exploration the init race (who claims the slot,
/// who blocks and observes the published value) is part of the schedule space.
pub struct OnceLock<T> {
    inner: StdOnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub const fn new() -> OnceLock<T> {
        OnceLock { inner: StdOnceLock::new() }
    }

    /// Returns the value if initialized. Non-blocking in both modes (matching
    /// `std`: a concurrent in-flight init reads as `None`).
    #[track_caller]
    pub fn get(&self) -> Option<&T> {
        if let Some((s, me)) = sched::current() {
            s.atomic_op(
                me,
                Location::caller(),
                |some| format!("once get -> {}", if *some { "initialized" } else { "empty" }),
                || self.inner.get().is_some(),
            );
        }
        self.inner.get()
    }

    /// Initializes the cell if empty; `Err(value)` if already initialized
    /// (or if another thread's in-flight init wins, once it completes).
    #[track_caller]
    pub fn set(&self, value: T) -> Result<(), T> {
        if let Some((s, me)) = sched::current() {
            let loc = Location::caller();
            if s.once_begin(addr_of(self), me, loc) {
                let _ = self.inner.set(value);
                s.once_complete(addr_of(self), me, loc);
                return Ok(());
            }
            return Err(value);
        }
        self.inner.set(value)
    }

    /// Returns the value, initializing it with `init` if empty; blocks while
    /// another thread is initializing (a scheduling point under exploration).
    #[track_caller]
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> &T {
        if let Some((s, me)) = sched::current() {
            let loc = Location::caller();
            if s.once_begin(addr_of(self), me, loc) {
                let _ = self.inner.set(init());
                s.once_complete(addr_of(self), me, loc);
            }
            return self.inner.get().expect("OnceLock observed Done before publication");
        }
        self.inner.get_or_init(init)
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> OnceLock<T> {
        OnceLock::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OnceLock").field("value", &self.inner.get()).finish()
    }
}
