//! `blazeit-model` — a schedule-exploring concurrency checker (a vendored
//! mini-loom) for the BlazeIt sync shim.
//!
//! The engine's `(nn, index, generation)` swap protocol (stream `advance` vs
//! `Subscription` poll vs background drift-retrain publication) is only
//! correct if it holds under **every** interleaving, not just the one schedule
//! a wall-clock test happens to exercise. This crate runs a closure many times
//! under a controlled scheduler, enumerating all interleavings at
//! synchronization points up to a configurable preemption bound, and reports:
//!
//! * **deadlocks** — every unfinished thread blocked (also how lost wakeups
//!   present, since model condvar waits never time out);
//! * **lock-order violations** — ranked mutexes checked against the
//!   `monitor → live_index → nn_cache → video` hierarchy from
//!   `blazeit_core::lockorder::RANKED_LOCKS`;
//! * **invariant failures** — any panic (e.g. a failed `assert!`) on a model
//!   thread.
//!
//! On failure the exact schedule is minimized and printed as a `file:line`
//! interleaving trace; because every decision is recorded, re-running the test
//! reproduces the same counterexample deterministically.
//!
//! Threads and sync objects come from [`thread`] and [`sync`] — the same API
//! the production shim (`blazeit_videostore::sync`) re-exports under the
//! `model` cargo feature, so production types compiled in model mode explore
//! here and run at full speed everywhere else.
//!
//! ```
//! use blazeit_model::{sync, thread, Builder};
//! use std::sync::Arc;
//!
//! let report = Builder::new().check(|| {
//!     let total = Arc::new(sync::Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let total = Arc::clone(&total);
//!             thread::spawn(move || *total.lock() += 1)
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(*total.lock(), 2);
//! });
//! assert!(report.failure.is_none());
//! ```
//!
//! # Exploration model
//!
//! Scheduling is decision-after-each-operation: after every visible operation
//! the scheduler picks which runnable thread performs the next one. Continuing
//! the current thread is free; switching away from a still-runnable thread
//! costs one *preemption*, and schedules are enumerated depth-first up to
//! [`Builder::preemption_bound`] preemptions (switches away from blocked or
//! finished threads are always free). Small bounds find almost all real bugs
//! (CHESS's empirical result) while keeping the schedule count tractable.
//!
//! The memory model is **sequential consistency**: every atomic access is a
//! serialized scheduling point. Weak-ordering reorderings are not explored.
//!
//! Closures under test must be deterministic apart from scheduling: no clocks,
//! no RNG, no real I/O — all cross-thread state through [`sync`].

mod sched;
pub mod sync;
pub mod thread;

pub use sched::FailureKind;

use sched::{Choice, Failure, Scheduler, TraceEvent};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Result of one run: did it fail, and which decisions did it make?
struct Outcome {
    failure: Option<Failure>,
    choices: Vec<Choice>,
    trace: Vec<TraceEvent>,
    preemptions: usize,
}

/// One operation of a counterexample schedule.
#[derive(Debug, Clone)]
pub struct TraceLine {
    /// Name of the model thread that performed the operation.
    pub thread: String,
    /// What it did (`lock "monitor"`, `atomic store 3`, `blocked: …`, …).
    pub op: String,
    /// Source file of the call site (via `#[track_caller]`).
    pub file: String,
    /// Source line of the call site.
    pub line: u32,
}

/// A failing schedule, minimized and rendered for humans via [`fmt::Display`].
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// What went wrong.
    pub kind: FailureKind,
    /// The failure message (deadlock wait-for sets, the lock-order violation,
    /// or the panic message of a failed invariant).
    pub message: String,
    /// The full interleaving that reaches the failure, in execution order.
    pub trace: Vec<TraceLine>,
    /// Preemptions the counterexample needed (≤ the configured bound).
    pub preemptions: usize,
    /// How many schedules were explored before this one failed.
    pub schedules_to_find: usize,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "concurrency model check FAILED: {}", self.message)?;
        writeln!(
            f,
            "counterexample schedule ({} ops, {} preemption{}, found on schedule #{}):",
            self.trace.len(),
            self.preemptions,
            if self.preemptions == 1 { "" } else { "s" },
            self.schedules_to_find,
        )?;
        let thread_w = self.trace.iter().map(|l| l.thread.len()).max().unwrap_or(0);
        let op_w = self.trace.iter().map(|l| l.op.len()).max().unwrap_or(0);
        for l in &self.trace {
            writeln!(f, "  [{:<thread_w$}] {:<op_w$}  {}:{}", l.thread, l.op, l.file, l.line)?;
        }
        write!(f, "the schedule is deterministic: re-running the test replays it exactly")
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Total schedules executed (including the failing one, when any).
    pub schedules: usize,
    /// The minimized counterexample, or `None` if every schedule passed.
    pub failure: Option<FailureReport>,
}

/// Configures and runs an exploration.
///
/// The defaults (preemption bound 2, 200 000 schedules, 5 000 ops per
/// schedule) fit protocol-sized tests: a handful of threads doing tens of
/// operations each.
#[derive(Debug, Clone)]
pub struct Builder {
    preemption_bound: usize,
    max_schedules: usize,
    max_steps: usize,
    minimize_budget: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            preemption_bound: 2,
            max_schedules: 200_000,
            max_steps: 5_000,
            minimize_budget: 400,
        }
    }
}

impl Builder {
    /// A builder with the default budgets.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Maximum preemptions (forced switches away from a runnable thread) per
    /// schedule. Exploration is exhaustive *within* this bound.
    pub fn preemption_bound(mut self, bound: usize) -> Builder {
        self.preemption_bound = bound;
        self
    }

    /// Hard cap on schedules; exceeding it panics (the test is too big for
    /// exhaustive exploration — shrink it or lower the bound).
    pub fn max_schedules(mut self, max: usize) -> Builder {
        self.max_schedules = max;
        self
    }

    /// Hard cap on visible operations within one schedule; exceeding it fails
    /// the run as a suspected livelock.
    pub fn max_steps(mut self, max: usize) -> Builder {
        self.max_steps = max;
        self
    }

    /// Extra replays spent shrinking a counterexample before reporting it.
    pub fn minimize_budget(mut self, budget: usize) -> Builder {
        self.minimize_budget = budget;
        self
    }

    /// Explores `f` under every schedule within the preemption bound and
    /// **panics** with the rendered [`FailureReport`] if any schedule fails.
    /// Returns the (passing) [`Report`] so callers can assert on coverage.
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        let report = self.check_report(f);
        if let Some(failure) = &report.failure {
            panic!("{failure}");
        }
        report
    }

    /// Like [`check`](Self::check) but returns the failure instead of
    /// panicking — for canary tests that assert the checker *does* flag a
    /// seeded race.
    pub fn check_report<F: Fn()>(&self, f: F) -> Report {
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            schedules += 1;
            assert!(
                schedules <= self.max_schedules,
                "exploration exceeded the {}-schedule budget; \
                 shrink the test, lower the preemption bound, or raise Builder::max_schedules",
                self.max_schedules
            );
            let out = run_once(&f, prefix, self.preemption_bound, self.max_steps);
            if out.failure.is_some() {
                let best = self.minimize(&f, out);
                let failure = best.failure.clone().expect("minimize keeps a failing outcome");
                return Report {
                    schedules,
                    failure: Some(FailureReport {
                        kind: failure.kind,
                        message: failure.message,
                        trace: best
                            .trace
                            .iter()
                            .map(|e| TraceLine {
                                thread: e.thread.clone(),
                                op: e.desc.clone(),
                                file: e.file.to_string(),
                                line: e.line,
                            })
                            .collect(),
                        preemptions: best.preemptions,
                        schedules_to_find: schedules,
                    }),
                };
            }
            match next_prefix(&out.choices, self.preemption_bound) {
                Some(p) => prefix = p,
                None => return Report { schedules, failure: None },
            }
        }
    }

    /// Best-effort counterexample shrinking: first the shortest failing
    /// decision prefix, then each decision greedily lowered toward the
    /// non-preempting default. Every candidate is a full replay; any failing
    /// candidate is a valid counterexample (not necessarily the same failure).
    fn minimize<F: Fn()>(&self, f: &F, first: Outcome) -> Outcome {
        let mut best = first;
        let mut budget = self.minimize_budget;
        let full = prefix_of(&best.choices);
        for k in 0..full.len() {
            if budget == 0 {
                return best;
            }
            budget -= 1;
            let out = run_once(f, full[..k].to_vec(), self.preemption_bound, self.max_steps);
            if out.failure.is_some() {
                best = out;
                break;
            }
        }
        let mut i = 0;
        loop {
            let cur = prefix_of(&best.choices);
            if i >= cur.len() {
                break;
            }
            for v in 0..cur[i] {
                if budget == 0 {
                    return best;
                }
                budget -= 1;
                let mut cand = cur.clone();
                cand[i] = v;
                let out = run_once(f, cand, self.preemption_bound, self.max_steps);
                if out.failure.is_some() {
                    best = out;
                    break;
                }
            }
            i += 1;
        }
        best
    }
}

fn prefix_of(choices: &[Choice]) -> Vec<usize> {
    choices.iter().map(|c| c.picked).collect()
}

/// Runs `f` once under a fresh scheduler, replaying `prefix` at the recorded
/// choice points and defaulting (continue the current thread) beyond it.
fn run_once<F: Fn()>(f: &F, prefix: Vec<usize>, bound: usize, max_steps: usize) -> Outcome {
    let scheduler = Arc::new(Scheduler::new(prefix, bound, max_steps));
    sched::set_current(Some((scheduler.clone(), 0)));
    let outcome = catch_unwind(AssertUnwindSafe(f));
    sched::set_current(None);
    match outcome {
        // Finishing can itself detect a deadlock (main exits while others are
        // blocked) and unwind with ModelAbort; the failure is already recorded.
        Ok(()) => {
            let _ = catch_unwind(AssertUnwindSafe(|| scheduler.finish_thread(0)));
        }
        Err(payload) if payload.is::<sched::ModelAbort>() => scheduler.finish_quiet(0),
        Err(payload) => scheduler.record_panic(0, thread::panic_message(payload.as_ref())),
    }
    let (failure, choices, trace, preemptions) = scheduler.wait_all_done();
    Outcome { failure, choices, trace, preemptions }
}

/// Depth-first successor: backtracks to the deepest choice with an untried
/// alternative that stays within the preemption bound, and returns the
/// decision prefix that takes it. `None` when the (bounded) tree is exhausted.
fn next_prefix(choices: &[Choice], bound: usize) -> Option<Vec<usize>> {
    let mut prefix = prefix_of(choices);
    for i in (0..choices.len()).rev() {
        let c = &choices[i];
        for cand in (c.picked + 1)..c.options.len() {
            let cost = usize::from(c.preemptive[cand]);
            if c.preemptions_before + cost <= bound {
                prefix.truncate(i);
                prefix.push(cand);
                return Some(prefix);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Ordering::SeqCst;
    use std::sync::Arc;

    #[test]
    fn mutex_counter_is_coherent_in_every_schedule() {
        let report = Builder::new().check(|| {
            let total = Arc::new(sync::Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let total = Arc::clone(&total);
                    thread::spawn(move || *total.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*total.lock(), 2);
        });
        assert!(report.schedules >= 2, "two threads must yield multiple schedules");
    }

    #[test]
    fn racy_read_modify_write_is_caught() {
        let racy = || {
            let v = Arc::new(sync::AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let v = Arc::clone(&v);
                    thread::spawn(move || {
                        let seen = v.load(SeqCst);
                        v.store(seen + 1, SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(v.load(SeqCst), 2, "an increment was lost");
        };

        // One preemption (mid read-modify-write) is required and sufficient.
        let clean = Builder::new().preemption_bound(0).check_report(racy);
        assert!(clean.failure.is_none(), "bound 0 cannot interleave mid-RMW");

        let report = Builder::new().preemption_bound(1).check_report(racy);
        let failure = report.failure.expect("bound 1 must find the lost increment");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("an increment was lost"), "{}", failure.message);
        assert!(failure.schedules_to_find > 1, "the default schedule passes");
        assert!(!failure.trace.is_empty());
        for line in &failure.trace {
            assert!(line.file.ends_with("lib.rs"), "call sites resolve here: {}", line.file);
            assert!(line.line > 0);
        }
    }

    #[test]
    fn ab_ba_deadlock_is_caught() {
        let report = Builder::new().check_report(|| {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn_named("ab", move || {
                let _a = a2.lock();
                let _b = b2.lock();
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn_named("ba", move || {
                let _b = b3.lock();
                let _a = a3.lock();
            });
            t1.join();
            t2.join();
        });
        let failure = report.failure.expect("AB-BA must deadlock under some schedule");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
        assert!(failure.message.contains("'ab'") && failure.message.contains("'ba'"));
    }

    #[test]
    fn lock_order_oracle_fires_on_inverted_ranked_acquisition() {
        let report = Builder::new().check_report(|| {
            let live = sync::Mutex::ranked(1, "live_index", ());
            let monitor = sync::Mutex::ranked(0, "monitor", ());
            let _l = live.lock();
            let _m = monitor.lock();
        });
        let failure = report.failure.expect("rank inversion must be flagged");
        assert_eq!(failure.kind, FailureKind::LockOrder);
        assert!(
            failure.message.contains("lock-order violation")
                && failure.message.contains("'monitor' (rank 0)")
                && failure.message.contains("'live_index' (rank 1)"),
            "{}",
            failure.message
        );
    }

    #[test]
    fn condvar_handoff_is_clean() {
        let report = Builder::new().check(|| {
            let pair = Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = thread::spawn_named("waiter", move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            });
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
            waiter.join();
        });
        assert!(report.schedules >= 2);
    }

    #[test]
    fn lost_wakeup_is_reported_as_deadlock() {
        let report = Builder::new().check_report(|| {
            let pair = Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = thread::spawn_named("waiter", move || {
                let (m, cv) = &*p2;
                // Broken protocol: the flag check and the wait are separate
                // critical sections, so a notify can slip between them.
                let ready = *m.lock();
                if !ready {
                    let guard = m.lock();
                    let _guard = cv.wait(guard);
                }
            });
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
            waiter.join();
        });
        let failure = report.failure.expect("the lost wakeup must surface as a deadlock");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        assert!(failure.message.contains("parked on"), "{}", failure.message);
    }

    #[test]
    fn once_lock_initializes_exactly_once() {
        Builder::new().check(|| {
            let cell = Arc::new(sync::OnceLock::new());
            let inits = Arc::new(sync::AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    let inits = Arc::clone(&inits);
                    thread::spawn(move || {
                        let v = *cell.get_or_init(|| {
                            inits.fetch_add(1, SeqCst);
                            7u64
                        });
                        assert_eq!(v, 7);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(inits.load(SeqCst), 1, "init closure must run exactly once");
        });
    }

    #[test]
    fn rwlock_writers_are_never_observed_mid_update() {
        Builder::new().check(|| {
            let l = Arc::new(sync::RwLock::new(0u64));
            let l2 = Arc::clone(&l);
            let writer = thread::spawn_named("writer", move || {
                let mut g = l2.write();
                *g += 1;
                *g += 1;
            });
            let l3 = Arc::clone(&l);
            let reader = thread::spawn_named("reader", move || {
                let v = *l3.read();
                assert!(v == 0 || v == 2, "read a torn update: {v}");
            });
            writer.join();
            reader.join();
        });
    }

    #[test]
    fn primitives_pass_through_outside_explorations() {
        let m = sync::Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());

        let cv = sync::Condvar::new();
        let guard = m.lock();
        let (guard, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_millis(1));
        assert!(timed_out, "nobody notifies: the real timeout must fire");
        drop(guard);

        let a = sync::AtomicU64::new(5);
        assert_eq!(a.fetch_add(2, SeqCst), 5);
        assert_eq!(a.load(SeqCst), 7);

        let cell: sync::OnceLock<u32> = sync::OnceLock::new();
        assert_eq!(*cell.get_or_init(|| 3), 3);
        assert_eq!(cell.set(9), Err(9));

        let rw = sync::RwLock::new(4u8);
        assert_eq!(*rw.read(), 4);
        *rw.write() = 5;
        assert_eq!(*rw.read(), 5);
    }

    #[test]
    fn self_deadlock_is_reported() {
        let report = Builder::new().check_report(|| {
            let m = sync::Mutex::new(());
            let _a = m.lock();
            let _b = m.lock();
        });
        let failure = report.failure.expect("re-locking on one thread must be flagged");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        assert!(failure.message.contains("self-deadlock"), "{}", failure.message);
    }
}
