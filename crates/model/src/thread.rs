//! Model threads: real OS threads whose visible operations are arbitrated by
//! the controlled scheduler.
//!
//! [`spawn`]/[`spawn_named`] may only be called from inside an exploration
//! (i.e. from the closure passed to [`crate::Builder::check`], directly or
//! transitively). Each model thread runs on its own OS thread, but between
//! scheduling points it only ever executes local computation — all shared
//! state must go through [`crate::sync`], which is what makes each explored
//! schedule deterministic.

use crate::sched::{self, ModelAbort, Scheduler};
use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

/// Best-effort extraction of a panic message for failure reports.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle to a model thread; [`join`](JoinHandle::join) is a scheduling point.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes and returns its closure's value.
    ///
    /// # Panics
    ///
    /// Panics (aborting the current schedule) if the joined thread panicked —
    /// but in that case the run has already failed and the explorer reports
    /// the panic with its interleaving, so the join panic is never observed
    /// by user code.
    #[track_caller]
    pub fn join(mut self) -> T {
        let loc = Location::caller();
        let (sched, me) =
            sched::current().expect("JoinHandle::join called outside a model exploration");
        sched.join_thread(self.tid, me, loc);
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined model thread produced no value (it panicked)")
    }
}

/// Spawns a model thread with an auto-generated name (`t1`, `t2`, …).
///
/// # Panics
///
/// Panics if called outside an exploration; model threads exist only inside
/// [`crate::Builder::check`].
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_inner(None, f, Location::caller())
}

/// Spawns a model thread with an explicit name (used in traces and deadlock
/// reports).
#[track_caller]
pub fn spawn_named<F, T>(name: impl Into<String>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_inner(Some(name.into()), f, Location::caller())
}

fn spawn_inner<F, T>(name: Option<String>, f: F, loc: &'static Location<'static>) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me): (Arc<Scheduler>, usize) = sched::current()
        .expect("model::thread::spawn called outside a model exploration (Builder::check)");
    let (tid, name) = sched.register_thread(name, me, loc);
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot = result.clone();
    let child_sched = sched.clone();
    let os = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            sched::set_current(Some((child_sched.clone(), tid)));
            let outcome = catch_unwind(AssertUnwindSafe(f));
            sched::set_current(None);
            match outcome {
                Ok(value) => {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                    child_sched.finish_thread(tid);
                }
                Err(payload) if payload.is::<ModelAbort>() => child_sched.finish_quiet(tid),
                Err(payload) => child_sched.record_panic(tid, panic_message(payload.as_ref())),
            }
        })
        .expect("failed to spawn OS thread for model thread");
    JoinHandle { tid, result, os: Some(os) }
}
