//! The controlled scheduler at the heart of the model checker.
//!
//! During an exploration every model thread is a real OS thread, but only one
//! is ever *scheduled*: each visible operation (lock, unlock, condvar wait,
//! atomic access, spawn, join) first waits for its turn, then mutates the
//! shared [`State`] under one global lock, then picks which thread runs next.
//! Wherever more than one thread could be picked, the decision is recorded as a
//! [`Choice`]; the explorer in `lib.rs` drives depth-first over those choice
//! points by replaying a decision prefix on each run.
//!
//! Two failure detectors live here rather than in user assertions:
//!
//! * **Deadlock** — a thread about to block observes that no other thread is
//!   runnable and at least one is blocked: every schedule extension is stuck.
//! * **Lock-order violations** — mutexes constructed with
//!   [`Mutex::ranked`](crate::sync::Mutex::ranked) carry a `(rank, name)` from
//!   `blazeit_core::lockorder::RANKED_LOCKS`; acquiring one while holding an
//!   equal or higher rank fails the run immediately, on the exact interleaving
//!   that reached it.
//!
//! When a run fails, every other model thread is unwound with the private
//! [`ModelAbort`] panic payload so its guards release cleanly, and the run's
//! decision trace becomes the counterexample the explorer minimizes.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, Once, PoisonError,
};

/// Panic payload used to unwind model threads once a run has failed. It is
/// never user-visible: thread wrappers catch it, mark the thread finished, and
/// swallow it (the failure itself is reported through the run outcome).
pub(crate) struct ModelAbort;

thread_local! {
    /// The exploration this OS thread is participating in, if any. `None`
    /// means every shim operation falls through to its real `std::sync`
    /// implementation (pass-through mode).
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler + thread id of the calling OS thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs (or clears) the calling OS thread's exploration context.
pub(crate) fn set_current(ctx: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Suppresses the default "thread panicked" stderr noise for panics raised on
/// model threads (both [`ModelAbort`] unwinds and user invariant failures —
/// the latter are reported through the rendered counterexample instead).
/// Panics on non-model threads keep the previous hook's behavior.
pub(crate) fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_model_thread = current().is_some();
            if !on_model_thread && !info.payload().is::<ModelAbort>() {
                previous(info);
            }
        }));
    });
}

/// Why a blocked model thread cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Wait {
    /// Waiting to acquire the mutex at this address.
    Mutex(usize),
    /// Waiting for read access to the rwlock at this address.
    RwRead(usize),
    /// Waiting for write access to the rwlock at this address.
    RwWrite(usize),
    /// Parked on the condvar at this address until a notify.
    Condvar(usize),
    /// Waiting for another thread to finish initializing the `OnceLock`.
    Once(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

/// Run state of one model thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Run {
    Runnable,
    Blocked(Wait),
    Finished,
}

/// One model thread.
pub(crate) struct ThreadInfo {
    pub name: String,
    pub run: Run,
    /// Ranked locks currently held, in acquisition order.
    pub held: Vec<(u8, &'static str)>,
}

/// `OnceLock` lifecycle as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OnceState {
    Busy,
    Done,
}

/// Lock-object bookkeeping, keyed by object address (objects are created fresh
/// on every run, so addresses are only meaningful within one run).
#[derive(Default)]
pub(crate) struct Objects {
    pub mutex_owner: HashMap<usize, usize>,
    /// rwlock address → (writer, readers).
    pub rw: HashMap<usize, (Option<usize>, Vec<usize>)>,
    pub once: HashMap<usize, OnceState>,
    /// Display names for unranked objects (`mutex#1`, `rwlock#2`, …).
    names: HashMap<usize, String>,
    next_name: usize,
}

/// One recorded scheduling decision: which threads could have been picked, and
/// which one was. `preemptions_before` + `preemptive` let the explorer respect
/// the preemption bound when enumerating the untaken alternatives.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    pub options: Vec<usize>,
    pub picked: usize,
    pub preemptive: Vec<bool>,
    pub preemptions_before: usize,
}

/// How a run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every unfinished thread was blocked: no schedule extension can make
    /// progress (this is also how a lost wakeup presents, since model condvar
    /// waits never time out).
    Deadlock,
    /// A ranked mutex was acquired out of hierarchy order.
    LockOrder,
    /// A model thread panicked — a user-asserted invariant failed.
    Panic,
    /// A single schedule exceeded the per-run step budget (livelock guard).
    StepBudget,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::LockOrder => "lock-order violation",
            FailureKind::Panic => "invariant failure (panic)",
            FailureKind::StepBudget => "step budget exceeded (livelock?)",
        })
    }
}

/// A failure recorded by the scheduler for the current run.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub kind: FailureKind,
    pub message: String,
}

/// One visible operation in the executed schedule.
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub thread: String,
    pub desc: String,
    pub file: &'static str,
    pub line: u32,
}

/// Shared exploration state for one run.
pub(crate) struct State {
    pub threads: Vec<ThreadInfo>,
    pub active: usize,
    pub objs: Objects,
    /// Decision prefix to replay (picked-option indices, in decision order).
    pub prefix: Vec<usize>,
    /// Decisions recorded this run (replayed prefix included).
    pub choices: Vec<Choice>,
    pub preemptions: usize,
    pub bound: usize,
    pub steps_left: usize,
    pub trace: Vec<TraceEvent>,
    pub failure: Option<Failure>,
}

/// The per-run controlled scheduler. One instance per explored schedule.
pub(crate) struct Scheduler {
    mutex: StdMutex<State>,
    cv: StdCondvar,
}

/// Outcome of a lock-acquisition attempt made under the state lock.
enum Attempt {
    Ready,
    Block(Wait),
}

impl Scheduler {
    pub(crate) fn new(prefix: Vec<usize>, bound: usize, max_steps: usize) -> Scheduler {
        install_quiet_panic_hook();
        Scheduler {
            mutex: StdMutex::new(State {
                threads: vec![ThreadInfo {
                    name: "main".to_string(),
                    run: Run::Runnable,
                    held: Vec::new(),
                }],
                active: 0,
                objs: Objects::default(),
                prefix,
                choices: Vec::new(),
                preemptions: 0,
                bound,
                steps_left: max_steps,
                trace: Vec::new(),
                failure: None,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn state(&self) -> StdGuard<'_, State> {
        self.mutex.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Waits until `me` is scheduled. Panics [`ModelAbort`] once the run fails.
    fn turn<'a>(&'a self, mut st: StdGuard<'a, State>, me: usize) -> StdGuard<'a, State> {
        loop {
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.active == me && st.threads[me].run == Run::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Release-path variant of [`turn`](Self::turn): never panics. Returns
    /// `None` when the run has failed, in which case the caller should do
    /// bookkeeping-only cleanup (it may be running inside a `Drop` during an
    /// abort unwind, where a second panic would abort the process).
    fn turn_quiet<'a>(
        &'a self,
        mut st: StdGuard<'a, State>,
        me: usize,
    ) -> Option<StdGuard<'a, State>> {
        loop {
            if st.failure.is_some() {
                return None;
            }
            if st.active == me && st.threads[me].run == Run::Runnable {
                return Some(st);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records `failure` (first failure wins), wakes everyone, and unwinds the
    /// calling thread.
    fn fail(&self, st: &mut State, kind: FailureKind, message: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(Failure { kind, message });
        }
        self.cv.notify_all();
        std::panic::panic_any(ModelAbort);
    }

    /// Makes a (recorded, explorable) choice among `options`; `preemptive[i]`
    /// marks options that would preempt a still-runnable current thread.
    fn choose(&self, st: &mut State, options: &[usize], preemptive: &[bool]) -> usize {
        if options.len() == 1 {
            return options[0];
        }
        let idx = st.choices.len();
        // Out-of-range replay indices are clamped: minimization deliberately
        // perturbs prefixes and only keeps candidates that still fail.
        let picked = if idx < st.prefix.len() { st.prefix[idx].min(options.len() - 1) } else { 0 };
        st.choices.push(Choice {
            options: options.to_vec(),
            picked,
            preemptive: preemptive.to_vec(),
            preemptions_before: st.preemptions,
        });
        options[picked]
    }

    /// The scheduling decision: picks which runnable thread executes its next
    /// operation. Detects deadlock when nothing is runnable but something is
    /// blocked. Called after every visible operation (and whenever a thread
    /// blocks or finishes).
    fn pick_next(&self, st: &mut State, me: usize) {
        let runnable: Vec<usize> =
            (0..st.threads.len()).filter(|&t| st.threads[t].run == Run::Runnable).collect();
        if runnable.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .filter(|t| matches!(t.run, Run::Blocked(_)))
                .map(|t| {
                    let Run::Blocked(wait) = &t.run else { unreachable!() };
                    format!("'{}' {}", t.name, describe_wait(&st.objs, wait, &st.threads))
                })
                .collect();
            if blocked.is_empty() {
                // Every thread finished: nothing left to schedule.
                self.cv.notify_all();
                return;
            }
            let message =
                format!("deadlock: every unfinished thread is blocked — {}", blocked.join("; "));
            self.fail(st, FailureKind::Deadlock, message);
        }
        let me_runnable = runnable.contains(&me);
        // Canonical order: continuing the current thread first (the free,
        // non-preempting default), then the others by id.
        let mut options: Vec<usize> = Vec::with_capacity(runnable.len());
        if me_runnable {
            options.push(me);
        }
        options.extend(runnable.iter().copied().filter(|&t| t != me));
        if me_runnable && st.preemptions >= st.bound {
            // At the bound: switching away from a runnable thread is no longer
            // offered, so the alternatives never enter the decision tree.
            options.truncate(1);
        }
        let preemptive: Vec<bool> = options.iter().map(|&t| me_runnable && t != me).collect();
        let next = self.choose(st, &options, &preemptive);
        if me_runnable && next != me {
            st.preemptions += 1;
        }
        st.active = next;
        self.cv.notify_all();
    }

    /// Records one executed operation in the trace, charges the step budget,
    /// and yields to the next scheduling decision.
    fn step(&self, st: &mut State, me: usize, desc: String, loc: &'static Location<'static>) {
        st.trace.push(TraceEvent {
            thread: st.threads[me].name.clone(),
            desc,
            file: loc.file(),
            line: loc.line(),
        });
        if st.steps_left == 0 {
            self.fail(
                st,
                FailureKind::StepBudget,
                "a single schedule exceeded the per-run step budget; \
                 the protocol under test may livelock (or raise Builder::max_steps)"
                    .to_string(),
            );
        }
        st.steps_left -= 1;
        self.pick_next(st, me);
    }

    /// Display name for the object at `addr` (the ranked name when known).
    fn obj_name(st: &mut State, addr: usize, kind: &str, ranked: Option<&'static str>) -> String {
        if let Some(name) = ranked {
            return format!("\"{name}\"");
        }
        if let Some(name) = st.objs.names.get(&addr) {
            return name.clone();
        }
        st.objs.next_name += 1;
        let name = format!("{kind}#{}", st.objs.next_name);
        st.objs.names.insert(addr, name.clone());
        name
    }

    /// Blocking-acquire loop shared by mutex / rwlock / once acquisition:
    /// waits for a turn, runs `attempt` under the state lock, and either
    /// commits (trace + yield) or blocks and retries when woken.
    fn acquire(
        &self,
        me: usize,
        loc: &'static Location<'static>,
        desc: impl Fn(&mut State) -> String,
        mut attempt: impl FnMut(&mut State, usize) -> Attempt,
    ) {
        let mut st = self.turn(self.state(), me);
        loop {
            match attempt(&mut st, me) {
                Attempt::Ready => {
                    let d = desc(&mut st);
                    self.step(&mut st, me, d, loc);
                    return;
                }
                Attempt::Block(wait) => {
                    let d = format!("blocked: {}", describe_wait(&st.objs, &wait, &st.threads));
                    let thread = st.threads[me].name.clone();
                    st.trace.push(TraceEvent {
                        thread,
                        desc: d,
                        file: loc.file(),
                        line: loc.line(),
                    });
                    st.threads[me].run = Run::Blocked(wait);
                    self.pick_next(&mut st, me);
                    st = self.turn(st, me);
                }
            }
        }
    }

    /// Wakes every thread blocked on `wait` (they re-attempt when scheduled).
    fn wake(st: &mut State, wait: &Wait) {
        for t in &mut st.threads {
            if t.run == Run::Blocked(wait.clone()) {
                t.run = Run::Runnable;
            }
        }
    }

    // ---- mutex ----------------------------------------------------------

    pub(crate) fn mutex_lock(
        self: &Arc<Self>,
        addr: usize,
        rank: Option<(u8, &'static str)>,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        self.acquire(
            me,
            loc,
            |st| {
                let name = Self::obj_name(st, addr, "mutex", rank.map(|(_, n)| n));
                format!("lock {name}")
            },
            |st, me| {
                if let Some(&owner) = st.objs.mutex_owner.get(&addr) {
                    if owner == me {
                        let name = Self::obj_name(st, addr, "mutex", rank.map(|(_, n)| n));
                        self.fail(
                            st,
                            FailureKind::Deadlock,
                            format!(
                                "self-deadlock: thread '{}' re-locking {name} it already holds",
                                st.threads[me].name
                            ),
                        );
                    }
                    return Attempt::Block(Wait::Mutex(addr));
                }
                if let Some((rank, name)) = rank {
                    if let Some(&(held_rank, held_name)) =
                        st.threads[me].held.iter().find(|&&(r, _)| r >= rank)
                    {
                        let thread = st.threads[me].name.clone();
                        self.fail(
                            st,
                            FailureKind::LockOrder,
                            format!(
                                "lock-order violation: thread '{thread}' acquiring '{name}' \
                                 (rank {rank}) while holding '{held_name}' (rank {held_rank}); \
                                 the documented order is monitor → live_index → nn_cache → video"
                            ),
                        );
                    }
                    st.threads[me].held.push((rank, name));
                }
                st.objs.mutex_owner.insert(addr, me);
                Attempt::Ready
            },
        );
    }

    /// Non-blocking acquire; returns whether the lock was taken. Both outcomes
    /// are visible operations (they observe shared state).
    pub(crate) fn mutex_try_lock(
        self: &Arc<Self>,
        addr: usize,
        rank: Option<(u8, &'static str)>,
        me: usize,
        loc: &'static Location<'static>,
    ) -> bool {
        let mut st = self.turn(self.state(), me);
        let name = Self::obj_name(&mut st, addr, "mutex", rank.map(|(_, n)| n));
        let taken = !st.objs.mutex_owner.contains_key(&addr);
        if taken {
            if let Some((r, n)) = rank {
                st.threads[me].held.push((r, n));
            }
            st.objs.mutex_owner.insert(addr, me);
        }
        let desc = if taken {
            format!("try_lock {name} -> acquired")
        } else {
            format!("try_lock {name} -> busy")
        };
        self.step(&mut st, me, desc, loc);
        taken
    }

    /// Releases the mutex at `addr`. Never panics: runs in guard `Drop`s,
    /// including during abort unwinds (where it degrades to bookkeeping only).
    pub(crate) fn mutex_unlock(
        self: &Arc<Self>,
        addr: usize,
        rank: Option<(u8, &'static str)>,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        let st = self.state();
        let Some(mut st) = self.turn_quiet(st, me) else {
            let mut st = self.state();
            st.objs.mutex_owner.remove(&addr);
            Self::unhold(&mut st, me, rank);
            return;
        };
        st.objs.mutex_owner.remove(&addr);
        Self::unhold(&mut st, me, rank);
        Self::wake(&mut st, &Wait::Mutex(addr));
        let name = Self::obj_name(&mut st, addr, "mutex", rank.map(|(_, n)| n));
        let thread = st.threads[me].name.clone();
        st.trace.push(TraceEvent {
            thread,
            desc: format!("unlock {name}"),
            file: loc.file(),
            line: loc.line(),
        });
        self.pick_next(&mut st, me);
    }

    fn unhold(st: &mut State, me: usize, rank: Option<(u8, &'static str)>) {
        if let Some((r, n)) = rank {
            if let Some(pos) = st.threads[me].held.iter().rposition(|&h| h == (r, n)) {
                st.threads[me].held.remove(pos);
            }
        }
    }

    // ---- rwlock ---------------------------------------------------------

    pub(crate) fn rw_lock(
        self: &Arc<Self>,
        addr: usize,
        write: bool,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        self.acquire(
            me,
            loc,
            |st| {
                let name = Self::obj_name(st, addr, "rwlock", None);
                format!("{} {name}", if write { "write" } else { "read" })
            },
            |st, me| {
                let entry = st.objs.rw.entry(addr).or_default();
                match (write, &entry) {
                    (true, (None, readers)) if readers.is_empty() => {
                        entry.0 = Some(me);
                        Attempt::Ready
                    }
                    (true, _) => Attempt::Block(Wait::RwWrite(addr)),
                    (false, (None, _)) => {
                        entry.1.push(me);
                        Attempt::Ready
                    }
                    (false, _) => Attempt::Block(Wait::RwRead(addr)),
                }
            },
        );
    }

    pub(crate) fn rw_unlock(
        self: &Arc<Self>,
        addr: usize,
        write: bool,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        let st = self.state();
        let Some(mut st) = self.turn_quiet(st, me) else {
            let mut st = self.state();
            Self::rw_release(&mut st, addr, write, me);
            return;
        };
        Self::rw_release(&mut st, addr, write, me);
        Self::wake(&mut st, &Wait::RwWrite(addr));
        Self::wake(&mut st, &Wait::RwRead(addr));
        let name = Self::obj_name(&mut st, addr, "rwlock", None);
        let thread = st.threads[me].name.clone();
        st.trace.push(TraceEvent {
            thread,
            desc: format!("{} {name}", if write { "unwrite" } else { "unread" }),
            file: loc.file(),
            line: loc.line(),
        });
        self.pick_next(&mut st, me);
    }

    fn rw_release(st: &mut State, addr: usize, write: bool, me: usize) {
        let entry = st.objs.rw.entry(addr).or_default();
        if write {
            entry.0 = None;
        } else if let Some(pos) = entry.1.iter().position(|&t| t == me) {
            entry.1.remove(pos);
        }
    }

    // ---- condvar --------------------------------------------------------

    /// Atomically releases the mutex at `m_addr` and parks on the condvar at
    /// `cv_addr`; after a notify, reacquires the mutex before returning. This
    /// is exactly `Condvar::wait` — with no timeout and no spurious wakeups,
    /// so a protocol that only terminates thanks to a timeout shows up as a
    /// deadlock (a lost wakeup).
    pub(crate) fn condvar_wait(
        self: &Arc<Self>,
        cv_addr: usize,
        m_addr: usize,
        rank: Option<(u8, &'static str)>,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        {
            let st = self.state();
            let mut st = self.turn(st, me);
            st.objs.mutex_owner.remove(&m_addr);
            Self::unhold(&mut st, me, rank);
            Self::wake(&mut st, &Wait::Mutex(m_addr));
            let cv = Self::obj_name(&mut st, cv_addr, "condvar", None);
            let m = Self::obj_name(&mut st, m_addr, "mutex", rank.map(|(_, n)| n));
            let thread = st.threads[me].name.clone();
            st.trace.push(TraceEvent {
                thread,
                desc: format!("wait {cv} (releases {m})"),
                file: loc.file(),
                line: loc.line(),
            });
            st.threads[me].run = Run::Blocked(Wait::Condvar(cv_addr));
            self.pick_next(&mut st, me);
            drop(self.turn(st, me));
        }
        // Notified and scheduled: reacquire the mutex (may block again).
        self.mutex_lock(m_addr, rank, me, loc);
    }

    /// Wakes one parked waiter (an explorable choice when several are parked),
    /// or no-ops if none are parked — which is how wakeups get lost when a
    /// notify races ahead of the corresponding wait.
    pub(crate) fn condvar_notify(
        self: &Arc<Self>,
        cv_addr: usize,
        all: bool,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        let mut st = self.turn(self.state(), me);
        let waiters: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].run == Run::Blocked(Wait::Condvar(cv_addr)))
            .collect();
        let woken = if all {
            for &t in &waiters {
                st.threads[t].run = Run::Runnable;
            }
            waiters.len()
        } else if waiters.is_empty() {
            0
        } else {
            let preemptive = vec![false; waiters.len()];
            let target = self.choose(&mut st, &waiters, &preemptive);
            st.threads[target].run = Run::Runnable;
            1
        };
        let cv = Self::obj_name(&mut st, cv_addr, "condvar", None);
        let which = if all { "notify_all" } else { "notify_one" };
        self.step(&mut st, me, format!("{which} {cv} ({woken} woken)"), loc);
    }

    // ---- atomics & once -------------------------------------------------

    /// Runs `op` (a read/write of a real atomic) as one scheduled visible
    /// operation and returns its result.
    pub(crate) fn atomic_op<R>(
        self: &Arc<Self>,
        me: usize,
        loc: &'static Location<'static>,
        desc: impl FnOnce(&R) -> String,
        op: impl FnOnce() -> R,
    ) -> R {
        let mut st = self.turn(self.state(), me);
        let out = op();
        let d = desc(&out);
        self.step(&mut st, me, d, loc);
        out
    }

    /// First half of `OnceLock::get_or_init`: returns `true` when the caller
    /// must run the init closure (it won the claim); waits while another
    /// thread is initializing.
    pub(crate) fn once_begin(
        self: &Arc<Self>,
        addr: usize,
        me: usize,
        loc: &'static Location<'static>,
    ) -> bool {
        let must_init = Cell::new(false);
        self.acquire(
            me,
            loc,
            |st| {
                let name = Self::obj_name(st, addr, "once", None);
                format!("once {name} ({})", if must_init.get() { "claimed init" } else { "ready" })
            },
            |st, _me| match st.objs.once.get(&addr) {
                None => {
                    st.objs.once.insert(addr, OnceState::Busy);
                    must_init.set(true);
                    Attempt::Ready
                }
                Some(OnceState::Busy) => Attempt::Block(Wait::Once(addr)),
                Some(OnceState::Done) => {
                    must_init.set(false);
                    Attempt::Ready
                }
            },
        );
        must_init.get()
    }

    /// Second half of `get_or_init`: publishes the initialized value and wakes
    /// blocked readers.
    pub(crate) fn once_complete(
        self: &Arc<Self>,
        addr: usize,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        let mut st = self.turn(self.state(), me);
        st.objs.once.insert(addr, OnceState::Done);
        Self::wake(&mut st, &Wait::Once(addr));
        let name = Self::obj_name(&mut st, addr, "once", None);
        self.step(&mut st, me, format!("once {name} initialized"), loc);
    }

    // ---- threads --------------------------------------------------------

    /// Registers a new model thread (runnable immediately) and returns its id.
    /// The spawn itself is a visible operation of the parent. Unnamed threads
    /// get `t<id>`.
    pub(crate) fn register_thread(
        self: &Arc<Self>,
        name: Option<String>,
        me: usize,
        loc: &'static Location<'static>,
    ) -> (usize, String) {
        let mut st = self.turn(self.state(), me);
        let tid = st.threads.len();
        let name = name.unwrap_or_else(|| format!("t{tid}"));
        st.threads.push(ThreadInfo { name: name.clone(), run: Run::Runnable, held: Vec::new() });
        self.step(&mut st, me, format!("spawn '{name}'"), loc);
        (tid, name)
    }

    /// Marks `me` finished, wakes joiners, and schedules whoever is next.
    /// Quiet on failed runs (the thread may be unwinding).
    pub(crate) fn finish_thread(self: &Arc<Self>, me: usize) {
        let st = self.state();
        match self.turn_quiet(st, me) {
            Some(mut st) => {
                st.threads[me].run = Run::Finished;
                Self::wake(&mut st, &Wait::Join(me));
                self.pick_next(&mut st, me);
            }
            None => self.finish_quiet(me),
        }
    }

    /// Bookkeeping-only finish for aborting threads.
    pub(crate) fn finish_quiet(self: &Arc<Self>, me: usize) {
        let mut st = self.state();
        st.threads[me].run = Run::Finished;
        self.cv.notify_all();
    }

    /// Records a user panic on thread `me` as the run's failure and finishes
    /// the thread.
    pub(crate) fn record_panic(self: &Arc<Self>, me: usize, message: String) {
        let mut st = self.state();
        if st.failure.is_none() {
            let thread = st.threads[me].name.clone();
            st.failure = Some(Failure {
                kind: FailureKind::Panic,
                message: format!("thread '{thread}' panicked: {message}"),
            });
        }
        st.threads[me].run = Run::Finished;
        self.cv.notify_all();
    }

    /// Blocks until the thread with id `target` has finished.
    pub(crate) fn join_thread(
        self: &Arc<Self>,
        target: usize,
        me: usize,
        loc: &'static Location<'static>,
    ) {
        self.acquire(
            me,
            loc,
            |st| format!("join '{}'", st.threads[target].name),
            |st, _me| {
                if st.threads[target].run == Run::Finished {
                    Attempt::Ready
                } else {
                    Attempt::Block(Wait::Join(target))
                }
            },
        );
    }

    /// Blocks the *host* (non-model) caller until every model thread has
    /// finished — on failed runs, until every thread has observed the failure
    /// and unwound (so no OS thread is left parked on this scheduler).
    /// Returns the run outcome pieces.
    pub(crate) fn wait_all_done(&self) -> (Option<Failure>, Vec<Choice>, Vec<TraceEvent>, usize) {
        let mut st = self.state();
        while !st.threads.iter().all(|t| t.run == Run::Finished) {
            // Re-notify each round: aborting threads may be between their
            // failure check and their cv re-park.
            self.cv.notify_all();
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        (
            st.failure.clone(),
            std::mem::take(&mut st.choices),
            std::mem::take(&mut st.trace),
            st.preemptions,
        )
    }
}

/// Human-readable description of a wait reason, for deadlock reports and
/// `blocked:` trace lines.
fn describe_wait(objs: &Objects, wait: &Wait, threads: &[ThreadInfo]) -> String {
    let named = |addr: &usize, kind: &str| {
        objs.names.get(addr).cloned().unwrap_or_else(|| format!("{kind}@{addr:#x}"))
    };
    match wait {
        Wait::Mutex(a) => format!("waiting to lock {}", named(a, "mutex")),
        Wait::RwRead(a) => format!("waiting to read {}", named(a, "rwlock")),
        Wait::RwWrite(a) => format!("waiting to write {}", named(a, "rwlock")),
        Wait::Condvar(a) => format!("parked on {}", named(a, "condvar")),
        Wait::Once(a) => format!("waiting on {}", named(a, "once")),
        Wait::Join(t) => {
            format!("joining '{}'", threads.get(*t).map(|t| t.name.as_str()).unwrap_or("?"))
        }
    }
}
