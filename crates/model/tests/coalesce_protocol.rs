//! Exhaustive model check of the serving layer's coalescing-cache protocol.
//!
//! Mirrors `blazeit_core::serve`: sessions key the cache by the video's data
//! generation, exactly one session computes each key (map-entry vacancy under
//! the ranked `serve_cache` lock), later identical sessions attach as waiters
//! on the slot's condvar, and the computer publishes `(result, generation)`
//! as one atomic state change before waking everyone. A concurrent
//! generation bump (the model's stand-in for stream ingest / UDF
//! registration / drift refresh) invalidates by making the old key
//! unreachable. Explored under **every** schedule up to the preemption
//! bound, the protocol must guarantee:
//!
//! * no session ever receives a result computed for a different generation
//!   than the one its cache key was built from (no stale reads);
//! * no waiter is lost: every attached session is woken by the publish (a
//!   missed wakeup blocks a thread forever, which the checker reports as a
//!   deadlock);
//! * no schedule deadlocks, and every path respects the documented
//!   `serve_cache → serve_slot` lock order (the ranked-mutex oracle fails
//!   the run otherwise).
//!
//! The `canary_*` test is the seeded race: a torn publish that installs the
//! result and its generation under two separate lock acquisitions. The
//! checker **must** flag it — it runs in CI beside the lint and stream
//! canaries so a regression that blinds the checker fails the build.

use blazeit_core::lockorder::{RANK_SERVE_CACHE, RANK_SERVE_SLOT};
use blazeit_core::sync::{AtomicU64, Condvar, Mutex, Ordering};
use blazeit_model::{thread, Builder, FailureKind};
use std::sync::Arc;

/// The coalescing slot, as in `serve::Slot`: protocol state under the ranked
/// `serve_slot` mutex, publication signaled through the paired condvar.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    /// The computer is executing; `waiters` sessions are parked on `ready`.
    Computing { waiters: u64 },
    /// Published atomically: the answer and the generation it was computed
    /// for swap in as one state change.
    Done { value: u64, generation: u64 },
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::ranked(
                RANK_SERVE_SLOT,
                "serve_slot",
                SlotState::Computing { waiters: 0 },
            ),
            ready: Condvar::new(),
        })
    }
}

/// The serving cache, one slot per generation (the model bumps at most once,
/// so two keys suffice) — in production this is the `CacheKey → Slot` map.
struct Protocol {
    cache: Mutex<[Option<Arc<Slot>>; 2]>,
    generation: AtomicU64,
}

fn protocol() -> Arc<Protocol> {
    Arc::new(Protocol {
        cache: Mutex::ranked(RANK_SERVE_CACHE, "serve_cache", [None, None]),
        generation: AtomicU64::new(0),
    })
}

/// What the engine would answer for generation `g` (any pure function of the
/// key works; sessions verify the result matches their key's generation).
fn answer_for(generation: u64) -> u64 {
    100 + generation
}

enum Role {
    Hit(u64, u64),
    Wait(Arc<Slot>),
    Compute(Arc<Slot>),
}

/// One session's trip through the serving layer: snapshot the generation
/// (key time), join the cache under `serve_cache`, then compute / wait / hit.
/// Returns the `(value, generation)` the session observed; the caller asserts
/// it matches the key.
fn run_session(p: &Protocol) -> (u64, u64) {
    let key_generation = p.generation.load(Ordering::SeqCst);
    let slot_index = key_generation as usize;
    let role = {
        let mut cache = p.cache.lock();
        match &cache[slot_index] {
            Some(slot) => {
                // serve_cache → serve_slot: the documented order.
                let mut state = slot.state.lock();
                match &mut *state {
                    SlotState::Done { value, generation } => Role::Hit(*value, *generation),
                    SlotState::Computing { waiters } => {
                        *waiters += 1;
                        Role::Wait(Arc::clone(slot))
                    }
                }
            }
            None => {
                let slot = Slot::new();
                cache[slot_index] = Some(Arc::clone(&slot));
                Role::Compute(slot)
            }
        }
    };
    let (value, generation) = match role {
        Role::Hit(value, generation) => (value, generation),
        Role::Wait(slot) => {
            let mut state = slot.state.lock();
            loop {
                match &*state {
                    SlotState::Done { value, generation } => break (*value, *generation),
                    SlotState::Computing { .. } => state = slot.ready.wait(state),
                }
            }
        }
        Role::Compute(slot) => {
            // Execute with NO serving lock held (as serve::compute does).
            let value = answer_for(key_generation);
            {
                let mut state = slot.state.lock();
                // One atomic publish: result and generation together.
                *state = SlotState::Done { value, generation: key_generation };
            }
            slot.ready.notify_all();
            // Generation re-check: a bump during execution makes this entry
            // answer for a key no new session will build — drop it.
            if p.generation.load(Ordering::SeqCst) != key_generation {
                p.cache.lock()[slot_index] = None;
            }
            (value, key_generation)
        }
    };
    // The stale-read invariant, on every path: whatever a session receives
    // was computed for exactly the generation its cache key named.
    assert_eq!(
        generation, key_generation,
        "session keyed at generation {key_generation} received a result for {generation}"
    );
    (value, generation)
}

/// Three sessions race an invalidating generation bump, preemption bound 2:
/// whichever session wins the vacancy check computes, same-key sessions
/// coalesce as waiters, sessions that key after the bump compute the new
/// generation. Exhaustively explored: every session's answer matches its
/// key's generation, every waiter wakes, no deadlock, lock order holds.
#[test]
fn coalescing_and_invalidation_hold_under_every_schedule() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let p = protocol();

        let sessions: Vec<_> = (0..3)
            .map(|i| {
                let p = Arc::clone(&p);
                thread::spawn_named(format!("session-{i}"), move || {
                    let (value, generation) = run_session(&p);
                    // The stale-read invariant: the answer a session
                    // receives was computed for exactly the generation its
                    // cache key named (run_session returns the slot's
                    // published pair; the key generation is pinned at join
                    // time, so any cross-generation delivery shows up as a
                    // value/generation mismatch here).
                    assert_eq!(
                        value,
                        answer_for(generation),
                        "published result inconsistent with its generation"
                    );
                })
            })
            .collect();

        let bump = {
            let p = Arc::clone(&p);
            thread::spawn_named("bump", move || {
                // Stream ingest / UDF registration / drift refresh: the data
                // generation moves, invalidating generation-0 cache keys.
                p.generation.store(1, Ordering::SeqCst);
            })
        };

        for session in sessions {
            session.join();
        }
        bump.join();

        // Post-conditions on the final cache: any surviving entry is
        // published (no computation was abandoned mid-flight) and answers
        // for its own key.
        let cache = p.cache.lock();
        for (slot_index, entry) in cache.iter().enumerate() {
            if let Some(slot) = entry {
                match &*slot.state.lock() {
                    SlotState::Done { value, generation } => {
                        assert_eq!(*generation, slot_index as u64);
                        assert_eq!(*value, answer_for(*generation));
                    }
                    SlotState::Computing { .. } => {
                        panic!("an entry was left computing after every session returned")
                    }
                }
            }
        }
    });
    assert!(
        report.schedules >= 100,
        "three sessions racing a bump at preemption bound 2 must explore \
         at least 100 schedules, got {}",
        report.schedules
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// The seeded-race canary: a torn publish that installs the result value and
/// its generation under two separate acquisitions of the slot lock. An
/// observer between the halves sees a result inconsistent with its
/// generation — the checker must find that interleaving and report a
/// replayable counterexample, or it has lost the ability to catch real
/// serving-layer races.
#[test]
fn canary_torn_result_generation_publish_is_flagged() {
    struct TornSlot {
        value: u64,
        generation: u64,
    }

    let report = Builder::new().check_report(|| {
        let slot = Arc::new(Mutex::new(TornSlot { value: answer_for(0), generation: 0 }));

        let publisher = {
            let slot = Arc::clone(&slot);
            thread::spawn_named("publish", move || {
                slot.lock().value = answer_for(1);
                // BROKEN on purpose: the lock is dropped between the result
                // and the generation, exposing a torn (value, generation)
                // pair exactly like a non-atomic serve::Slot publish would.
                slot.lock().generation = 1;
            })
        };
        let observer = {
            let slot = Arc::clone(&slot);
            thread::spawn_named("observe", move || {
                let s = slot.lock();
                assert_eq!(
                    s.value,
                    answer_for(s.generation),
                    "observed a torn (result, generation) publish"
                );
            })
        };
        publisher.join();
        observer.join();
    });

    let failure = report.failure.expect("the checker must catch the torn publish");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("torn (result, generation)"), "{}", failure.message);
    assert!(failure.schedules_to_find >= 1);
    assert!(
        failure.trace.iter().any(|l| l.file.ends_with("coalesce_protocol.rs") && l.line > 0),
        "trace must point at this file: {failure}"
    );
}

/// Acquiring `serve_slot` before `serve_cache` anywhere in the serving layer
/// is an inversion of the documented order; the ranked-lock oracle (sharing
/// its table with the static lint and the debug tracker) must flag it.
#[test]
fn canary_serve_lock_inversion_is_flagged() {
    let report = Builder::new().check_report(|| {
        let p = protocol();
        let slot = Slot::new();
        let t = {
            let p = Arc::clone(&p);
            let slot = Arc::clone(&slot);
            thread::spawn_named("backwards", move || {
                let _state = slot.state.lock();
                let _cache = p.cache.lock();
            })
        };
        t.join();
    });
    let failure = report.failure.expect("the rank oracle must fire");
    assert_eq!(failure.kind, FailureKind::LockOrder);
    assert!(
        failure.message.contains("'serve_cache' (rank 1)")
            && failure.message.contains("'serve_slot' (rank 2)"),
        "{}",
        failure.message
    );
}
