//! Model checks for `blazeit_nn::parallel::Latch` — the countdown latch behind
//! `run_scoped`'s cooperative wait.
//!
//! The latch is the one place the engine blocks on a condvar, and its wait is
//! *cooperative* (the waiting submitter steals queued pool jobs). Under the
//! `model` feature the condvar wait never times out, so these tests prove the
//! protocol is lost-wakeup-free **on notify placement alone** — the 200 µs
//! timeout in production is a queue-recheck heartbeat, not a correctness
//! crutch. A lost wakeup here would present as a deadlock in some schedule,
//! and the explorer visits all of them (within the preemption bound).

use blazeit_model::{sync, thread, Builder, FailureKind};
use blazeit_nn::parallel::{Job, Latch};
use std::sync::Arc;

/// Two counted jobs complete from two model threads while the submitter waits
/// with nothing to steal: the pure blocking path. Every schedule must
/// terminate — the `remaining == 0` re-check and the wait share the critical
/// section `complete_one` notifies under, so no completion can slip through.
#[test]
fn latch_wait_is_lost_wakeup_free() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let latch = Arc::new(Latch::new(2));
        let a = {
            let latch = Arc::clone(&latch);
            thread::spawn_named("worker-a", move || latch.complete_one())
        };
        let b = {
            let latch = Arc::clone(&latch);
            thread::spawn_named("worker-b", move || latch.complete_one())
        };
        latch.wait_with_steal(|| None);
        assert!(latch.is_done());
        a.join();
        b.join();
    });
    assert!(report.schedules >= 10, "got {}", report.schedules);
}

/// The cooperative path: one counted job sits in the steal queue (as
/// `run_scoped` leaves sub-jobs in the shared pool queue) while the other
/// completes from a worker thread. The waiting submitter must always drain
/// the queued job itself when it gets there first — blocking a worker on the
/// latch while its own job sits in the queue is exactly the nested-pool
/// deadlock the cooperative wait exists to prevent.
#[test]
fn cooperative_steal_drains_queued_jobs_in_every_schedule() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let latch = Arc::new(Latch::new(2));
        let queue: Arc<sync::Mutex<Vec<Job>>> = Arc::new(sync::Mutex::new(Vec::new()));
        {
            let latch = Arc::clone(&latch);
            queue.lock().push(Box::new(move || latch.complete_one()) as Job);
        }
        let worker = {
            let latch = Arc::clone(&latch);
            thread::spawn_named("worker", move || latch.complete_one())
        };
        let q = Arc::clone(&queue);
        latch.wait_with_steal(move || q.lock().pop());
        assert!(latch.is_done());
        assert!(queue.lock().is_empty(), "the queued job must have run");
        worker.join();
    });
    assert!(report.schedules >= 10, "got {}", report.schedules);
}

/// The canary for the wait path: a check-then-block protocol whose flag test
/// and condvar wait are separate critical sections — the classic lost wakeup
/// the real `Latch::wait_with_steal` is *not* allowed to have. The checker
/// must report the schedule where the completion slips between the check and
/// the block as a deadlock, with the parked thread named.
#[test]
fn canary_check_then_block_wait_is_flagged() {
    let report = Builder::new().check_report(|| {
        let state = Arc::new((sync::Mutex::new(1usize), sync::Condvar::new()));
        let completer = {
            let state = Arc::clone(&state);
            thread::spawn_named("completer", move || {
                let (count, done) = &*state;
                let mut remaining = count.lock();
                *remaining -= 1;
                if *remaining == 0 {
                    done.notify_all();
                }
            })
        };
        let (count, done) = &*state;
        // BROKEN on purpose: the emptiness check and the wait are separate
        // critical sections, so the notify can fire in between.
        if *count.lock() != 0 {
            let guard = count.lock();
            let _guard = done.wait(guard);
        }
        completer.join();
    });
    let failure = report.failure.expect("the lost wakeup must surface");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("parked on"), "{}", failure.message);
    assert!(
        failure.trace.iter().any(|l| l.file.ends_with("latch.rs")),
        "trace must point at this file: {failure}"
    );
}
