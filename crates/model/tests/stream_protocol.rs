//! Exhaustive model check of the stream `advance` / `Subscription` poll /
//! background retrain-publication protocol.
//!
//! This replaces the PR-6 wall-clock race test
//! (`drift_refresh_never_races_an_in_flight_subscription`), which drove the
//! real engine on two OS threads and hoped the scheduler produced interesting
//! interleavings. Here the same protocol shape — the ranked
//! `monitor → live_index → nn_cache` locks and the one-generation swap rule —
//! is explored under **every** schedule up to the preemption bound, so the
//! invariants hold by enumeration, not by luck:
//!
//! * no poll ever observes a `LiveIndex` whose NN and score index come from
//!   different generations;
//! * every path respects the documented lock order (the ranked-mutex oracle
//!   fails the run otherwise);
//! * no schedule deadlocks.
//!
//! The `canary_*` test is the seeded race: a deliberately broken two-thread
//! swap protocol the checker **must** flag, wired into CI next to the lint
//! canary so a regression that stops the checker from finding races fails the
//! build.

use blazeit_core::lockorder::{RANK_LIVE_INDEX, RANK_MONITOR, RANK_NN_CACHE};
use blazeit_core::sync::Mutex;
use blazeit_model::{thread, Builder, FailureKind};
use std::sync::Arc;

/// The published index state, mirroring `context::LiveIndex`: the specialized
/// NN and the score index it produced must always swap as one generation.
#[derive(Clone, Copy)]
struct LiveIndex {
    nn_generation: u64,
    score_generation: u64,
    frames: u64,
}

/// The shared state of the streaming protocol, with the same ranked locks the
/// production `VideoContext` / `StreamState` construct (`Mutex::ranked` enrolls
/// them in the model checker's hierarchy oracle exactly as `with_parts` does).
struct Protocol {
    /// Drift monitor (rank 3): frames seen since the last drift check.
    monitor: Mutex<u64>,
    /// The live index (rank 4): swapped atomically, one generation at a time.
    live_index: Mutex<LiveIndex>,
    /// Specialized-NN cache (rank 5): generation of the cached network.
    nn_cache: Mutex<u64>,
}

fn protocol() -> Arc<Protocol> {
    Arc::new(Protocol {
        monitor: Mutex::ranked(RANK_MONITOR, "monitor", 0),
        live_index: Mutex::ranked(
            RANK_LIVE_INDEX,
            "live_index",
            LiveIndex { nn_generation: 0, score_generation: 0, frames: 0 },
        ),
        nn_cache: Mutex::ranked(RANK_NN_CACHE, "nn_cache", 0),
    })
}

/// Three protocol threads (plus the main thread), preemption bound 2: ingest
/// appends under monitor→live_index, the subscription polls the live index,
/// and the retrain publishes a new generation under monitor→live_index before
/// refreshing the NN cache. Exhaustively explored: generation coherence on
/// every poll and every tick, lock-order compliance on every path, no
/// deadlock in any schedule.
#[test]
fn advance_poll_and_retrain_publish_hold_under_every_schedule() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let p = protocol();

        let ingest = {
            let p = Arc::clone(&p);
            thread::spawn_named("ingest", move || {
                for _ in 0..2 {
                    // stream.rs order: the drift monitor is acquired before
                    // the live index on the advance path.
                    let mut seen = p.monitor.lock();
                    *seen += 1;
                    let mut idx = p.live_index.lock();
                    idx.frames += 1;
                    assert_eq!(
                        idx.nn_generation, idx.score_generation,
                        "ingest appended into a mixed-generation index"
                    );
                }
            })
        };

        let poll = {
            let p = Arc::clone(&p);
            thread::spawn_named("poll", move || {
                for _ in 0..2 {
                    let idx = p.live_index.lock();
                    assert_eq!(
                        idx.nn_generation, idx.score_generation,
                        "tick answered from a mixed generation"
                    );
                }
            })
        };

        let publish = {
            let p = Arc::clone(&p);
            thread::spawn_named("publish", move || {
                // The retrain trains offline (no locks), then publishes:
                // monitor (re-arm) → live_index (one-shot generation swap) →
                // nn_cache (install the new specialized NN).
                let mut seen = p.monitor.lock();
                *seen = 0;
                {
                    let mut idx = p.live_index.lock();
                    idx.nn_generation += 1;
                    idx.score_generation += 1;
                }
                *p.nn_cache.lock() += 1;
            })
        };

        ingest.join();
        poll.join();
        publish.join();

        let idx = p.live_index.lock();
        assert_eq!(idx.frames, 2, "every tick was ingested exactly once");
        assert_eq!(idx.nn_generation, 1, "the retrain published exactly once");
        assert_eq!(*p.nn_cache.lock(), 1);
    });
    assert!(
        report.schedules >= 100,
        "three racing threads at bound 2 must explore many schedules, got {}",
        report.schedules
    );
}

/// The seeded-race canary: a deliberately broken swap protocol that releases
/// the live-index lock between the NN bump and the score bump. The checker
/// must flag it with a replayable `file:line` counterexample — if this test
/// fails, the model checker has lost the ability to find real races.
#[test]
fn canary_broken_two_thread_swap_is_flagged() {
    let report = Builder::new().check_report(|| {
        let idx =
            Arc::new(Mutex::new(LiveIndex { nn_generation: 0, score_generation: 0, frames: 0 }));

        let publisher = {
            let idx = Arc::clone(&idx);
            thread::spawn_named("publish", move || {
                idx.lock().nn_generation += 1;
                // BROKEN on purpose: the lock is dropped between the two
                // halves of the swap, exposing a mixed generation.
                idx.lock().score_generation += 1;
            })
        };
        let poller = {
            let idx = Arc::clone(&idx);
            thread::spawn_named("poll", move || {
                let g = idx.lock();
                assert_eq!(
                    g.nn_generation, g.score_generation,
                    "tick answered from a mixed generation"
                );
            })
        };
        publisher.join();
        poller.join();
    });

    let failure = report.failure.expect("the checker must catch the torn swap");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("mixed generation"), "{}", failure.message);
    assert!(failure.schedules_to_find >= 1);
    // The counterexample is a concrete interleaving with resolved call sites.
    assert!(
        failure.trace.iter().any(|l| l.file.ends_with("stream_protocol.rs") && l.line > 0),
        "trace must point at this file: {failure}"
    );
    let rendered = failure.to_string();
    assert!(rendered.contains("concurrency model check FAILED"), "{rendered}");
    assert!(rendered.contains("counterexample schedule"), "{rendered}");
    assert!(rendered.contains("deterministic"), "{rendered}");
}

/// An inverted acquisition (live_index before monitor) anywhere in the
/// protocol is caught by the ranked-lock oracle on the schedule that triggers
/// it — the static lint and the debug tracker share the same table, so all
/// three layers agree on what a violation is.
#[test]
fn canary_lock_order_inversion_is_flagged() {
    let report = Builder::new().check_report(|| {
        let p = protocol();
        let t = {
            let p = Arc::clone(&p);
            thread::spawn_named("backwards", move || {
                let _idx = p.live_index.lock();
                let _mon = p.monitor.lock();
            })
        };
        t.join();
    });
    let failure = report.failure.expect("the rank oracle must fire");
    assert_eq!(failure.kind, FailureKind::LockOrder);
    assert!(
        failure.message.contains("'monitor' (rank 3)")
            && failure.message.contains("'live_index' (rank 4)"),
        "{}",
        failure.message
    );
}
