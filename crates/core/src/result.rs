//! Query results and execution reports.

use crate::obs::QueryTrace;
use crate::plan::QueryPlan;
use blazeit_detect::clock::CostBreakdown;
use blazeit_frameql::FrameQlRow;
use blazeit_videostore::FrameIndex;
use serde::{Deserialize, Serialize};

/// How an aggregate query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateMethod {
    /// The specialized NN's answer was returned directly (query rewriting, Section 6.2).
    QueryRewriting,
    /// Sampling with the specialized NN as a control variate (Section 6.3).
    ControlVariates,
    /// Plain adaptive sampling (no specialized NN available or trainable).
    NaiveSampling,
    /// Exact computation (detector on every frame).
    Exact,
}

/// One video's contribution to a catalog-wide aggregate
/// ([`QueryOutput::CatalogAggregate`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoAggregate {
    /// The source video's registered name.
    pub video: String,
    /// This video's estimated (or exact) value.
    pub value: f64,
    /// Standard error of this video's estimate, when sampled.
    pub standard_error: Option<f64>,
    /// Detector invocations charged by this video's sub-query.
    pub detection_calls: u64,
    /// How this video's estimate was produced.
    pub method: AggregateMethod,
}

/// A frame tagged with the registered video it came from (multi-video scrubbing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourcedFrame {
    /// The source video's registered name.
    pub video: String,
    /// The matching frame index within that video.
    pub frame: FrameIndex,
}

/// A relation row tagged with the registered video it came from (multi-video
/// selection).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourcedRow {
    /// The source video's registered name.
    pub video: String,
    /// The matching row of that video's FrameQL relation.
    pub row: FrameQlRow,
}

/// The payload of a query result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryOutput {
    /// An aggregate value (FCOUNT / COUNT / COUNT DISTINCT).
    Aggregate {
        /// The estimated (or exact) value.
        value: f64,
        /// Standard error of the estimate, when sampled.
        standard_error: Option<f64>,
        /// Number of frames on which object detection was invoked.
        detection_calls: u64,
        /// How the estimate was produced.
        method: AggregateMethod,
    },
    /// Frames matching a scrubbing query, in the order they were found.
    Frames {
        /// Matching frame indices (verified by the full detector).
        frames: Vec<FrameIndex>,
        /// Number of frames on which object detection was invoked.
        detection_calls: u64,
    },
    /// Object rows matching a selection query.
    Rows {
        /// Matching rows of the FrameQL relation.
        rows: Vec<FrameQlRow>,
        /// Number of frames on which object detection was invoked.
        detection_calls: u64,
    },
    /// A catalog-wide aggregate from a multi-video (`FROM a, b` / `FROM *`) query:
    /// the sum of per-video estimates with a composed confidence interval.
    CatalogAggregate {
        /// The catalog-wide total: the sum of the per-video estimates.
        value: f64,
        /// Composed standard error: the root-sum-square of the per-video standard
        /// errors (the videos' samplers are independent). `None` when every
        /// sub-query was exact.
        standard_error: Option<f64>,
        /// Total detector invocations across every video.
        detection_calls: u64,
        /// The per-video estimates the total was composed from, in `FROM` order.
        per_video: Vec<VideoAggregate>,
    },
    /// Frames matching a multi-video scrubbing query, tagged with their source
    /// video, in global verification (descending-confidence) order.
    CatalogFrames {
        /// Matching `(video, frame)` pairs (verified by the full detector).
        frames: Vec<SourcedFrame>,
        /// Total detector invocations across every video.
        detection_calls: u64,
    },
    /// Rows matching a multi-video selection query, tagged with their source video
    /// and concatenated in `FROM`-clause order.
    CatalogRows {
        /// Matching rows, each tagged with the video it came from.
        rows: Vec<SourcedRow>,
        /// Total detector invocations across every video.
        detection_calls: u64,
    },
    /// The rendered plan of an `EXPLAIN <query>` statement (nothing was executed and
    /// nothing was charged to the simulated clock).
    Explain {
        /// The plan the optimizer chose; render it with `plan.to_string()`.
        plan: QueryPlan,
    },
    /// The result of an `EXPLAIN ANALYZE <query>` statement: the query *was*
    /// executed (and charged to the simulated clock), and the actual span tree
    /// is attached alongside the chosen plan. Render the tree with
    /// `trace.to_string()`; its per-span simulated costs sum exactly to the
    /// enclosing [`QueryResult::cost`].
    ExplainAnalyze {
        /// The plan the optimizer chose.
        plan: QueryPlan,
        /// The recorded execution trace.
        trace: QueryTrace,
    },
}

impl QueryOutput {
    /// The aggregate value — per-video for [`QueryOutput::Aggregate`], the
    /// catalog-wide total for [`QueryOutput::CatalogAggregate`].
    pub fn aggregate_value(&self) -> Option<f64> {
        match self {
            QueryOutput::Aggregate { value, .. } | QueryOutput::CatalogAggregate { value, .. } => {
                Some(*value)
            }
            _ => None,
        }
    }

    /// The standard error of the (possibly composed) aggregate estimate.
    pub fn aggregate_standard_error(&self) -> Option<f64> {
        match self {
            QueryOutput::Aggregate { standard_error, .. }
            | QueryOutput::CatalogAggregate { standard_error, .. } => *standard_error,
            _ => None,
        }
    }

    /// The per-video estimates behind a catalog-wide aggregate.
    pub fn per_video_aggregates(&self) -> Option<&[VideoAggregate]> {
        match self {
            QueryOutput::CatalogAggregate { per_video, .. } => Some(per_video),
            _ => None,
        }
    }

    /// The matched frames, if this is a single-video scrubbing result.
    pub fn frames(&self) -> Option<&[FrameIndex]> {
        match self {
            QueryOutput::Frames { frames, .. } => Some(frames),
            _ => None,
        }
    }

    /// The matched `(video, frame)` pairs, if this is a multi-video scrubbing result.
    pub fn sourced_frames(&self) -> Option<&[SourcedFrame]> {
        match self {
            QueryOutput::CatalogFrames { frames, .. } => Some(frames),
            _ => None,
        }
    }

    /// The matched rows, if this is a single-video selection result.
    pub fn rows(&self) -> Option<&[FrameQlRow]> {
        match self {
            QueryOutput::Rows { rows, .. } => Some(rows),
            _ => None,
        }
    }

    /// The matched source-tagged rows, if this is a multi-video selection result.
    pub fn sourced_rows(&self) -> Option<&[SourcedRow]> {
        match self {
            QueryOutput::CatalogRows { rows, .. } => Some(rows),
            _ => None,
        }
    }

    /// The chosen plan, if this is an `EXPLAIN` (or `EXPLAIN ANALYZE`) result.
    pub fn explain_plan(&self) -> Option<&QueryPlan> {
        match self {
            QueryOutput::Explain { plan } | QueryOutput::ExplainAnalyze { plan, .. } => Some(plan),
            _ => None,
        }
    }

    /// The recorded execution trace, if this is an `EXPLAIN ANALYZE` result.
    pub fn analyze_trace(&self) -> Option<&QueryTrace> {
        match self {
            QueryOutput::ExplainAnalyze { trace, .. } => Some(trace),
            _ => None,
        }
    }

    /// Number of detector invocations used to produce the result.
    pub fn detection_calls(&self) -> u64 {
        match self {
            QueryOutput::Aggregate { detection_calls, .. }
            | QueryOutput::Frames { detection_calls, .. }
            | QueryOutput::Rows { detection_calls, .. }
            | QueryOutput::CatalogAggregate { detection_calls, .. }
            | QueryOutput::CatalogFrames { detection_calls, .. }
            | QueryOutput::CatalogRows { detection_calls, .. } => *detection_calls,
            QueryOutput::Explain { .. } => 0,
            QueryOutput::ExplainAnalyze { trace, .. } => {
                trace.counter_total(crate::obs::COUNTER_DETECTOR_CALLS)
            }
        }
    }
}

/// A complete query result: output plus cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The query text that produced this result.
    pub query: String,
    /// The result payload.
    pub output: QueryOutput,
    /// Simulated cost incurred by this query (per category).
    pub cost: CostBreakdown,
    /// Wall-clock seconds the engine spent executing the query (diagnostic only; the
    /// paper's runtimes correspond to the simulated cost).
    pub wall_secs: f64,
}

impl QueryResult {
    /// Total simulated runtime attributed to this query, excluding video decode (the
    /// paper excludes decode time from all reported runtimes).
    pub fn runtime_secs(&self) -> f64 {
        self.cost.total() - self.cost.decode
    }

    /// Simulated runtime excluding both decode and model training — the paper's
    /// "BlazeIt (no train)" / "indexed" accounting.
    pub fn runtime_secs_excluding_training(&self) -> f64 {
        self.runtime_secs() - self.cost.training
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_accessors() {
        let agg = QueryOutput::Aggregate {
            value: 1.5,
            standard_error: Some(0.02),
            detection_calls: 100,
            method: AggregateMethod::ControlVariates,
        };
        assert_eq!(agg.aggregate_value(), Some(1.5));
        assert_eq!(agg.detection_calls(), 100);
        assert!(agg.frames().is_none());
        assert!(agg.rows().is_none());

        let frames = QueryOutput::Frames { frames: vec![1, 2, 3], detection_calls: 7 };
        assert_eq!(frames.frames().unwrap().len(), 3);
        assert_eq!(frames.detection_calls(), 7);

        let rows = QueryOutput::Rows { rows: vec![], detection_calls: 0 };
        assert_eq!(rows.rows().unwrap().len(), 0);
    }

    #[test]
    fn runtime_excludes_decode_and_optionally_training() {
        let result = QueryResult {
            query: "SELECT FCOUNT(*) FROM taipei".into(),
            output: QueryOutput::Aggregate {
                value: 1.0,
                standard_error: None,
                detection_calls: 0,
                method: AggregateMethod::QueryRewriting,
            },
            cost: CostBreakdown {
                detection: 10.0,
                specialized: 5.0,
                training: 20.0,
                filter: 1.0,
                decode: 100.0,
                other: 0.0,
            },
            wall_secs: 0.1,
        };
        assert!((result.runtime_secs() - 36.0).abs() < 1e-12);
        assert!((result.runtime_secs_excluding_training() - 16.0).abs() < 1e-12);
    }
}
