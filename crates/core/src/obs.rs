//! Observability: hierarchical query tracing and the process-wide metrics
//! registry.
//!
//! Two subsystems live here, both routed through the [`crate::sync`] shim so
//! the model checker and the `sync-primitive` lint stay valid:
//!
//! * **Query tracing** — a per-query [`TraceCollector`] assembles a
//!   [`QueryTrace`]: a tree of [`TraceSpan`]s (parse → plan → per-video
//!   sub-plan → train / score / detect-verify / merge, plus the serving
//!   layer's admission wait), each recording wall time, the simulated-cost
//!   delta by [`CostCategory`], and counters (frames scored, detector calls,
//!   cache hits). Spans are RAII guards ([`span`]): opening one gives the
//!   thread a *private* [`SimClock`] charge tag, so everything charged inside
//!   the span lands on the span's own ledger; closing it restores the previous
//!   tag. At assembly time ([`CollectorGuard::finish`]) every span ledger is
//!   snapshotted and merged back into the ambient tag in span order — the same
//!   fold [`SimClock::breakdown`] performs — so the trace's per-span costs sum
//!   to the session's ledger delta **exactly** (bitwise, not within an
//!   epsilon). `EXPLAIN ANALYZE` is the user-facing surface: it executes the
//!   query under a collector and renders the span tree.
//!
//!   **Overhead policy:** with no collector installed on the thread, [`span`]
//!   reads one thread-local `Option`, finds `None`, and returns an inert guard
//!   — no allocation, no lock, no clock traffic (the label closure is never
//!   evaluated). The `obs_overhead` bench pins this under a budget in CI.
//!
//! * **Metrics registry** — process-wide [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed latency [`Histogram`]s ([`metrics`]) instrumenting serving
//!   (admission queue depth and wait, cache hits/misses/coalesced/evicted/
//!   invalidated), streaming (frames ingested, drift score, retrain
//!   outcomes), the index store (reads/writes/evictions/heals), and — read
//!   from `blazeit_nn::parallel` — the worker pool. [`prometheus_exposition`]
//!   renders everything in Prometheus text exposition format, served by the
//!   `blazeit-server` `METRICS` command.
//!
//! The collector's internal lock is enrolled in the ranked hierarchy as
//! `obs_trace`, the **highest** rank: spans open and close while engine locks
//! are held, so the collector lock must always be acquirable and is never held
//! across any other acquisition.

use crate::lockorder::{lock_ordered, RANK_OBS_TRACE};
use crate::sync::{AtomicU64, Mutex, OnceLock, Ordering};
use blazeit_detect::clock::{CostBreakdown, CostCategory};
use blazeit_detect::SimClock;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------------
// Query tracing.
// ---------------------------------------------------------------------------------

/// Span counter name: frames scored by a specialized network.
pub const COUNTER_FRAMES_SCORED: &str = "frames_scored";
/// Span counter name: full object-detector invocations.
pub const COUNTER_DETECTOR_CALLS: &str = "detector_calls";
/// Span counter name: engine-level cache hits (specialized NN / score index).
pub const COUNTER_CACHE_HITS: &str = "cache_hits";

/// Span tags live far above the serving layer's session tags (which count up
/// from 1), so a span's private ledger can never collide with a session's.
const SPAN_TAG_BASE: u64 = 1 << 48;

/// The next unused span charge tag, global so concurrently traced queries
/// (several `EXPLAIN ANALYZE` through one server) never share a ledger.
static NEXT_SPAN_TAG: AtomicU64 = AtomicU64::new(SPAN_TAG_BASE);

/// One node of a [`QueryTrace`]: a lifecycle stage with its wall time,
/// simulated-cost delta, and counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// The span's index in [`QueryTrace::spans`] (creation order; a parent is
    /// always created before its children, so `parent < id`).
    pub id: u32,
    /// The enclosing span, or `None` for a root.
    pub parent: Option<u32>,
    /// The stage label (`"parse"`, `"video 'taipei'"`, `"detect-verify"`, …).
    pub label: String,
    /// Wall-clock seconds between the span's open and close.
    pub wall_secs: f64,
    /// Simulated cost charged while this span's tag was active, *exclusive* of
    /// child spans (each child charges its own tag).
    pub cost: CostBreakdown,
    /// Call counters recorded inside this span (see the `COUNTER_*` names).
    pub counters: Vec<(String, u64)>,
}

/// The assembled trace of one executed query: every span in creation order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// All spans; `spans[i].id == i`.
    pub spans: Vec<TraceSpan>,
}

impl QueryTrace {
    /// The sum of every span's simulated-cost delta, folded in span order with
    /// [`CostBreakdown::plus`] — by construction bitwise equal to what the
    /// collector merged back into the session's ledger.
    pub fn total_cost(&self) -> CostBreakdown {
        self.spans.iter().fold(CostBreakdown::default(), |acc, s| acc.plus(&s.cost))
    }

    /// The sum of every span's `counter` entries.
    pub fn counter_total(&self, counter: &str) -> u64 {
        self.spans
            .iter()
            .flat_map(|s| s.counters.iter())
            .filter(|(name, _)| name == counter)
            .map(|&(_, n)| n)
            .sum()
    }

    /// Children of `id` in creation order (`None` = roots).
    fn children(&self, id: Option<u32>) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(move |s| s.parent == id)
    }

    fn render_span(&self, span: &TraceSpan, depth: usize, width: usize, out: &mut String) {
        let indent = "  ".repeat(depth + 1);
        let mut line = format!("{indent}{label:<w$}", label = span.label, w = width - indent.len());
        line.push_str(&format!("  wall {:>9.3}ms", span.wall_secs * 1e3));
        line.push_str(&format!("  sim {:>11.6}s", span.cost.total()));
        let mut notes: Vec<String> = CostCategory::ALL
            .iter()
            .filter(|&&c| span.cost.get(c) > 0.0)
            .map(|&c| format!("{} {:.6}s", c.label(), span.cost.get(c)))
            .collect();
        notes.extend(span.counters.iter().map(|(name, n)| format!("{name}={n}")));
        if !notes.is_empty() {
            line.push_str(&format!("  [{}]", notes.join(", ")));
        }
        out.push_str(&line);
        out.push('\n');
        for child in self.children(Some(span.id)) {
            self.render_span(child, depth + 1, width, out);
        }
    }

    fn depth_of(&self, span: &TraceSpan) -> usize {
        let mut depth = 0usize;
        let mut parent = span.parent;
        while let Some(p) = parent {
            depth += 1;
            parent = self.spans.get(p as usize).and_then(|s| s.parent);
        }
        depth
    }
}

/// Renders the span tree, mirroring the `EXPLAIN` sub-plan layout: two-space
/// indentation per tree level under an `EXPLAIN ANALYZE` header, one line per
/// span with wall time, simulated cost (total plus nonzero categories), and
/// counters. The grand total line repeats [`QueryTrace::total_cost`], which is
/// bitwise equal to the query's ledger charge.
impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .spans
            .iter()
            .map(|s| 2 * (self.depth_of(s) + 1) + s.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = String::from("EXPLAIN ANALYZE\n");
        for root in self.children(None) {
            self.render_span(root, 0, width, &mut out);
        }
        let total = self.total_cost();
        out.push_str(&format!(
            "  total: {:.6} simulated seconds over {} spans\n",
            total.total(),
            self.spans.len()
        ));
        f.write_str(out.trim_end_matches('\n'))
    }
}

/// An in-flight span record, completed in place when its guard drops.
struct SpanRecord {
    parent: Option<u32>,
    label: String,
    tag: u64,
    wall_secs: f64,
    counters: Vec<(String, u64)>,
}

/// Collects the spans of one traced query. Created by [`install_collector`];
/// its lock ranks `obs_trace` (highest) so spans can record themselves while
/// any engine lock is held.
pub struct TraceCollector {
    clock: Arc<SimClock>,
    state: Mutex<Vec<SpanRecord>>,
}

impl TraceCollector {
    fn open_span(&self, label: String, parent: Option<u32>) -> (u32, u64) {
        let tag = NEXT_SPAN_TAG.fetch_add(1, Ordering::Relaxed);
        let mut spans = lock_ordered(RANK_OBS_TRACE, "obs_trace", &self.state);
        let id = spans.len() as u32;
        spans.push(SpanRecord { parent, label, tag, wall_secs: 0.0, counters: Vec::new() });
        (id, tag)
    }

    fn close_span(&self, id: u32, wall_secs: f64) {
        let mut spans = lock_ordered(RANK_OBS_TRACE, "obs_trace", &self.state);
        if let Some(record) = spans.get_mut(id as usize) {
            record.wall_secs = wall_secs;
        }
    }

    fn add_count(&self, id: u32, counter: &'static str, n: u64) {
        let mut spans = lock_ordered(RANK_OBS_TRACE, "obs_trace", &self.state);
        let Some(record) = spans.get_mut(id as usize) else { return };
        match record.counters.iter_mut().find(|(name, _)| name == counter) {
            Some(slot) => slot.1 += n,
            None => record.counters.push((counter.to_string(), n)),
        }
    }

    /// Snapshots every span ledger, merges each back into `ambient_tag` in
    /// span order (the exactness-preserving fold), and returns the trace.
    fn assemble(&self, ambient_tag: u64) -> QueryTrace {
        let records: Vec<SpanRecord> = {
            let mut spans = lock_ordered(RANK_OBS_TRACE, "obs_trace", &self.state);
            std::mem::take(&mut *spans)
        };
        let spans = records
            .into_iter()
            .enumerate()
            .map(|(id, record)| {
                let cost = self.clock.breakdown_for(record.tag);
                self.clock.merge_tag(record.tag, ambient_tag);
                TraceSpan {
                    id: id as u32,
                    parent: record.parent,
                    label: record.label,
                    wall_secs: record.wall_secs,
                    cost,
                    counters: record.counters,
                }
            })
            .collect();
        QueryTrace { spans }
    }
}

/// The thread's tracing state: which collector is installed and which span is
/// innermost. A plain `RefCell` — thread-local by construction; it crosses
/// threads only by value, via [`TraceContext`].
struct ActiveTrace {
    collector: Arc<TraceCollector>,
    current: Option<u32>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Keeps a [`TraceCollector`] installed on this thread; dropping (or
/// [`finish`](CollectorGuard::finish)ing) it restores the previous state.
pub struct CollectorGuard {
    collector: Arc<TraceCollector>,
    /// `Some(previous)` until restored; `None` after (drop must not restore
    /// twice when `finish` already has).
    saved: Option<Option<ActiveTrace>>,
}

/// Installs a fresh trace collector on this thread: every [`span`] opened
/// until the guard is finished (or dropped) records into it, on this thread
/// and — via [`TraceContext`] — on worker threads. `clock` is the clock whose
/// per-tag ledgers the spans charge; assembly merges them back into the tag
/// that is ambient when [`CollectorGuard::finish`] runs.
pub fn install_collector(clock: Arc<SimClock>) -> CollectorGuard {
    let collector = Arc::new(TraceCollector {
        clock,
        state: Mutex::ranked(RANK_OBS_TRACE, "obs_trace", Vec::new()),
    });
    let previous = ACTIVE.with(|slot| {
        slot.borrow_mut().replace(ActiveTrace { collector: Arc::clone(&collector), current: None })
    });
    CollectorGuard { collector, saved: Some(previous) }
}

impl CollectorGuard {
    fn restore(&mut self) {
        if let Some(previous) = self.saved.take() {
            ACTIVE.with(|slot| *slot.borrow_mut() = previous);
        }
    }

    /// Uninstalls the collector and assembles the [`QueryTrace`]: every span's
    /// private ledger is snapshotted (that snapshot is the span's `cost`) and
    /// merged into this thread's ambient charge tag in span order, so the
    /// trace total and the ambient ledger delta are the identical fold.
    pub fn finish(mut self) -> QueryTrace {
        self.restore();
        self.collector.assemble(SimClock::charge_tag())
    }
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        // An abandoned guard (error path) still restores the thread state and
        // re-attributes span charges, so no ledger is stranded on a dead tag.
        if self.saved.is_some() {
            self.restore();
            let _ = self.collector.assemble(SimClock::charge_tag());
        }
    }
}

/// An RAII span: created by [`span`], records itself into the installed
/// collector when dropped. Inert (a no-op wrapper) when no collector is
/// installed.
pub struct SpanGuard {
    armed: Option<ArmedSpan>,
}

struct ArmedSpan {
    collector: Arc<TraceCollector>,
    id: u32,
    parent: Option<u32>,
    prev_tag: u64,
    started: Instant,
}

/// Opens a span labeled `label` if a collector is installed on this thread;
/// otherwise returns an inert guard after a single thread-local read (the
/// near-zero-overhead contract — see the module docs). Use [`span_with`] when
/// building the label costs something.
pub fn span(label: &'static str) -> SpanGuard {
    span_with(|| label.to_string())
}

/// Like [`span`], but the label closure is only evaluated when a collector is
/// actually installed — dynamic labels (`format!("video '{name}'")`) cost
/// nothing on untraced queries.
pub fn span_with(label: impl FnOnce() -> String) -> SpanGuard {
    let opened = ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let active = slot.as_mut()?;
        let collector = Arc::clone(&active.collector);
        let parent = active.current;
        let (id, tag) = collector.open_span(label(), parent);
        active.current = Some(id);
        Some((collector, id, parent, tag))
    });
    let Some((collector, id, parent, tag)) = opened else { return SpanGuard { armed: None } };
    SpanGuard {
        armed: Some(ArmedSpan {
            collector,
            id,
            parent,
            prev_tag: SimClock::swap_charge_tag(tag),
            started: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else { return };
        SimClock::swap_charge_tag(armed.prev_tag);
        ACTIVE.with(|slot| {
            if let Some(active) = slot.borrow_mut().as_mut() {
                active.current = armed.parent;
            }
        });
        armed.collector.close_span(armed.id, armed.started.elapsed().as_secs_f64());
    }
}

/// Records an already-measured stage as an immediately-closed child of the
/// current span: `wall_secs` was captured elsewhere (parse and plan run at
/// prepare time, before any collector exists) and the span charges nothing to
/// the clock. A no-op when nothing is being traced.
pub fn record_span(label: &'static str, wall_secs: f64) {
    let target = ACTIVE.with(|slot| {
        let slot = slot.borrow();
        let active = slot.as_ref()?;
        Some((Arc::clone(&active.collector), active.current))
    });
    if let Some((collector, parent)) = target {
        let (id, _tag) = collector.open_span(label.to_string(), parent);
        collector.close_span(id, wall_secs);
    }
}

/// Adds `n` to `counter` on the innermost open span of this thread's trace
/// (a no-op when nothing is being traced).
pub fn count(counter: &'static str, n: u64) {
    let target = ACTIVE.with(|slot| {
        let slot = slot.borrow();
        let active = slot.as_ref()?;
        Some((Arc::clone(&active.collector), active.current?))
    });
    if let Some((collector, id)) = target {
        collector.add_count(id, counter, n);
    }
}

/// A clonable handle to this thread's tracing state, for carrying a trace
/// across a thread boundary (the session fan-out captures one per task, just
/// as the worker pool carries the submitter's charge tag).
#[derive(Clone)]
pub struct TraceContext {
    collector: Arc<TraceCollector>,
    current: Option<u32>,
}

/// This thread's tracing state, or `None` when nothing is being traced.
pub fn trace_context() -> Option<TraceContext> {
    ACTIVE.with(|slot| {
        let slot = slot.borrow();
        let active = slot.as_ref()?;
        Some(TraceContext { collector: Arc::clone(&active.collector), current: active.current })
    })
}

impl TraceContext {
    /// Runs `f` with this context installed as the thread's tracing state
    /// (spans opened inside attach under the captured span), restoring the
    /// previous state afterwards — including on unwind.
    pub fn enter<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Option<ActiveTrace>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                if let Some(previous) = self.0.take() {
                    ACTIVE.with(|slot| *slot.borrow_mut() = previous);
                }
            }
        }
        let previous = ACTIVE.with(|slot| {
            slot.borrow_mut().replace(ActiveTrace {
                collector: Arc::clone(&self.collector),
                current: self.current,
            })
        });
        let _restore = Restore(Some(previous));
        f()
    }
}

// ---------------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as its bit pattern in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Log-bucketed latency histogram bucket count: upper bounds double from 1µs,
/// covering `1µs … ~8.4s` plus the implicit `+Inf` overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A latency histogram with logarithmic buckets (powers of two from 1µs).
/// The sum is accumulated in integer microseconds, so it stays a single
/// atomic; exposition renders it back as seconds with µs resolution.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The upper bound (seconds, inclusive) of bucket `i`.
    pub fn le_bound(i: usize) -> f64 {
        1e-6 * (1u64 << i.min(63)) as f64
    }

    /// Records one observation of `seconds` (ignored when negative or
    /// non-finite, mirroring [`SimClock::charge`]).
    pub fn observe(&self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        for (i, bucket) in self.buckets.iter().enumerate() {
            if seconds <= Self::le_bound(i) {
                bucket.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        // An observation above every bound lands only in the +Inf bucket,
        // which exposition derives from `count`.
        self.sum_micros.fetch_add((seconds * 1e6).round() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in seconds (µs resolution).
    pub fn sum_secs(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 * 1e-6
    }

    /// Cumulative count at or below bucket `i`'s bound, Prometheus-style.
    pub fn cumulative(&self, i: usize) -> u64 {
        self.buckets.iter().take(i + 1).map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// The process-wide metrics registry: one static family per instrumented
/// subsystem (worker-pool counters live in `blazeit_nn::parallel` — the pool
/// cannot depend on this crate — and are read by [`prometheus_exposition`]).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Served queries answered from the result cache.
    pub serving_hits: Counter,
    /// Served queries that computed (cache miss).
    pub serving_misses: Counter,
    /// Served queries that attached to an in-flight identical computation.
    pub serving_coalesced: Counter,
    /// Result-cache entries evicted by the FIFO bound.
    pub serving_evicted: Counter,
    /// Result-cache entries dropped because their data generation moved.
    pub serving_invalidated: Counter,
    /// Every query accepted by a `ServerSession` (hits + misses + coalesced +
    /// EXPLAIN probes + EXPLAIN ANALYZE runs).
    pub serving_queries: Counter,
    /// Wall-clock seconds queries spent waiting for an admission permit.
    pub serving_admission_wait: Histogram,
    /// Tickets currently waiting for (or holding) admission, per the most
    /// recent acquire/release.
    pub serving_admission_queue_depth: Gauge,
    /// Frames ingested across every stream.
    pub stream_frames_ingested: Counter,
    /// Drift-monitor two-sample checks run.
    pub stream_drift_checks: Counter,
    /// The most recent drift score observed by any monitor.
    pub stream_drift_score: Gauge,
    /// Background retrains that completed and swapped a generation in.
    pub stream_retrain_completed: Counter,
    /// Background retrains that failed (error or panic) and kept the pinned
    /// generation.
    pub stream_retrain_failed: Counter,
    /// Index-store artifact reads that found and decoded an artifact.
    pub store_reads: Counter,
    /// Index-store artifact writes.
    pub store_writes: Counter,
    /// Artifacts evicted by the store's LRU budget.
    pub store_evictions: Counter,
    /// Degraded contexts healed back to store-backed mode by a probe success.
    pub store_heals: Counter,
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

/// The process-wide metrics registry.
pub fn metrics() -> &'static Metrics {
    METRICS.get_or_init(Metrics::default)
}

fn render_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
}

fn render_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"));
}

fn render_histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for i in 0..HISTOGRAM_BUCKETS {
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {}\n",
            Histogram::le_bound(i),
            h.cumulative(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum_secs()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Renders every registered family — serving, streaming, store, and the
/// worker pool — in Prometheus text exposition format.
pub fn prometheus_exposition() -> String {
    let m = metrics();
    let mut out = String::new();
    render_counter(
        &mut out,
        "blazeit_serving_cache_hits_total",
        "Served queries answered from the result cache.",
        m.serving_hits.get(),
    );
    render_counter(
        &mut out,
        "blazeit_serving_cache_misses_total",
        "Served queries that computed (cache miss).",
        m.serving_misses.get(),
    );
    render_counter(
        &mut out,
        "blazeit_serving_coalesced_total",
        "Served queries that attached to an in-flight identical computation.",
        m.serving_coalesced.get(),
    );
    render_counter(
        &mut out,
        "blazeit_serving_evicted_total",
        "Result-cache entries evicted by the FIFO bound.",
        m.serving_evicted.get(),
    );
    render_counter(
        &mut out,
        "blazeit_serving_invalidated_total",
        "Result-cache entries dropped because their data generation moved.",
        m.serving_invalidated.get(),
    );
    render_counter(
        &mut out,
        "blazeit_serving_queries_total",
        "Queries accepted by serving sessions (all dispositions).",
        m.serving_queries.get(),
    );
    render_histogram(
        &mut out,
        "blazeit_serving_admission_wait_seconds",
        "Wall-clock seconds spent waiting for an admission permit.",
        &m.serving_admission_wait,
    );
    render_gauge(
        &mut out,
        "blazeit_serving_admission_queue_depth",
        "Tickets currently waiting for or holding admission.",
        m.serving_admission_queue_depth.get(),
    );
    render_counter(
        &mut out,
        "blazeit_stream_frames_ingested_total",
        "Frames ingested across every registered stream.",
        m.stream_frames_ingested.get(),
    );
    render_counter(
        &mut out,
        "blazeit_stream_drift_checks_total",
        "Drift-monitor two-sample checks run.",
        m.stream_drift_checks.get(),
    );
    render_gauge(
        &mut out,
        "blazeit_stream_drift_score",
        "Most recent drift score observed by any monitor.",
        m.stream_drift_score.get(),
    );
    render_counter(
        &mut out,
        "blazeit_stream_retrain_completed_total",
        "Background retrains that swapped a new model generation in.",
        m.stream_retrain_completed.get(),
    );
    render_counter(
        &mut out,
        "blazeit_stream_retrain_failed_total",
        "Background retrains that failed and kept the pinned generation.",
        m.stream_retrain_failed.get(),
    );
    render_counter(
        &mut out,
        "blazeit_store_reads_total",
        "Index-store artifact reads that found an artifact.",
        m.store_reads.get(),
    );
    render_counter(
        &mut out,
        "blazeit_store_writes_total",
        "Index-store artifact writes.",
        m.store_writes.get(),
    );
    render_counter(
        &mut out,
        "blazeit_store_evictions_total",
        "Artifacts evicted by the store's LRU budget.",
        m.store_evictions.get(),
    );
    render_counter(
        &mut out,
        "blazeit_store_heals_total",
        "Degraded contexts healed back to store-backed mode.",
        m.store_heals.get(),
    );
    let pool = blazeit_nn::parallel::pool_stats();
    render_gauge(
        &mut out,
        "blazeit_pool_workers",
        "Worker threads in the shared scoring pool.",
        pool.workers as f64,
    );
    render_counter(
        &mut out,
        "blazeit_pool_jobs_submitted_total",
        "Jobs queued onto the shared worker pool.",
        pool.submitted,
    );
    render_counter(
        &mut out,
        "blazeit_pool_jobs_executed_total",
        "Jobs executed by pool worker threads.",
        pool.executed,
    );
    render_counter(
        &mut out,
        "blazeit_pool_jobs_stolen_total",
        "Queued jobs stolen and run inline by waiting submitters.",
        pool.stolen,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_detect::clock::CostCategory;

    #[test]
    fn spans_without_a_collector_are_inert() {
        assert!(trace_context().is_none());
        let before = SimClock::charge_tag();
        {
            let _outer = span("outer");
            let _inner = span_with(|| unreachable!("label must not be evaluated untraced"));
            assert_eq!(SimClock::charge_tag(), before, "no tag swap without a collector");
            count(COUNTER_DETECTOR_CALLS, 3);
        }
        assert_eq!(SimClock::charge_tag(), before);
    }

    #[test]
    fn collector_assembles_a_tree_and_merges_costs_exactly() {
        let clock = SimClock::new();
        let guard = install_collector(Arc::clone(&clock));
        {
            let _root = span("query");
            clock.charge(CostCategory::Other, 0.125);
            {
                let _child = span_with(|| "video 'x'".to_string());
                clock.charge(CostCategory::SpecializedInference, 0.1 + 1e-7);
                count(COUNTER_FRAMES_SCORED, 100);
                count(COUNTER_FRAMES_SCORED, 50);
                count(COUNTER_CACHE_HITS, 1);
            }
            clock.charge(CostCategory::Detection, 0.375);
        }
        let trace = guard.finish();
        assert_eq!(trace.spans.len(), 2);
        let root = &trace.spans[0];
        let child = &trace.spans[1];
        assert_eq!((root.label.as_str(), root.parent), ("query", None));
        assert_eq!((child.label.as_str(), child.parent), ("video 'x'", Some(0)));
        assert_eq!(root.cost.other, 0.125);
        assert_eq!(root.cost.detection, 0.375, "parent cost excludes the child's");
        assert_eq!(child.cost.specialized, 0.1 + 1e-7);
        assert_eq!(
            child.counters,
            vec![("frames_scored".to_string(), 150), ("cache_hits".to_string(), 1)]
        );
        assert_eq!(trace.counter_total(COUNTER_FRAMES_SCORED), 150);

        // Exactness: spans charged private tags, assembly merged them into the
        // ambient tag (0 here) in span order — the global ledger now equals the
        // trace total bitwise, and no span tag survives.
        let total = trace.total_cost();
        let global = clock.breakdown();
        for category in CostCategory::ALL {
            assert_eq!(total.get(category), global.get(category), "{}", category.label());
        }
        assert_eq!(clock.charged_tags(), vec![0]);
        assert!(trace_context().is_none(), "finish restores the thread state");

        let rendered = trace.to_string();
        assert!(rendered.starts_with("EXPLAIN ANALYZE"), "got: {rendered}");
        assert!(rendered.contains("query") && rendered.contains("video 'x'"));
        assert!(rendered.contains("frames_scored=150"), "got: {rendered}");
    }

    #[test]
    fn trace_context_carries_spans_across_threads() {
        let clock = SimClock::new();
        let guard = install_collector(Arc::clone(&clock));
        {
            let _root = span("query");
            let ctx = trace_context().expect("traced thread has a context");
            std::thread::scope(|s| {
                s.spawn(move || {
                    ctx.enter(|| {
                        let _task = span("video 'remote'");
                        clock.charge(CostCategory::Filter, 0.25);
                    });
                    assert!(trace_context().is_none(), "enter restores on exit");
                });
            });
        }
        let trace = guard.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].parent, Some(0), "remote span attaches under the captured span");
        assert_eq!(trace.spans[1].cost.filter, 0.25);
    }

    #[test]
    fn dropped_guard_still_restores_and_reattributes() {
        let clock = SimClock::new();
        let guard = install_collector(Arc::clone(&clock));
        {
            let _s = span("doomed");
            clock.charge(CostCategory::Other, 1.0);
        }
        drop(guard);
        assert!(trace_context().is_none());
        assert_eq!(clock.charged_tags(), vec![0], "span ledger merged back on drop");
        assert_eq!(clock.breakdown_for(0).other, 1.0);
    }

    #[test]
    fn histogram_buckets_are_logarithmic_and_cumulative() {
        let h = Histogram::default();
        assert_eq!(Histogram::le_bound(0), 1e-6);
        assert_eq!(Histogram::le_bound(1), 2e-6);
        h.observe(0.5e-6); // bucket 0
        h.observe(3e-6); // bucket 2 (le 4µs)
        h.observe(1e9); // beyond every bound: +Inf only
        h.observe(-1.0); // ignored
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
        assert_eq!(h.cumulative(0), 1);
        assert_eq!(h.cumulative(1), 1);
        assert_eq!(h.cumulative(2), 2);
        assert_eq!(h.cumulative(HISTOGRAM_BUCKETS - 1), 2, "+Inf overflow is count - this");
        assert!((h.sum_secs() - 1e9).abs() / 1e9 < 1e-6);
    }

    #[test]
    fn exposition_covers_every_family_and_is_well_formed() {
        metrics().serving_hits.inc();
        metrics().serving_admission_wait.observe(0.001);
        metrics().stream_drift_score.set(0.125);
        let text = prometheus_exposition();
        for family in [
            "blazeit_serving_cache_hits_total",
            "blazeit_serving_cache_misses_total",
            "blazeit_serving_coalesced_total",
            "blazeit_serving_evicted_total",
            "blazeit_serving_invalidated_total",
            "blazeit_serving_queries_total",
            "blazeit_serving_admission_wait_seconds",
            "blazeit_serving_admission_queue_depth",
            "blazeit_stream_frames_ingested_total",
            "blazeit_stream_drift_checks_total",
            "blazeit_stream_drift_score",
            "blazeit_stream_retrain_completed_total",
            "blazeit_stream_retrain_failed_total",
            "blazeit_store_reads_total",
            "blazeit_store_writes_total",
            "blazeit_store_evictions_total",
            "blazeit_store_heals_total",
            "blazeit_pool_workers",
            "blazeit_pool_jobs_submitted_total",
            "blazeit_pool_jobs_executed_total",
            "blazeit_pool_jobs_stolen_total",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "missing HELP for {family}");
            assert!(text.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
        }
        assert!(text.contains("blazeit_serving_admission_wait_seconds_bucket{le=\"+Inf\"}"));
        assert!(text.contains("blazeit_serving_admission_wait_seconds_sum"));
        assert!(text.contains("blazeit_serving_admission_wait_seconds_count"));
        // Every non-comment line is `name[{labels}] value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric lines have a value");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in line: {line}");
        }
    }
}
