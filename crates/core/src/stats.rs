//! Small statistics helpers: running mean/variance, covariance, and the normal
//! percent-point function used by the CLT stopping rule (Section 6.1).

/// Welford-style running estimator of mean and variance with the finite-sample
/// (Bessel) correction the paper calls for.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty estimator.
    pub fn new() -> RunningStats {
        RunningStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with Bessel's correction (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            f64::INFINITY
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Running estimator of the covariance between two variables (used to fit the control
/// variate coefficient `c = -Cov(m, t) / Var(t)` as samples accumulate).
#[derive(Debug, Clone, Default)]
pub struct RunningCovariance {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    c: f64,
}

impl RunningCovariance {
    /// Creates an empty estimator.
    pub fn new() -> RunningCovariance {
        RunningCovariance::default()
    }

    /// Adds one paired observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let dx = x - self.mean_x;
        self.mean_x += dx / self.n as f64;
        self.mean_y += (y - self.mean_y) / self.n as f64;
        self.c += dx * (y - self.mean_y);
    }

    /// Number of paired observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample covariance with Bessel's correction.
    pub fn covariance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.c / (self.n - 1) as f64
        }
    }
}

/// Mean and population variance of a slice in one pass.
pub fn mean_and_variance(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Pearson correlation of two equal-length slices (0 when degenerate).
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// The standard normal percent-point function (inverse CDF), via Acklam's rational
/// approximation (max absolute error ~4.5e-4, far more precision than the stopping
/// rule needs).
// Acklam's published coefficients are kept verbatim, trailing zeros included.
#[allow(clippy::excessive_precision)]
pub fn normal_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_ppf requires p in (0, 1), got {p}");
    // Coefficients for the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided normal critical value for a confidence level (e.g. 0.95 → ~1.96).
pub fn normal_critical_value(confidence: f64) -> f64 {
    let conf = confidence.clamp(0.5, 0.999_999);
    normal_ppf(1.0 - (1.0 - conf) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_matches_direct_computation() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &v in &values {
            rs.push(v);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        // Sample variance with Bessel correction = 32/7.
        assert!((rs.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((rs.standard_error() - rs.std_dev() / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_degenerate_cases() {
        let rs = RunningStats::new();
        assert_eq!(rs.variance(), 0.0);
        assert!(rs.standard_error().is_infinite());
        let mut one = RunningStats::new();
        one.push(3.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn running_covariance_matches_direct() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 5.0, 8.0];
        let mut rc = RunningCovariance::new();
        for (x, y) in xs.iter().zip(ys.iter()) {
            rc.push(*x, *y);
        }
        // Direct sample covariance.
        let mx = 2.5;
        let my = 4.75;
        let direct: f64 =
            xs.iter().zip(ys.iter()).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / 3.0;
        assert!((rc.covariance() - direct).abs() < 1e-12);
    }

    #[test]
    fn correlation_bounds_and_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[1.0, 1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(correlation(&xs, &[1.0]), 0.0);
    }

    #[test]
    fn normal_ppf_known_values() {
        assert!((normal_ppf(0.5)).abs() < 1e-8);
        assert!((normal_ppf(0.975) - 1.959_964).abs() < 1e-3);
        assert!((normal_ppf(0.025) + 1.959_964).abs() < 1e-3);
        assert!((normal_ppf(0.995) - 2.575_829).abs() < 1e-3);
        assert!((normal_ppf(0.0001) + 3.719_016).abs() < 2e-3);
    }

    #[test]
    fn critical_value_for_confidence() {
        assert!((normal_critical_value(0.95) - 1.96).abs() < 1e-2);
        assert!((normal_critical_value(0.99) - 2.576).abs() < 1e-2);
        // Higher confidence requires a wider interval.
        assert!(normal_critical_value(0.99) > normal_critical_value(0.9));
    }

    #[test]
    #[should_panic]
    fn normal_ppf_rejects_out_of_range() {
        normal_ppf(0.0);
    }

    #[test]
    fn mean_and_variance_helper() {
        let (m, v) = mean_and_variance(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((v - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_and_variance(&[]), (0.0, 0.0));
    }
}
