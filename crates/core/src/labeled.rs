//! The labeled set: detector annotations over the training and held-out days.
//!
//! BlazeIt assumes a small representative sample of video has been annotated with the
//! object detector ahead of time (Section 2): one day of video for training labels and
//! one day for threshold / error estimation. Constructing this labeled set is done
//! once, offline, and shared across queries, so — exactly as in the paper's evaluation —
//! its detector cost is *not* charged to any query. Training specialized NNs and
//! computing filter thresholds from the labeled set, on the other hand, *are* charged
//! (the paper reports BlazeIt runtimes both with and without that time).

use crate::{BlazeItConfig, Result};
use blazeit_detect::{CountVector, Detection, ObjectDetector, SimClock, SimulatedDetector};
use blazeit_videostore::{FrameIndex, ObjectClass, Video};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Detector annotations for one day of video at a fixed frame stride.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedDay {
    /// The annotated frame indices (ascending).
    pub frames: Vec<FrameIndex>,
    /// The detections for each annotated frame.
    pub detections: Vec<Vec<Detection>>,
    /// Per-class counts for each annotated frame (derived from `detections`).
    pub counts: Vec<CountVector>,
}

impl AnnotatedDay {
    fn annotate(video: &Video, detector: &SimulatedDetector, stride: u64) -> AnnotatedDay {
        let stride = stride.max(1);
        let mut frames = Vec::new();
        let mut detections = Vec::new();
        let mut counts = Vec::new();
        let mut f = 0u64;
        while f < video.len() {
            let dets = detector.detect(video, f);
            counts.push(CountVector::from_detections(&dets));
            detections.push(dets);
            frames.push(f);
            f += stride;
        }
        AnnotatedDay { frames, detections, counts }
    }

    /// Number of annotated frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the day has no annotated frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Per-frame counts of one class.
    pub fn class_counts(&self, class: ObjectClass) -> Vec<usize> {
        self.counts.iter().map(|c| c.get(class)).collect()
    }

    /// Number of annotated frames whose counts satisfy all `(class, >= n)` requirements.
    pub fn frames_satisfying(&self, requirements: &[(ObjectClass, usize)]) -> usize {
        self.counts.iter().filter(|c| c.satisfies_all(requirements)).count()
    }

    /// The maximum per-frame count of a class.
    pub fn max_count(&self, class: ObjectClass) -> usize {
        self.class_counts(class).into_iter().max().unwrap_or(0)
    }
}

/// The labeled set: annotated training and held-out days plus their videos.
#[derive(Debug, Clone)]
pub struct LabeledSet {
    train_video: Video,
    heldout_video: Video,
    train: AnnotatedDay,
    heldout: AnnotatedDay,
    annotation_cost_secs: f64,
}

impl LabeledSet {
    /// Builds the labeled set by running the configured detector over the training and
    /// held-out days at the configured strides.
    ///
    /// The detector cost of this step is deliberately charged to a throwaway clock
    /// (offline annotation, as in the paper's evaluation methodology); what it
    /// *would* have cost is recorded in [`LabeledSet::annotation_cost_secs`],
    /// so the index store can prove a loaded set skipped the work entirely.
    pub fn build(
        train_video: Video,
        heldout_video: Video,
        config: &BlazeItConfig,
    ) -> Result<LabeledSet> {
        let offline_clock = SimClock::new();
        let detector = SimulatedDetector::new(
            config.detection_method,
            config.detection_threshold,
            Arc::clone(&offline_clock),
        );
        let train = AnnotatedDay::annotate(&train_video, &detector, config.labeled_stride);
        let heldout = AnnotatedDay::annotate(&heldout_video, &detector, config.heldout_stride);
        let annotation_cost_secs = offline_clock.total();
        Ok(LabeledSet { train_video, heldout_video, train, heldout, annotation_cost_secs })
    }

    /// Reassembles a labeled set from persisted annotations (the index-store
    /// load path): no detector runs, so [`LabeledSet::annotation_cost_secs`]
    /// is zero. The per-frame counts of each day must be consistent with its
    /// detections, and the frames must lie inside their videos.
    pub fn from_parts(
        train_video: Video,
        heldout_video: Video,
        train: AnnotatedDay,
        heldout: AnnotatedDay,
    ) -> Result<LabeledSet> {
        for (day, video, what) in
            [(&train, &train_video, "training"), (&heldout, &heldout_video, "held-out")]
        {
            if day.frames.len() != day.detections.len() || day.frames.len() != day.counts.len() {
                return Err(crate::BlazeItError::Internal(format!(
                    "inconsistent {what} annotations: {} frames, {} detection lists, {} counts",
                    day.frames.len(),
                    day.detections.len(),
                    day.counts.len()
                )));
            }
            if day.frames.iter().any(|&f| f >= video.len()) {
                return Err(crate::BlazeItError::Internal(format!(
                    "{what} annotations reference frames beyond the {}-frame video",
                    video.len()
                )));
            }
            if day
                .detections
                .iter()
                .zip(&day.counts)
                .any(|(dets, counts)| CountVector::from_detections(dets) != *counts)
            {
                return Err(crate::BlazeItError::Internal(format!(
                    "{what} annotation counts disagree with their detections"
                )));
            }
        }
        Ok(LabeledSet { train_video, heldout_video, train, heldout, annotation_cost_secs: 0.0 })
    }

    /// The simulated detector seconds the offline annotation pass performed
    /// when this set was built — zero when the set was loaded from a durable
    /// store instead of re-annotated. (This cost is never charged to a query
    /// clock either way; it measures the offline work itself.)
    pub fn annotation_cost_secs(&self) -> f64 {
        self.annotation_cost_secs
    }

    /// The training-day video.
    pub fn train_video(&self) -> &Video {
        &self.train_video
    }

    /// The held-out-day video.
    pub fn heldout_video(&self) -> &Video {
        &self.heldout_video
    }

    /// The training-day annotations.
    pub fn train(&self) -> &AnnotatedDay {
        &self.train
    }

    /// The held-out-day annotations.
    pub fn heldout(&self) -> &AnnotatedDay {
        &self.heldout
    }

    /// Whether the training data has enough positive examples to train a specialized
    /// model for the given requirements (Algorithm 1's "sufficient training data"
    /// check and Section 7.1's fallback condition).
    pub fn has_training_examples(
        &self,
        requirements: &[(ObjectClass, usize)],
        min_examples: usize,
    ) -> bool {
        self.train.frames_satisfying(requirements) >= min_examples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::{DatasetPreset, DAY_HELDOUT, DAY_TRAIN};

    fn labeled(frames: u64) -> LabeledSet {
        let preset = DatasetPreset::Taipei;
        let config = BlazeItConfig::for_preset(preset);
        let train = preset.generate_with_frames(DAY_TRAIN, frames).unwrap();
        let heldout = preset.generate_with_frames(DAY_HELDOUT, frames).unwrap();
        LabeledSet::build(train, heldout, &config).unwrap()
    }

    #[test]
    fn build_annotates_at_strides() {
        let set = labeled(900);
        // labeled_stride = 3, heldout_stride = 7 by default.
        assert_eq!(set.train().len(), 300);
        assert_eq!(set.heldout().len(), 900_usize.div_ceil(7));
        assert_eq!(set.train().frames[1], 3);
        assert_eq!(set.heldout().frames[1], 7);
        assert!(!set.train().is_empty());
    }

    #[test]
    fn from_parts_round_trips_and_records_zero_annotation_cost() {
        let built = labeled(600);
        assert!(built.annotation_cost_secs() > 0.0, "building runs the offline detector");
        let preset = DatasetPreset::Taipei;
        let train = preset.generate_with_frames(DAY_TRAIN, 600).unwrap();
        let heldout = preset.generate_with_frames(DAY_HELDOUT, 600).unwrap();
        let loaded =
            LabeledSet::from_parts(train, heldout, built.train().clone(), built.heldout().clone())
                .unwrap();
        assert_eq!(loaded.train(), built.train());
        assert_eq!(loaded.heldout(), built.heldout());
        assert_eq!(loaded.annotation_cost_secs(), 0.0, "loading must not re-annotate");
    }

    #[test]
    fn from_parts_rejects_inconsistent_annotations() {
        let built = labeled(600);
        let preset = DatasetPreset::Taipei;
        let mk = || {
            (
                preset.generate_with_frames(DAY_TRAIN, 600).unwrap(),
                preset.generate_with_frames(DAY_HELDOUT, 600).unwrap(),
            )
        };
        // A frame index beyond the video.
        let mut bad = built.train().clone();
        bad.frames[0] = 10_000;
        let (t, h) = mk();
        assert!(LabeledSet::from_parts(t, h, bad, built.heldout().clone()).is_err());
        // Counts that disagree with their detections.
        let mut bad = built.train().clone();
        if let Some(first) = bad.counts.first_mut() {
            *first = CountVector::default();
            bad.detections[0] = vec![Detection::new(
                ObjectClass::Car,
                blazeit_videostore::BoundingBox::new(0.0, 0.0, 10.0, 10.0),
                0.9,
            )];
        }
        let (t, h) = mk();
        assert!(LabeledSet::from_parts(t, h, bad, built.heldout().clone()).is_err());
        // Mismatched vector lengths.
        let mut bad = built.train().clone();
        bad.frames.pop();
        let (t, h) = mk();
        assert!(LabeledSet::from_parts(t, h, bad, built.heldout().clone()).is_err());
    }

    #[test]
    fn counts_match_detections() {
        let set = labeled(600);
        for (dets, counts) in set.train().detections.iter().zip(&set.train().counts) {
            assert_eq!(CountVector::from_detections(dets), *counts);
        }
    }

    #[test]
    fn class_counts_and_max() {
        let set = labeled(1500);
        let car_counts = set.train().class_counts(ObjectClass::Car);
        assert_eq!(car_counts.len(), set.train().len());
        let max = set.train().max_count(ObjectClass::Car);
        assert_eq!(max, car_counts.iter().copied().max().unwrap());
        assert!(max >= 1, "expected at least one car in the taipei training day");
        // Birds never appear in the taipei scene; the only possible bird labels
        // are rare spurious detections surviving the permissive 0.2 threshold.
        let bird_frames = set.train().frames_satisfying(&[(ObjectClass::Bird, 1)]);
        assert!(
            bird_frames * 20 < set.train().len(),
            "spurious bird detections should be rare: {bird_frames}/{}",
            set.train().len()
        );
    }

    #[test]
    fn training_example_sufficiency() {
        let set = labeled(1500);
        assert!(set.has_training_examples(&[(ObjectClass::Car, 1)], 10));
        assert!(!set.has_training_examples(&[(ObjectClass::Car, 50)], 1));
        // Birds only appear as rare spurious detections, far below any usable
        // training-set size (the engine requires 20–50 positives).
        assert!(!set.has_training_examples(&[(ObjectClass::Bird, 1)], 10));
    }

    #[test]
    fn frames_satisfying_conjunction() {
        let set = labeled(1500);
        let both = set.train().frames_satisfying(&[(ObjectClass::Car, 1), (ObjectClass::Bus, 1)]);
        let car_only = set.train().frames_satisfying(&[(ObjectClass::Car, 1)]);
        assert!(both <= car_only);
    }
}
