//! The labeled set: detector annotations over the training and held-out days.
//!
//! BlazeIt assumes a small representative sample of video has been annotated with the
//! object detector ahead of time (Section 2): one day of video for training labels and
//! one day for threshold / error estimation. Constructing this labeled set is done
//! once, offline, and shared across queries, so — exactly as in the paper's evaluation —
//! its detector cost is *not* charged to any query. Training specialized NNs and
//! computing filter thresholds from the labeled set, on the other hand, *are* charged
//! (the paper reports BlazeIt runtimes both with and without that time).

use crate::{BlazeItConfig, Result};
use blazeit_detect::{CountVector, Detection, ObjectDetector, SimClock, SimulatedDetector};
use blazeit_videostore::{FrameIndex, ObjectClass, Video};
use serde::{Deserialize, Serialize};

/// Detector annotations for one day of video at a fixed frame stride.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedDay {
    /// The annotated frame indices (ascending).
    pub frames: Vec<FrameIndex>,
    /// The detections for each annotated frame.
    pub detections: Vec<Vec<Detection>>,
    /// Per-class counts for each annotated frame (derived from `detections`).
    pub counts: Vec<CountVector>,
}

impl AnnotatedDay {
    fn annotate(video: &Video, detector: &SimulatedDetector, stride: u64) -> AnnotatedDay {
        let stride = stride.max(1);
        let mut frames = Vec::new();
        let mut detections = Vec::new();
        let mut counts = Vec::new();
        let mut f = 0u64;
        while f < video.len() {
            let dets = detector.detect(video, f);
            counts.push(CountVector::from_detections(&dets));
            detections.push(dets);
            frames.push(f);
            f += stride;
        }
        AnnotatedDay { frames, detections, counts }
    }

    /// Number of annotated frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the day has no annotated frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Per-frame counts of one class.
    pub fn class_counts(&self, class: ObjectClass) -> Vec<usize> {
        self.counts.iter().map(|c| c.get(class)).collect()
    }

    /// Number of annotated frames whose counts satisfy all `(class, >= n)` requirements.
    pub fn frames_satisfying(&self, requirements: &[(ObjectClass, usize)]) -> usize {
        self.counts.iter().filter(|c| c.satisfies_all(requirements)).count()
    }

    /// The maximum per-frame count of a class.
    pub fn max_count(&self, class: ObjectClass) -> usize {
        self.class_counts(class).into_iter().max().unwrap_or(0)
    }
}

/// The labeled set: annotated training and held-out days plus their videos.
#[derive(Debug, Clone)]
pub struct LabeledSet {
    train_video: Video,
    heldout_video: Video,
    train: AnnotatedDay,
    heldout: AnnotatedDay,
}

impl LabeledSet {
    /// Builds the labeled set by running the configured detector over the training and
    /// held-out days at the configured strides.
    ///
    /// The detector cost of this step is deliberately charged to a throwaway clock
    /// (offline annotation, as in the paper's evaluation methodology).
    pub fn build(
        train_video: Video,
        heldout_video: Video,
        config: &BlazeItConfig,
    ) -> Result<LabeledSet> {
        let offline_clock = SimClock::new();
        let detector = SimulatedDetector::new(
            config.detection_method,
            config.detection_threshold,
            offline_clock,
        );
        let train = AnnotatedDay::annotate(&train_video, &detector, config.labeled_stride);
        let heldout = AnnotatedDay::annotate(&heldout_video, &detector, config.heldout_stride);
        Ok(LabeledSet { train_video, heldout_video, train, heldout })
    }

    /// The training-day video.
    pub fn train_video(&self) -> &Video {
        &self.train_video
    }

    /// The held-out-day video.
    pub fn heldout_video(&self) -> &Video {
        &self.heldout_video
    }

    /// The training-day annotations.
    pub fn train(&self) -> &AnnotatedDay {
        &self.train
    }

    /// The held-out-day annotations.
    pub fn heldout(&self) -> &AnnotatedDay {
        &self.heldout
    }

    /// Whether the training data has enough positive examples to train a specialized
    /// model for the given requirements (Algorithm 1's "sufficient training data"
    /// check and Section 7.1's fallback condition).
    pub fn has_training_examples(
        &self,
        requirements: &[(ObjectClass, usize)],
        min_examples: usize,
    ) -> bool {
        self.train.frames_satisfying(requirements) >= min_examples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::{DatasetPreset, DAY_HELDOUT, DAY_TRAIN};

    fn labeled(frames: u64) -> LabeledSet {
        let preset = DatasetPreset::Taipei;
        let config = BlazeItConfig::for_preset(preset);
        let train = preset.generate_with_frames(DAY_TRAIN, frames).unwrap();
        let heldout = preset.generate_with_frames(DAY_HELDOUT, frames).unwrap();
        LabeledSet::build(train, heldout, &config).unwrap()
    }

    #[test]
    fn build_annotates_at_strides() {
        let set = labeled(900);
        // labeled_stride = 3, heldout_stride = 7 by default.
        assert_eq!(set.train().len(), 300);
        assert_eq!(set.heldout().len(), 900_usize.div_ceil(7));
        assert_eq!(set.train().frames[1], 3);
        assert_eq!(set.heldout().frames[1], 7);
        assert!(!set.train().is_empty());
    }

    #[test]
    fn counts_match_detections() {
        let set = labeled(600);
        for (dets, counts) in set.train().detections.iter().zip(&set.train().counts) {
            assert_eq!(CountVector::from_detections(dets), *counts);
        }
    }

    #[test]
    fn class_counts_and_max() {
        let set = labeled(1500);
        let car_counts = set.train().class_counts(ObjectClass::Car);
        assert_eq!(car_counts.len(), set.train().len());
        let max = set.train().max_count(ObjectClass::Car);
        assert_eq!(max, car_counts.iter().copied().max().unwrap());
        assert!(max >= 1, "expected at least one car in the taipei training day");
        // Birds never appear in the taipei scene; the only possible bird labels
        // are rare spurious detections surviving the permissive 0.2 threshold.
        let bird_frames = set.train().frames_satisfying(&[(ObjectClass::Bird, 1)]);
        assert!(
            bird_frames * 20 < set.train().len(),
            "spurious bird detections should be rare: {bird_frames}/{}",
            set.train().len()
        );
    }

    #[test]
    fn training_example_sufficiency() {
        let set = labeled(1500);
        assert!(set.has_training_examples(&[(ObjectClass::Car, 1)], 10));
        assert!(!set.has_training_examples(&[(ObjectClass::Car, 50)], 1));
        // Birds only appear as rare spurious detections, far below any usable
        // training-set size (the engine requires 20–50 positives).
        assert!(!set.has_training_examples(&[(ObjectClass::Bird, 1)], 10));
    }

    #[test]
    fn frames_satisfying_conjunction() {
        let set = labeled(1500);
        let both = set.train().frames_satisfying(&[(ObjectClass::Car, 1), (ObjectClass::Bus, 1)]);
        let car_only = set.train().frames_satisfying(&[(ObjectClass::Car, 1)]);
        assert!(both <= car_only);
    }
}
