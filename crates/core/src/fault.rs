//! Deterministic fault injection, retry/backoff, and per-context health.
//!
//! A system meant to run continuously over live streams (PR 5) cannot treat an
//! I/O error, a failed retrain, or a worker panic as fatal. This module holds the
//! three pieces that make faults survivable:
//!
//! * **Failpoints** ([`inject`]) — named fault sites compiled into every fallible
//!   boundary (store reads/writes, stream ingest, background retrains, parallel
//!   task execution). They are inert unless the `fault-injection` feature is
//!   enabled *and* a `FaultPlan` is installed; without the feature the function
//!   body is a constant `None` the optimizer deletes, so default builds carry
//!   zero overhead ([`COMPILED_IN`] is the compile-time witness). With the
//!   feature, faults are scheduled by a seeded hash of `(seed, site, hit-count)`,
//!   so a chaos run is exactly reproducible from its seed.
//!
//! * **Retry with exponential backoff** ([`RetryPolicy`]) — transient store
//!   errors ([`StoreError::Transient`], the `WouldBlock`-shaped failures) are
//!   retried up to a capped attempt count, with each backoff charged to the
//!   [`SimClock`] cost model and jittered from the seeded RNG so retry storms
//!   stay deterministic in tests.
//!
//! * **Health tracking** ([`HealthState`]) — every store error, retry, and
//!   retrain failure is recorded per context: consecutive store failures flip
//!   the context into *memory-only* degraded mode (writes and reads skip the
//!   store until a probation counter elapses and a probe succeeds), and a failed
//!   drift retrain is recorded with its backoff window. EXPLAIN renders the
//!   resulting [`HealthReport`] (`health: degraded (store unavailable, 3
//!   retries)`; `retrain: failed@gen 2, backoff 512 frames`), so degradation is
//!   always visible, never silent.
//!
//! The invariant the chaos suite (`tests/fault_injection.rs`) enforces: under
//! any injected fault schedule, every query returns either a bit-exact answer or
//! a typed error — never a panic, never a silently wrong result.

// blazeit-lint: allow-file(panic-site::index) -- per-site arrays are [_; FaultSite::ALL.len()] and
// site.index() is the variant's position in ALL

use crate::store::{StoreError, StoreResult};
use crate::sync::Mutex;
use blazeit_detect::clock::CostCategory;
use blazeit_detect::SimClock;
use rand::{Rng, SeedableRng, StdRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// `true` when the crate was compiled with the `fault-injection` feature, i.e.
/// when the failpoints below are live code. Release builds with default features
/// see `false`, and every `inject` call folds to `None` at compile time — the
/// unit test `failpoints_compile_out_by_default` pins this.
pub const COMPILED_IN: bool = cfg!(feature = "fault-injection");

/// The named fault sites wired into the engine. Each site is one fallible
/// boundary; the injector schedules faults per site independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// An [`IndexStore`](crate::IndexStore) artifact read.
    StoreRead,
    /// An [`IndexStore`](crate::IndexStore) artifact write (including the torn
    /// partial-write case).
    StoreWrite,
    /// An [`IndexStore`](crate::IndexStore) artifact removal.
    StoreRemove,
    /// Stream frame ingestion (`StreamSource::advance` / `Video::prefix` growth).
    StreamIngest,
    /// A background drift-triggered retrain task.
    Retrain,
    /// A fanned-out parallel sub-query task (`nn::parallel::par_run`).
    ParTask,
}

impl FaultSite {
    /// All sites, in declaration order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::StoreRemove,
        FaultSite::StreamIngest,
        FaultSite::Retrain,
        FaultSite::ParTask,
    ];

    /// Stable index of this site into per-site tables.
    pub fn index(self) -> usize {
        match self {
            FaultSite::StoreRead => 0,
            FaultSite::StoreWrite => 1,
            FaultSite::StoreRemove => 2,
            FaultSite::StreamIngest => 3,
            FaultSite::Retrain => 4,
            FaultSite::ParTask => 5,
        }
    }

    /// A short label for reports and error messages.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::StoreRead => "store-read",
            FaultSite::StoreWrite => "store-write",
            FaultSite::StoreRemove => "store-remove",
            FaultSite::StreamIngest => "stream-ingest",
            FaultSite::Retrain => "retrain",
            FaultSite::ParTask => "par-task",
        }
    }
}

/// The fault kinds a failpoint can be asked to simulate. Which kinds a site can
/// draw depends on the site (a store read never tears a write, a parallel task
/// only panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A transient, retryable I/O failure (`WouldBlock`-shaped): surfaces as
    /// [`StoreError::Transient`] and is eligible for retry/backoff.
    TransientIo,
    /// A hard I/O failure: surfaces as [`StoreError::Io`] and counts toward
    /// store degradation.
    Io,
    /// A torn write: the artifact file is left truncated on disk while the
    /// write *reports success* — the checksummed persist envelope must catch it
    /// on the next read.
    TornWrite,
    /// A typed, non-I/O failure (e.g. a retrain task returning an error).
    Error,
    /// A panic inside the fault site (e.g. a parallel task exploding), which the
    /// surrounding boundary must catch and convert to a typed error.
    Panic,
}

/// The failpoint hook. Returns the fault the installed plan schedules for this
/// hit of `site`, or `None` (always `None` without the `fault-injection`
/// feature, or with the feature but no plan installed).
#[inline(always)]
pub fn inject(site: FaultSite) -> Option<InjectedFault> {
    #[cfg(feature = "fault-injection")]
    {
        injector::decide(site)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        None
    }
}

#[cfg(feature = "fault-injection")]
pub use injector::{install, FaultGuard, FaultPlan};

#[cfg(feature = "fault-injection")]
mod injector {
    use super::{FaultSite, InjectedFault};
    use crate::sync::{AtomicU64, Mutex, MutexGuard, OnceLock, Ordering};
    use std::sync::Arc;

    /// A reproducible fault schedule: a seed plus a per-site fault probability.
    /// Two runs with the same plan inject the same faults at the same hits.
    #[derive(Debug, Clone, PartialEq)]
    pub struct FaultPlan {
        seed: u64,
        probability: [f64; FaultSite::ALL.len()],
    }

    impl FaultPlan {
        /// Every site faults independently with probability `p` per hit.
        pub fn uniform(seed: u64, p: f64) -> FaultPlan {
            FaultPlan { seed, probability: [p.clamp(0.0, 1.0); FaultSite::ALL.len()] }
        }

        /// Only `site` faults (with probability `p`); every other site is clean.
        pub fn only(seed: u64, site: FaultSite, p: f64) -> FaultPlan {
            FaultPlan::uniform(seed, 0.0).with_site(site, p)
        }

        /// Overrides one site's fault probability.
        pub fn with_site(mut self, site: FaultSite, p: f64) -> FaultPlan {
            self.probability[site.index()] = p.clamp(0.0, 1.0);
            self
        }
    }

    struct FaultInjector {
        plan: FaultPlan,
        // Independent per-site event counters: no other memory is published on
        // the strength of these loads/stores, so `Relaxed` is sufficient (the
        // model checker explores them as plain serialized operations; nothing
        // orders *through* them). Totals read while a plan is installed may lag
        // in-flight hits by design.
        hits: [AtomicU64; FaultSite::ALL.len()],
        injected: [AtomicU64; FaultSite::ALL.len()],
    }

    fn install_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    fn active() -> &'static Mutex<Option<Arc<FaultInjector>>> {
        static ACTIVE: OnceLock<Mutex<Option<Arc<FaultInjector>>>> = OnceLock::new();
        ACTIVE.get_or_init(|| Mutex::new(None))
    }

    /// Installs `plan` as the process-wide fault schedule and returns a guard
    /// that uninstalls it on drop. Concurrent installers serialize on an
    /// internal lock (held for the guard's lifetime), so chaos tests running in
    /// parallel cannot interleave their schedules.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        let lock = install_lock().lock();
        let injector = Arc::new(FaultInjector {
            plan,
            hits: Default::default(),
            injected: Default::default(),
        });
        *active().lock() = Some(Arc::clone(&injector));
        FaultGuard { injector, _lock: lock }
    }

    /// Keeps a [`FaultPlan`] installed; dropping it uninstalls the plan and
    /// releases the injector serialization lock. Stats remain readable after
    /// drop via the retained handle.
    pub struct FaultGuard {
        injector: Arc<FaultInjector>,
        _lock: MutexGuard<'static, ()>,
    }

    impl FaultGuard {
        /// How many faults have been injected at `site` so far.
        pub fn injected_at(&self, site: FaultSite) -> u64 {
            self.injector.injected[site.index()].load(Ordering::Relaxed)
        }

        /// Total faults injected across all sites.
        pub fn injected_total(&self) -> u64 {
            FaultSite::ALL.iter().map(|&s| self.injected_at(s)).sum()
        }

        /// Total failpoint hits (faulted or not) across all sites.
        pub fn hits_total(&self) -> u64 {
            self.injector.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *active().lock() = None;
        }
    }

    /// SplitMix64 finalizer — decorrelates the (seed, site, hit) triple.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(super) fn decide(site: FaultSite) -> Option<InjectedFault> {
        let injector = active().lock().clone()?;
        let hit = injector.hits[site.index()].fetch_add(1, Ordering::Relaxed);
        let p = injector.plan.probability[site.index()];
        if p <= 0.0 {
            return None;
        }
        let h = mix(injector.plan.seed ^ mix(site.index() as u64) ^ mix(hit));
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit >= p {
            return None;
        }
        injector.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        let kind = mix(h);
        Some(match site {
            FaultSite::StoreRead | FaultSite::StoreRemove | FaultSite::StreamIngest => {
                if kind.is_multiple_of(2) {
                    InjectedFault::TransientIo
                } else {
                    InjectedFault::Io
                }
            }
            FaultSite::StoreWrite => match kind % 3 {
                0 => InjectedFault::TransientIo,
                1 => InjectedFault::Io,
                _ => InjectedFault::TornWrite,
            },
            FaultSite::Retrain => {
                if kind.is_multiple_of(2) {
                    InjectedFault::Error
                } else {
                    InjectedFault::Panic
                }
            }
            FaultSite::ParTask => InjectedFault::Panic,
        })
    }
}

/// Retry policy for transient store errors: capped attempts with exponential,
/// jittered backoff charged to the [`SimClock`] (category `Other`), mirroring
/// how a real serving layer would pay wall-clock for each retry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated seconds; doubles per retry.
    pub base_backoff_secs: f64,
    /// Upper bound on a single backoff, in simulated seconds.
    pub max_backoff_secs: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter]` using the seeded RNG.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 0.002,
            max_backoff_secs: 0.25,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_backoff_secs: 0.0, max_backoff_secs: 0.0, jitter: 0.0 }
    }

    /// The backoff before retry number `retry` (0-based), jittered from `rng`.
    pub fn backoff_secs(&self, retry: u32, rng: &mut StdRng) -> f64 {
        let exp = self.base_backoff_secs * f64::from(2u32.saturating_pow(retry.min(30)));
        let capped = exp.min(self.max_backoff_secs);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        (capped * scale).max(0.0)
    }

    /// Runs `op`, retrying transient failures up to the attempt cap; every
    /// backoff is charged to `clock`. Returns the final outcome plus how many
    /// retries were spent.
    pub fn run<T>(
        &self,
        clock: &SimClock,
        rng: &mut StdRng,
        mut op: impl FnMut() -> StoreResult<T>,
    ) -> (StoreResult<T>, u32) {
        let mut retries = 0u32;
        loop {
            match op() {
                Err(error) if error.is_transient() && retries + 1 < self.max_attempts.max(1) => {
                    clock.charge(CostCategory::Other, self.backoff_secs(retries, rng));
                    retries += 1;
                }
                outcome => return (outcome, retries),
            }
        }
    }
}

/// How many consecutive hard store failures flip a context into memory-only
/// degraded mode.
const DEGRADE_AFTER: u32 = 3;
/// Store operations skipped after degrading, before the first probe.
const INITIAL_PROBE_BACKOFF: u32 = 4;
/// Cap on the probe backoff (it doubles after every failed probe).
const MAX_PROBE_BACKOFF: u32 = 64;
/// Capacity of the last-error ring buffer.
const ERROR_RING: usize = 8;

/// Memory-ordering note: the probation counters (`probe_in`, `probe_backoff`,
/// `store_consecutive_failures`) are deliberately plain integers behind the
/// [`HealthState`] mutex rather than atomics — the degrade/probe/heal protocol
/// reads *and then conditionally writes* several of them together, and that
/// read-modify-write group must be one critical section. The mutex provides
/// all the ordering required; the model checker explores every interleaving of
/// the lock acquisitions and finds no torn protocol state.
#[derive(Debug)]
struct HealthInner {
    store_consecutive_failures: u32,
    store_degraded: bool,
    /// While degraded: store operations to skip before the next probe.
    probe_in: u32,
    /// The skip count armed after the *next* failed probe (doubles, capped).
    probe_backoff: u32,
    store_retries: u64,
    store_errors: u64,
    recent: VecDeque<String>,
    retrain: Option<RetrainHealth>,
    rng: StdRng,
}

/// Per-context health: store degradation state, retry counters, a bounded
/// ring buffer of recent errors, and the last retrain failure. Everything the
/// engine degrades on is recorded here, and EXPLAIN renders the snapshot
/// ([`HealthReport`]) so no failure is silent.
#[derive(Debug)]
pub struct HealthState {
    inner: Mutex<HealthInner>,
}

impl HealthState {
    /// A fresh, healthy state; `seed` feeds the backoff-jitter RNG.
    pub fn new(seed: u64) -> HealthState {
        HealthState {
            inner: Mutex::new(HealthInner {
                store_consecutive_failures: 0,
                store_degraded: false,
                probe_in: 0,
                probe_backoff: INITIAL_PROBE_BACKOFF,
                store_retries: 0,
                store_errors: 0,
                recent: VecDeque::with_capacity(ERROR_RING),
                retrain: None,
                rng: StdRng::seed_from_u64(seed ^ 0xFA17_0BAC_0FF5_EED5),
            }),
        }
    }

    /// Whether the store side is currently usable (not degraded). Read-only:
    /// warmth probes use this without consuming a probation slot.
    pub fn store_usable(&self) -> bool {
        !self.inner.lock().store_degraded
    }

    /// Gate for an actual store operation. Healthy → `true`. Degraded → counts
    /// down the probation window, returning `false` (skip the store, stay
    /// memory-only) until it elapses, then `true` exactly once as a probe; the
    /// probe's outcome (via [`record_store_success`](Self::record_store_success)
    /// / [`record_store_error`](Self::record_store_error)) decides whether the
    /// context heals or re-arms a doubled window.
    pub fn store_attempt_allowed(&self) -> bool {
        let mut inner = self.inner.lock();
        if !inner.store_degraded {
            return true;
        }
        if inner.probe_in == 0 {
            return true;
        }
        inner.probe_in -= 1;
        false
    }

    /// Records a successful store operation: clears the consecutive-failure
    /// streak and, if degraded, heals the context back to store-backed mode.
    pub fn record_store_success(&self) {
        let mut inner = self.inner.lock();
        inner.store_consecutive_failures = 0;
        if inner.store_degraded {
            inner.store_degraded = false;
            inner.probe_backoff = INITIAL_PROBE_BACKOFF;
            inner.probe_in = 0;
            crate::obs::metrics().store_heals.inc();
        }
    }

    /// Records a failed store operation (`op` is a short label like
    /// `"store specialized nn"`). Hard I/O and exhausted-transient failures
    /// count toward degradation; [`StoreError::Invalid`] (a corrupt artifact —
    /// the store itself works, and the read-through path heals it by
    /// recomputing) and [`StoreError::BudgetExceeded`] (a deliberate per-
    /// artifact refusal) are recorded but do not trip memory-only mode.
    pub fn record_store_error(&self, op: &str, error: &StoreError) {
        let mut inner = self.inner.lock();
        inner.store_errors += 1;
        if inner.recent.len() == ERROR_RING {
            inner.recent.pop_front();
        }
        inner.recent.push_back(format!("{op}: {error}"));
        let counts_toward_degradation =
            matches!(error, StoreError::Io { .. } | StoreError::Transient { .. });
        if !counts_toward_degradation {
            return;
        }
        inner.store_consecutive_failures += 1;
        if inner.store_degraded || inner.store_consecutive_failures >= DEGRADE_AFTER {
            inner.store_degraded = true;
            inner.probe_in = inner.probe_backoff;
            inner.probe_backoff = (inner.probe_backoff * 2).min(MAX_PROBE_BACKOFF);
        }
    }

    /// Adds `n` spent retries to the running total.
    pub fn add_store_retries(&self, n: u32) {
        self.inner.lock().store_retries += u64::from(n);
    }

    /// Runs `op` under `policy` using this state's jitter RNG, recording spent
    /// retries. The *outcome* is not recorded here — callers decide between
    /// [`record_store_success`](Self::record_store_success) and
    /// [`record_store_error`](Self::record_store_error) since some errors (e.g.
    /// a missing artifact) are not failures at all.
    pub fn run_with_retry<T>(
        &self,
        policy: &RetryPolicy,
        clock: &SimClock,
        op: impl FnMut() -> StoreResult<T>,
    ) -> StoreResult<T> {
        // Draw the jitter stream under the lock, then run unlocked.
        let mut rng = {
            let mut inner = self.inner.lock();
            let reseed = inner.rng.next_u64();
            StdRng::seed_from_u64(reseed)
        };
        let (outcome, retries) = policy.run(clock, &mut rng, op);
        if retries > 0 {
            self.add_store_retries(retries);
        }
        outcome
    }

    /// Records a failed background retrain: the context keeps its current
    /// `(nn, index, generation)` and the drift monitor re-arms after
    /// `backoff_frames`.
    pub fn record_retrain_failure(&self, retrain: RetrainHealth) {
        self.inner.lock().retrain = Some(retrain);
    }

    /// Clears the retrain-failure record (a later retrain succeeded).
    pub fn clear_retrain_failure(&self) {
        self.inner.lock().retrain = None;
    }

    /// A snapshot for EXPLAIN and monitoring.
    pub fn report(&self) -> HealthReport {
        let inner = self.inner.lock();
        HealthReport {
            store_degraded: inner.store_degraded,
            store_consecutive_failures: inner.store_consecutive_failures,
            store_retries: inner.store_retries,
            store_errors: inner.store_errors,
            recent_errors: inner.recent.iter().cloned().collect(),
            retrain: inner.retrain.clone(),
        }
    }
}

/// The last recorded background-retrain failure of a streaming context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainHealth {
    /// The generation the context is pinned at (the retrain that failed would
    /// have produced `generation + 1`).
    pub generation: u64,
    /// Consecutive retrain failures for this head set.
    pub failures: u32,
    /// The backoff window armed by the last failure, in frames.
    pub backoff_frames: u64,
    /// The ingested-frame count at which the monitor re-arms.
    pub resume_at: u64,
    /// The failure, rendered.
    pub last_error: String,
}

/// A point-in-time snapshot of a context's [`HealthState`], rendered by EXPLAIN
/// and serializable for monitoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Whether the context is in memory-only degraded mode (store unavailable).
    pub store_degraded: bool,
    /// Consecutive hard store failures (resets on success).
    pub store_consecutive_failures: u32,
    /// Total transient-error retries spent.
    pub store_retries: u64,
    /// Total store errors recorded (all kinds).
    pub store_errors: u64,
    /// The most recent errors, oldest first (bounded ring).
    pub recent_errors: Vec<String>,
    /// The last background-retrain failure, if one is pending backoff.
    pub retrain: Option<RetrainHealth>,
}

impl HealthReport {
    /// Whether there is anything worth rendering: a fully healthy context
    /// yields `false` and EXPLAIN omits the health lines entirely (keeping
    /// fault-free plans byte-identical to earlier releases).
    pub fn is_notable(&self) -> bool {
        self.store_degraded
            || self.store_errors > 0
            || self.store_retries > 0
            || self.retrain.is_some()
    }

    /// The EXPLAIN `health:` line body.
    pub fn health_line(&self) -> String {
        if self.store_degraded {
            format!("degraded (store unavailable, {} retries)", self.store_retries)
        } else {
            format!(
                "ok ({} store error{} recorded, {} retries)",
                self.store_errors,
                if self.store_errors == 1 { "" } else { "s" },
                self.store_retries
            )
        }
    }

    /// The EXPLAIN `retrain:` line body, when a retrain failure is pending.
    pub fn retrain_line(&self) -> Option<String> {
        self.retrain.as_ref().map(|r| {
            format!(
                "failed@gen {}, backoff {} frames (resume at frame {}, {} failure{})",
                r.generation,
                r.backoff_frames,
                r.resume_at,
                r.failures,
                if r.failures == 1 { "" } else { "s" }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn transient() -> StoreError {
        StoreError::Transient { path: PathBuf::from("/x"), message: "would block".into() }
    }

    fn hard_io() -> StoreError {
        StoreError::Io { path: PathBuf::from("/x"), message: "disk on fire".into() }
    }

    #[test]
    fn failpoints_compile_out_by_default() {
        // The chaos CI job builds with `--features fault-injection`; the default
        // build must witness, at compile time, that every failpoint is inert.
        #[cfg(not(feature = "fault-injection"))]
        {
            const { assert!(!COMPILED_IN) };
            assert_eq!(inject(FaultSite::StoreRead), None);
        }
        #[cfg(feature = "fault-injection")]
        const {
            assert!(COMPILED_IN)
        };
    }

    #[test]
    fn retry_policy_retries_transients_and_charges_backoff() {
        let clock = SimClock::new();
        let mut rng = StdRng::seed_from_u64(7);
        let policy = RetryPolicy::default();
        let mut calls = 0u32;
        let (outcome, retries) = policy.run(&clock, &mut rng, || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(42u8)
            }
        });
        assert_eq!(outcome, Ok(42));
        assert_eq!(retries, 2);
        assert_eq!(calls, 3);
        assert!(clock.breakdown().other > 0.0, "backoff must be charged to the clock");
    }

    #[test]
    fn retry_policy_gives_up_after_cap_and_skips_hard_errors() {
        let clock = SimClock::new();
        let mut rng = StdRng::seed_from_u64(7);
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let mut calls = 0u32;
        let (outcome, retries) = policy.run(&clock, &mut rng, || -> StoreResult<()> {
            calls += 1;
            Err(transient())
        });
        assert!(matches!(outcome, Err(StoreError::Transient { .. })));
        assert_eq!((calls, retries), (3, 2));

        let mut calls = 0u32;
        let (outcome, retries) = policy.run(&clock, &mut rng, || -> StoreResult<()> {
            calls += 1;
            Err(hard_io())
        });
        assert!(matches!(outcome, Err(StoreError::Io { .. })));
        assert_eq!((calls, retries), (1, 0), "hard errors are not retried");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_secs: 0.01,
            max_backoff_secs: 0.05,
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert!((policy.backoff_secs(0, &mut rng) - 0.01).abs() < 1e-12);
        assert!((policy.backoff_secs(1, &mut rng) - 0.02).abs() < 1e-12);
        assert!((policy.backoff_secs(2, &mut rng) - 0.04).abs() < 1e-12);
        assert!((policy.backoff_secs(3, &mut rng) - 0.05).abs() < 1e-12, "capped");
        assert!((policy.backoff_secs(20, &mut rng) - 0.05).abs() < 1e-12, "capped");
    }

    #[test]
    fn health_degrades_after_consecutive_hard_failures_then_probes_back() {
        let health = HealthState::new(11);
        assert!(health.store_usable());
        for _ in 0..DEGRADE_AFTER {
            assert!(health.store_attempt_allowed());
            health.record_store_error("store scores", &hard_io());
        }
        assert!(!health.store_usable(), "3 consecutive hard failures degrade");
        assert!(health.report().store_degraded);

        // Probation: the next INITIAL_PROBE_BACKOFF attempts are skipped.
        for _ in 0..INITIAL_PROBE_BACKOFF {
            assert!(!health.store_attempt_allowed());
        }
        // Then exactly one probe is let through; success heals.
        assert!(health.store_attempt_allowed());
        health.record_store_success();
        assert!(health.store_usable());
        assert_eq!(health.report().store_consecutive_failures, 0);
    }

    #[test]
    fn failed_probe_doubles_the_probation_window() {
        let health = HealthState::new(11);
        for _ in 0..DEGRADE_AFTER {
            health.record_store_error("op", &hard_io());
        }
        for _ in 0..INITIAL_PROBE_BACKOFF {
            assert!(!health.store_attempt_allowed());
        }
        assert!(health.store_attempt_allowed(), "probe slot");
        health.record_store_error("op", &hard_io());
        // The failed probe re-arms a doubled window.
        for _ in 0..(INITIAL_PROBE_BACKOFF * 2) {
            assert!(!health.store_attempt_allowed());
        }
        assert!(health.store_attempt_allowed());
    }

    #[test]
    fn invalid_and_budget_errors_do_not_degrade() {
        let health = HealthState::new(3);
        let budget =
            StoreError::BudgetExceeded { path: PathBuf::from("/x"), needed: 10, budget: 1 };
        for _ in 0..10 {
            health.record_store_error("store scores", &budget);
        }
        assert!(health.store_usable());
        let report = health.report();
        assert!(!report.store_degraded);
        assert_eq!(report.store_errors, 10);
        assert_eq!(report.recent_errors.len(), ERROR_RING, "ring buffer is bounded");
    }

    #[test]
    fn report_renders_explain_lines() {
        let health = HealthState::new(5);
        assert!(!health.report().is_notable(), "healthy contexts render nothing");
        for _ in 0..DEGRADE_AFTER {
            health.record_store_error("load scores", &hard_io());
        }
        health.add_store_retries(3);
        let report = health.report();
        assert!(report.is_notable());
        assert_eq!(report.health_line(), "degraded (store unavailable, 3 retries)");

        health.record_retrain_failure(RetrainHealth {
            generation: 2,
            failures: 1,
            backoff_frames: 512,
            resume_at: 18_512,
            last_error: "injected".into(),
        });
        let line = health.report().retrain_line().expect("retrain line");
        assert!(line.starts_with("failed@gen 2, backoff 512 frames"), "got: {line}");
        health.clear_retrain_failure();
        assert!(health.report().retrain_line().is_none());
    }

    #[test]
    fn run_with_retry_records_spent_retries() {
        let health = HealthState::new(9);
        let clock = SimClock::new();
        let mut calls = 0u32;
        let outcome = health.run_with_retry(&RetryPolicy::default(), &clock, || {
            calls += 1;
            if calls < 2 {
                Err(transient())
            } else {
                Ok(())
            }
        });
        assert_eq!(outcome, Ok(()));
        assert_eq!(health.report().store_retries, 1);
    }

    #[cfg(feature = "fault-injection")]
    mod injected {
        use super::*;

        #[test]
        fn schedules_are_deterministic_per_seed() {
            let observe = |seed: u64| -> Vec<Option<InjectedFault>> {
                let _guard = install(FaultPlan::uniform(seed, 0.5));
                (0..64).map(|_| inject(FaultSite::StoreWrite)).collect()
            };
            let a = observe(42);
            let b = observe(42);
            let c = observe(43);
            assert_eq!(a, b, "same seed, same schedule");
            assert_ne!(a, c, "different seeds diverge");
            assert!(a.iter().any(|f| f.is_some()), "p=0.5 over 64 hits injects");
            assert!(a.iter().any(|f| f.is_none()), "p=0.5 over 64 hits passes some");
        }

        #[test]
        fn uninstalled_injector_is_silent() {
            {
                let _guard = install(FaultPlan::uniform(1, 1.0));
                assert!(inject(FaultSite::Retrain).is_some());
            }
            assert_eq!(inject(FaultSite::Retrain), None, "guard drop uninstalls");
        }

        #[test]
        fn only_targets_one_site() {
            let guard = install(FaultPlan::only(7, FaultSite::ParTask, 1.0));
            assert_eq!(inject(FaultSite::ParTask), Some(InjectedFault::Panic));
            assert_eq!(inject(FaultSite::StoreRead), None);
            assert_eq!(guard.injected_at(FaultSite::ParTask), 1);
            assert_eq!(guard.injected_at(FaultSite::StoreRead), 0);
            assert_eq!(guard.injected_total(), 1);
            assert_eq!(guard.hits_total(), 2);
        }
    }
}
