//! Debug-build lock-order assertions for the serving/context/stream lock
//! hierarchy.
//!
//! The engine documents a strict acquisition order — **admission →
//! serve_cache → serve_slot → monitor → live_index → nn_cache → video →
//! obs_trace** — which keeps the serving layer (admission control, the
//! coalescing result cache), ingest, drift checks, and background-refresh
//! publication deadlock-free. The serving locks rank lowest because they sit
//! *above* the engine: a cache miss executes a full query, which acquires the
//! context and stream locks, so no serving lock may ever be requested while an
//! engine lock is held. The trace-collector lock (`obs_trace`) ranks highest —
//! a span can open or close while *any* engine lock is held, so the collector
//! must be acquirable last and is never held across another acquisition. That
//! discipline used to live
//! only in comments; this module enforces it in debug builds: every ranked lock
//! acquisition pushes its rank onto a thread-local stack and asserts that no
//! lock of an equal or higher rank is already held by this thread. Release
//! builds compile the bookkeeping out entirely (`OrderedGuard` is a
//! zero-overhead newtype around the `MutexGuard`).
//!
//! Two more enforcement layers consume the same [`RANKED_LOCKS`] table: the
//! static `lock-order` check in `blazeit-lint`, and — under the `model` cargo
//! feature — the `blazeit-model` schedule explorer, for which the ranked locks
//! are constructed via [`crate::sync::Mutex::ranked`] so *every* interleaving
//! is checked against the hierarchy, not just the ones a test happens to run.

use crate::sync::{Mutex, MutexGuard};
use std::ops::{Deref, DerefMut};

/// One ranked lock in the context/stream hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedLock {
    /// The name used at `lock_ordered` call sites and in violation messages.
    /// The corresponding rank constant is `RANK_<NAME>` (uppercased), which is
    /// how `blazeit-lint` resolves call-site rank arguments back to this table.
    pub name: &'static str,
    /// Position in the documented acquisition order; lower ranks are acquired
    /// first, and acquiring a lock while holding an equal or higher rank is a
    /// violation.
    pub rank: u8,
}

/// The documented lock acquisition order, lowest rank first.
///
/// This table is the **single source of truth** for the hierarchy: the runtime
/// assertion below (`lock_ordered`) and the static `lock-order` check in
/// `blazeit-lint` both consume it, so the two enforcement layers cannot
/// diverge (a regression test in `crates/lint` additionally pins the
/// `RANK_*` constants and every call-site name literal to this table).
pub const RANKED_LOCKS: [RankedLock; 8] = [
    RankedLock { name: "admission", rank: 0 },
    RankedLock { name: "serve_cache", rank: 1 },
    RankedLock { name: "serve_slot", rank: 2 },
    RankedLock { name: "monitor", rank: 3 },
    RankedLock { name: "live_index", rank: 4 },
    RankedLock { name: "nn_cache", rank: 5 },
    RankedLock { name: "video", rank: 6 },
    RankedLock { name: "obs_trace", rank: 7 },
];

/// Rank of `serve::Admission::state` (acquired first — the serving layer sits
/// above the engine, so its locks rank below every engine lock).
pub const RANK_ADMISSION: u8 = RANKED_LOCKS[0].rank;
/// Rank of `serve::QueryCache::slots` (the coalescing cache's key map).
pub const RANK_SERVE_CACHE: u8 = RANKED_LOCKS[1].rank;
/// Rank of `serve::Slot::state` (one in-flight computation's publish lock).
pub const RANK_SERVE_SLOT: u8 = RANKED_LOCKS[2].rank;
/// Rank of `StreamState::monitor` (the first engine lock).
pub const RANK_MONITOR: u8 = RANKED_LOCKS[3].rank;
/// Rank of `VideoContext::live_index`.
pub const RANK_LIVE_INDEX: u8 = RANKED_LOCKS[4].rank;
/// Rank of `VideoContext::nn_cache`.
pub const RANK_NN_CACHE: u8 = RANKED_LOCKS[5].rank;
/// Rank of `VideoContext::video` (the last engine lock).
pub const RANK_VIDEO: u8 = RANKED_LOCKS[6].rank;
/// Rank of `obs::TraceCollector::state` (acquired last: span guards open and
/// close while engine locks are held, and the collector lock is never held
/// across any other acquisition).
pub const RANK_OBS_TRACE: u8 = RANKED_LOCKS[7].rank;

#[cfg(debug_assertions)]
mod tracker {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks of the ordered locks this thread currently holds.
        static HELD: RefCell<Vec<(u8, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: u8, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for &(held_rank, held_name) in held.iter() {
                assert!(
                    held_rank < rank,
                    "lock-order violation: acquiring '{name}' (rank {rank}) while holding \
                     '{held_name}' (rank {held_rank}); the documented order is \
                     admission → serve_cache → serve_slot → monitor → live_index → \
                     nn_cache → video → obs_trace"
                );
            }
            held.push((rank, name));
        });
    }

    pub(super) fn release(rank: u8, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards may drop out of acquisition order; remove the newest match.
            if let Some(pos) = held.iter().rposition(|&(r, n)| r == rank && n == name) {
                held.remove(pos);
            }
        });
    }
}

/// A `MutexGuard` participating in the ranked hierarchy: construction asserts
/// the order (debug builds only) and drop releases the bookkeeping.
pub(crate) struct OrderedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: u8,
    #[cfg(debug_assertions)]
    name: &'static str,
}

impl<T> Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        tracker::release(self.rank, self.name);
    }
}

/// Locks `mutex` at `rank`, asserting (in debug builds) that every ranked lock
/// this thread already holds ranks strictly lower.
pub(crate) fn lock_ordered<'a, T>(
    rank: u8,
    name: &'static str,
    mutex: &'a Mutex<T>,
) -> OrderedGuard<'a, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(rank, name);
    #[cfg(not(debug_assertions))]
    let _ = (rank, name);
    OrderedGuard {
        guard: mutex.lock(),
        #[cfg(debug_assertions)]
        rank,
        #[cfg(debug_assertions)]
        name,
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn in_order_acquisition_is_allowed() {
        let monitor = Mutex::new(0u8);
        let live = Mutex::new(0u8);
        let video = Mutex::new(0u8);
        let a = lock_ordered(RANK_MONITOR, "monitor", &monitor);
        let b = lock_ordered(RANK_LIVE_INDEX, "live_index", &live);
        let c = lock_ordered(RANK_VIDEO, "video", &video);
        drop((a, b, c));
        // The serving locks rank below every engine lock: cache → monitor is
        // the miss path (lookup, then execute), and it must be clean.
        let s = lock_ordered(RANK_SERVE_CACHE, "serve_cache", &live);
        drop(s);
        let a = lock_ordered(RANK_ADMISSION, "admission", &monitor);
        let b = lock_ordered(RANK_SERVE_SLOT, "serve_slot", &live);
        let c = lock_ordered(RANK_MONITOR, "monitor", &video);
        drop((a, b, c));
        // Skipping ranks is fine; only inversions are violations.
        let c = lock_ordered(RANK_NN_CACHE, "nn_cache", &video);
        drop(c);
        let a = lock_ordered(RANK_VIDEO, "video", &video);
        drop(a);
        // The trace collector ranks last: a span may record itself while any
        // engine lock is held.
        let a = lock_ordered(RANK_VIDEO, "video", &video);
        let b = lock_ordered(RANK_OBS_TRACE, "obs_trace", &live);
        drop((a, b));
    }

    #[test]
    fn out_of_order_acquisition_panics() {
        let live = Mutex::new(0u8);
        let monitor = Mutex::new(0u8);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _b = lock_ordered(RANK_LIVE_INDEX, "live_index", &live);
            let _a = lock_ordered(RANK_MONITOR, "monitor", &monitor);
        }));
        let message = *outcome.expect_err("inversion must panic").downcast::<String>().unwrap();
        assert!(message.contains("lock-order violation"), "got: {message}");
    }

    #[test]
    fn same_rank_reacquisition_panics() {
        // The shim mutexes are not reentrant: re-locking the same rank on one
        // thread is a self-deadlock, caught here before the deadlock happens.
        let video = Mutex::new(0u8);
        let other = Mutex::new(0u8);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _a = lock_ordered(RANK_VIDEO, "video", &video);
            let _b = lock_ordered(RANK_VIDEO, "video", &other);
        }));
        assert!(outcome.is_err());
    }

    #[test]
    fn release_unwinds_out_of_order_drops() {
        let monitor = Mutex::new(0u8);
        let live = Mutex::new(0u8);
        let a = lock_ordered(RANK_MONITOR, "monitor", &monitor);
        let b = lock_ordered(RANK_LIVE_INDEX, "live_index", &live);
        drop(a); // dropped before b — bookkeeping must not corrupt
        drop(b);
        let a = lock_ordered(RANK_MONITOR, "monitor", &monitor);
        let b = lock_ordered(RANK_LIVE_INDEX, "live_index", &live);
        drop(b);
        drop(a);
    }

    #[test]
    fn threads_track_independently() {
        let live = Mutex::new(0u8);
        let _outer = lock_ordered(RANK_VIDEO, "video", &live);
        std::thread::scope(|s| {
            s.spawn(|| {
                let monitor = Mutex::new(0u8);
                // This thread holds nothing: rank 0 is fine here even though
                // the spawning thread holds rank 3.
                let _g = lock_ordered(RANK_MONITOR, "monitor", &monitor);
            });
        });
    }
}
