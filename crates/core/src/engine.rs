//! The BlazeIt engine: query entry point, optimizer dispatch, and shared resources.

use crate::aggregate;
use crate::config::BlazeItConfig;
use crate::labeled::LabeledSet;
use crate::result::{QueryOutput, QueryResult};
use crate::scrub;
use crate::select;
use crate::{BlazeItError, Result};
use blazeit_detect::{SimClock, SimulatedDetector};
use blazeit_frameql::query::{analyze, QueryClass, QueryPlanInfo};
use blazeit_frameql::{builtin_udfs, parse_query, Query, UdfRegistry};
use blazeit_nn::specialized::{SpecializedConfig, SpecializedHead, SpecializedNN};
use blazeit_nn::ScoreMatrix;
use blazeit_videostore::{DatasetPreset, ObjectClass, Video, DAY_HELDOUT, DAY_TEST, DAY_TRAIN};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The BlazeIt query engine over one (unseen) video.
///
/// The engine holds the unseen test-day video, the labeled set (training + held-out
/// days annotated offline), the configured detector, the UDF registry, and two caches
/// keyed by the specialized networks' output heads:
///
/// * `nn_cache` — trained specialized networks. Once a network has been trained for
///   some class set, later queries reuse it and pay only inference (the paper's
///   "BlazeIt (no train)" scenario).
/// * `score_cache` — per-video [`ScoreMatrix`] indexes produced by the batched
///   scoring pipeline, keyed by video identity + head set + feature configuration.
///   The first query over a class set scores the whole video once
///   ([`SpecializedNN::score_video`]); every later query answers from the cached
///   index and pays *no* specialized inference at all — the paper's
///   "BlazeIt (indexed)" scenario made concrete.
pub struct BlazeIt {
    video: Video,
    labeled: Arc<LabeledSet>,
    config: BlazeItConfig,
    clock: Arc<SimClock>,
    detector: SimulatedDetector,
    udfs: UdfRegistry,
    nn_cache: Mutex<HashMap<String, Arc<SpecializedNN>>>,
    score_cache: Mutex<HashMap<String, Arc<ScoreMatrix>>>,
}

impl std::fmt::Debug for BlazeIt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlazeIt")
            .field("video", &self.video.name())
            .field("frames", &self.video.len())
            .field("detection_method", &self.config.detection_method)
            .finish()
    }
}

impl BlazeIt {
    /// Creates an engine over `video` (the unseen test data) with a pre-built labeled set.
    pub fn new(video: Video, labeled: Arc<LabeledSet>, config: BlazeItConfig) -> BlazeIt {
        let clock = SimClock::new();
        let detector = SimulatedDetector::new(
            config.detection_method,
            config.detection_threshold,
            Arc::clone(&clock),
        );
        BlazeIt {
            video,
            labeled,
            config,
            clock,
            detector,
            udfs: builtin_udfs(),
            nn_cache: Mutex::new(HashMap::new()),
            score_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Convenience constructor: generates the three days of a Table 3 preset (train,
    /// held-out, test) at `frames_per_day` frames each, builds the labeled set, and
    /// returns an engine over the test day.
    pub fn for_preset(preset: DatasetPreset, frames_per_day: u64) -> Result<BlazeIt> {
        let config = BlazeItConfig::for_preset(preset);
        Self::for_preset_with_config(preset, frames_per_day, config)
    }

    /// Like [`BlazeIt::for_preset`] but with an explicit configuration.
    pub fn for_preset_with_config(
        preset: DatasetPreset,
        frames_per_day: u64,
        config: BlazeItConfig,
    ) -> Result<BlazeIt> {
        let train = preset.generate_with_frames(DAY_TRAIN, frames_per_day)?;
        let heldout = preset.generate_with_frames(DAY_HELDOUT, frames_per_day)?;
        let test = preset.generate_with_frames(DAY_TEST, frames_per_day)?;
        let labeled = Arc::new(LabeledSet::build(train, heldout, &config)?);
        Ok(BlazeIt::new(test, labeled, config))
    }

    /// The unseen (test) video queries run over.
    pub fn video(&self) -> &Video {
        &self.video
    }

    /// The labeled set.
    pub fn labeled(&self) -> &Arc<LabeledSet> {
        &self.labeled
    }

    /// The engine configuration.
    pub fn config(&self) -> &BlazeItConfig {
        &self.config
    }

    /// The simulated clock all costs are charged to.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The configured object detector (charges the engine clock on every call).
    pub fn detector(&self) -> &SimulatedDetector {
        &self.detector
    }

    /// The UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Registers (or replaces) a UDF available to queries on this engine.
    pub fn register_udf(
        &mut self,
        name: &str,
        frame_liftable: bool,
        func: impl Fn(
                &blazeit_videostore::Frame,
                &blazeit_videostore::BoundingBox,
            ) -> blazeit_frameql::Value
            + Send
            + Sync
            + 'static,
    ) {
        self.udfs.register(name, frame_liftable, func);
    }

    /// Resets the simulated clock (useful between experiments sharing one engine).
    pub fn reset_clock(&self) {
        self.clock.reset();
    }

    /// Parses, optimizes and executes a FrameQL query.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let started = Instant::now();
        let cost_before = self.clock.breakdown();

        let parsed = parse_query(sql)?;
        self.check_video_name(&parsed)?;
        let info = analyze(&parsed, &self.udfs)?;
        let output = self.execute(&parsed, &info)?;

        let cost = self.clock.breakdown().since(&cost_before);
        Ok(QueryResult {
            query: sql.to_string(),
            output,
            cost,
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }

    /// Executes an already-analyzed query. Exposed for harnesses that need to toggle
    /// plan options.
    pub fn execute(&self, query: &Query, info: &QueryPlanInfo) -> Result<QueryOutput> {
        match &info.class {
            QueryClass::Aggregate { .. } => aggregate::execute(self, query, info),
            QueryClass::Scrub => scrub::execute(self, query, info),
            QueryClass::Select | QueryClass::Exhaustive => {
                select::execute(self, query, info, &select::SelectionOptions::default())
            }
        }
    }

    fn check_video_name(&self, query: &Query) -> Result<()> {
        let normalize = |s: &str| s.to_ascii_lowercase().replace('_', "-");
        if normalize(&query.from) != normalize(self.video.name()) {
            return Err(BlazeItError::WrongVideo {
                requested: query.from.clone(),
                available: self.video.name().to_string(),
            });
        }
        Ok(())
    }

    /// The cache key for a set of `(class, max_count)` heads (order-insensitive).
    fn head_key(heads: &[(ObjectClass, usize)]) -> String {
        let mut sorted: Vec<(ObjectClass, usize)> = heads.to_vec();
        sorted.sort_by_key(|(c, _)| c.index());
        sorted.iter().map(|(c, m)| format!("{}:{}", c.name(), m)).collect::<Vec<_>>().join("|")
    }

    /// The cache key for a score index: full video identity (name, day, seed,
    /// length, frames scored) + the network's own architecture (heads, feature
    /// config, hidden widths, init seed).
    ///
    /// The day/seed components distinguish the test-day index from the held-out
    /// index even when both days are the same length and fully annotated; the
    /// architecture components come from the *network being scored* (not the
    /// engine config), so an externally trained network with the same heads but
    /// different features cannot collide with an engine-trained one.
    fn score_key(video: &Video, frames_scored: usize, config: &SpecializedConfig) -> String {
        let heads: Vec<(ObjectClass, usize)> =
            config.heads.iter().map(|h| (h.class, h.max_count)).collect();
        format!(
            "{}#day{}#vseed{}#{}#{}#{:?}#{:?}#nnseed{}#{}",
            video.name(),
            video.config().day,
            video.config().seed,
            video.len(),
            frames_scored,
            config.features,
            config.hidden,
            config.seed,
            Self::head_key(&heads),
        )
    }

    /// The specialized-network configuration this engine trains for a sorted
    /// head set (shared by [`BlazeIt::specialized_for`] and the cache-key
    /// derivations so they can never disagree).
    fn engine_spec_config(&self, sorted: &[(ObjectClass, usize)]) -> SpecializedConfig {
        let spec_heads: Vec<SpecializedHead> = sorted
            .iter()
            .map(|&(class, max_count)| SpecializedHead { class, max_count: max_count.max(1) })
            .collect();
        let mut spec_config = SpecializedConfig::for_heads(spec_heads);
        spec_config.features = self.config.features;
        spec_config.hidden = self.config.specialized_hidden.clone();
        spec_config.train = self.config.train;
        spec_config.cost = self.config.cost;
        spec_config.seed = self.config.sampling_seed ^ 0x5EC1_A112;
        spec_config
    }

    /// Returns (training if necessary) a specialized network with one counting head per
    /// requested `(class, max_count)` pair.
    ///
    /// Training is charged to the engine clock; cache hits are free (this is the
    /// "indexed" / "no train" scenario of the paper).
    pub fn specialized_for(&self, heads: &[(ObjectClass, usize)]) -> Result<Arc<SpecializedNN>> {
        if heads.is_empty() {
            return Err(BlazeItError::Internal(
                "specialized_for requires at least one head".into(),
            ));
        }
        let mut sorted: Vec<(ObjectClass, usize)> = heads.to_vec();
        sorted.sort_by_key(|(c, _)| c.index());
        let key = Self::head_key(heads);

        if let Some(nn) = self.nn_cache.lock().get(&key) {
            return Ok(Arc::clone(nn));
        }

        let spec_config = self.engine_spec_config(&sorted);
        let train_day = self.labeled.train();
        let (nn, _report) = SpecializedNN::train(
            spec_config,
            self.labeled.train_video(),
            &train_day.frames,
            &train_day.counts,
            Arc::clone(&self.clock),
        )?;
        let nn = Arc::new(nn);
        self.nn_cache.lock().insert(key, Arc::clone(&nn));
        Ok(nn)
    }

    /// The default counting head size for `class`, chosen by the paper's rule: the
    /// highest count appearing in at least `count_class_min_fraction` of the labeled
    /// frames, and never below `at_least`.
    pub fn default_max_count(&self, class: ObjectClass, at_least: usize) -> usize {
        let counts = self.labeled.train().class_counts(class);
        let head =
            SpecializedHead::from_counts(class, counts, self.config.count_class_min_fraction);
        head.max_count.max(at_least).max(1)
    }

    /// Whether a specialized network for these heads is already trained and cached.
    pub fn has_cached_specialized(&self, heads: &[(ObjectClass, usize)]) -> bool {
        self.nn_cache.lock().contains_key(&Self::head_key(heads))
    }

    /// The per-video score index for `nn` over the unseen (test) video: every frame
    /// scored by the batched pipeline, cached so repeated queries over the same
    /// class set pay specialized inference only once (the paper's
    /// "BlazeIt (indexed)" scenario).
    ///
    /// The first call charges the full-video inference cost to the engine clock;
    /// later calls are free.
    pub fn score_index(&self, nn: &Arc<SpecializedNN>) -> Result<Arc<ScoreMatrix>> {
        let key = Self::score_key(&self.video, self.video.len() as usize, nn.config());
        // The lock is held across the build so two concurrent first queries
        // cannot both score the video (which would double-charge the clock).
        let mut cache = self.score_cache.lock();
        if let Some(scores) = cache.get(&key) {
            return Ok(Arc::clone(scores));
        }
        let scores = Arc::new(nn.score_video(&self.video)?);
        cache.insert(key, Arc::clone(&scores));
        Ok(scores)
    }

    /// The score index for `nn` over the held-out day's annotated frames (row `i`
    /// corresponds to `labeled().heldout().frames[i]`), cached like
    /// [`BlazeIt::score_index`]. Algorithm 1's error estimate and the selection
    /// label-filter calibration both read from this index, so re-running a query
    /// re-checks its plan without re-scoring the held-out day.
    pub fn heldout_score_index(&self, nn: &Arc<SpecializedNN>) -> Result<Arc<ScoreMatrix>> {
        let heldout = self.labeled.heldout();
        let key = Self::score_key(self.labeled.heldout_video(), heldout.frames.len(), nn.config());
        let mut cache = self.score_cache.lock();
        if let Some(scores) = cache.get(&key) {
            return Ok(Arc::clone(scores));
        }
        let scores = Arc::new(nn.score_batch(self.labeled.heldout_video(), &heldout.frames)?);
        cache.insert(key, Arc::clone(&scores));
        Ok(scores)
    }

    /// Whether the unseen video's score index for these heads is already built.
    pub fn has_cached_score_index(&self, heads: &[(ObjectClass, usize)]) -> bool {
        let mut sorted: Vec<(ObjectClass, usize)> = heads.to_vec();
        sorted.sort_by_key(|(c, _)| c.index());
        let config = self.engine_spec_config(&sorted);
        let key = Self::score_key(&self.video, self.video.len() as usize, &config);
        self.score_cache.lock().contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::QueryOutput;

    fn engine() -> BlazeIt {
        BlazeIt::for_preset(DatasetPreset::Taipei, 1_500).unwrap()
    }

    #[test]
    fn engine_construction_and_accessors() {
        let e = engine();
        assert_eq!(e.video().name(), "taipei");
        assert_eq!(e.video().len(), 1_500);
        assert!(e.labeled().train().len() > 0);
        assert_eq!(e.clock().total(), 0.0);
    }

    #[test]
    fn wrong_video_name_is_rejected() {
        let e = engine();
        let err = e.query("SELECT FCOUNT(*) FROM rialto WHERE class = 'boat' ERROR WITHIN 0.1");
        assert!(matches!(err, Err(BlazeItError::WrongVideo { .. })));
    }

    #[test]
    fn video_name_normalization_accepts_underscores() {
        let e = BlazeIt::for_preset(DatasetPreset::NightStreet, 600).unwrap();
        // night_street vs night-street should be treated as the same relation.
        let result =
            e.query("SELECT FCOUNT(*) FROM night_street WHERE class = 'car' ERROR WITHIN 0.5 AT CONFIDENCE 90%");
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn specialized_cache_hits_avoid_retraining() {
        let e = engine();
        let heads = [(ObjectClass::Car, 3usize)];
        assert!(!e.has_cached_specialized(&heads));
        let _nn = e.specialized_for(&heads).unwrap();
        assert!(e.has_cached_specialized(&heads));
        let training_after_first = e.clock().breakdown().training;
        assert!(training_after_first > 0.0);
        let _nn2 = e.specialized_for(&heads).unwrap();
        let training_after_second = e.clock().breakdown().training;
        assert!((training_after_second - training_after_first).abs() < 1e-12);
    }

    #[test]
    fn score_index_cache_hits_charge_no_inference() {
        let e = engine();
        let heads = [(ObjectClass::Car, 2usize)];
        let nn = e.specialized_for(&heads).unwrap();
        assert!(!e.has_cached_score_index(&heads));

        let before = e.clock().breakdown().specialized;
        let index = e.score_index(&nn).unwrap();
        assert_eq!(index.num_frames() as u64, e.video().len());
        let after_first = e.clock().breakdown().specialized;
        assert!(after_first > before, "building the index must charge inference");
        assert!(e.has_cached_score_index(&heads));

        let index_again = e.score_index(&nn).unwrap();
        assert!(Arc::ptr_eq(&index, &index_again));
        let after_second = e.clock().breakdown().specialized;
        assert!(
            (after_second - after_first).abs() < 1e-12,
            "cache hit must not charge specialized inference"
        );
    }

    #[test]
    fn score_index_distinguishes_test_and_heldout_days() {
        // With heldout_stride = 1 the held-out day is fully annotated, so its
        // index covers the same number of frames as the test day's, and both
        // videos share the preset name and length — the cache keys must still
        // differ (they encode the day), or rewriting would silently answer
        // queries from the held-out day's scores.
        let mut config = BlazeItConfig::for_preset(DatasetPreset::Taipei);
        config.heldout_stride = 1;
        let e = BlazeIt::for_preset_with_config(DatasetPreset::Taipei, 600, config).unwrap();
        let nn = e.specialized_for(&[(ObjectClass::Car, 2)]).unwrap();
        let heldout_index = e.heldout_score_index(&nn).unwrap();
        let test_index = e.score_index(&nn).unwrap();
        assert!(!Arc::ptr_eq(&heldout_index, &test_index));
        assert_eq!(heldout_index.num_frames(), test_index.num_frames());
        assert_ne!(heldout_index.probs(), test_index.probs());
    }

    #[test]
    fn repeated_queries_hit_the_score_index() {
        // The "BlazeIt (indexed)" acceptance scenario: the second identical query
        // over the same video + class set pays zero specialized inference.
        let e = engine();
        let sql =
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
        e.query(sql).unwrap();
        let after_first = e.clock().breakdown().specialized;
        assert!(after_first > 0.0);
        e.query(sql).unwrap();
        let after_second = e.clock().breakdown().specialized;
        assert!(
            (after_second - after_first).abs() < 1e-12,
            "second query charged {} extra specialized-inference seconds",
            after_second - after_first
        );
    }

    #[test]
    fn default_max_count_respects_floor() {
        let e = engine();
        let k = e.default_max_count(ObjectClass::Car, 5);
        assert!(k >= 5);
        let k2 = e.default_max_count(ObjectClass::Bird, 1);
        assert_eq!(k2, 1);
    }

    #[test]
    fn end_to_end_aggregate_query_runs() {
        let e = engine();
        let result = e
            .query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%")
            .unwrap();
        match result.output {
            QueryOutput::Aggregate { value, .. } => assert!(value >= 0.0),
            other => panic!("expected aggregate output, got {other:?}"),
        }
        assert!(result.runtime_secs() > 0.0);
    }

    #[test]
    fn end_to_end_scrub_query_runs() {
        let e = engine();
        let result = e
            .query(
                "SELECT timestamp FROM taipei GROUP BY timestamp \
                 HAVING SUM(class='car') >= 1 LIMIT 3 GAP 30",
            )
            .unwrap();
        match &result.output {
            QueryOutput::Frames { frames, .. } => {
                assert!(frames.len() <= 3);
                for pair in frames.windows(2) {
                    let gap = pair[0].abs_diff(pair[1]);
                    assert!(gap >= 30, "frames {pair:?} violate GAP 30");
                }
            }
            other => panic!("expected frames output, got {other:?}"),
        }
    }

    #[test]
    fn clock_reset() {
        let e = engine();
        e.query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.3 AT CONFIDENCE 90%",
        )
        .unwrap();
        assert!(e.clock().total() > 0.0);
        e.reset_clock();
        assert_eq!(e.clock().total(), 0.0);
    }
}
