//! The single-video compatibility shim over the catalog API.
//!
//! Earlier revisions of this crate exposed [`BlazeIt`] as *the* engine: one video, one
//! labeled set, queries in, results out. The query surface has since been redesigned
//! around a [`Catalog`] of registered videos with an explicit planner / executor split
//! ([`Session::prepare`](crate::session::Session::prepare) →
//! [`PreparedQuery`](crate::session::PreparedQuery) → `.run()`); `BlazeIt` remains as
//! a thin convenience wrapper for the common one-video case: a catalog holding a
//! single registered video, with [`BlazeIt::query`] delegating to a session and every
//! per-video accessor delegating (via [`std::ops::Deref`]) to the underlying
//! [`VideoContext`].
//!
//! New code — anything that wants several videos, plan inspection, `EXPLAIN`, or plan
//! overrides — should use [`Catalog`] directly.

use crate::catalog::Catalog;
use crate::config::BlazeItConfig;
use crate::context::VideoContext;
use crate::labeled::LabeledSet;
use crate::result::QueryResult;
use crate::Result;
use blazeit_videostore::{DatasetPreset, Video};
use std::ops::Deref;
use std::sync::Arc;

/// A one-video catalog: the backwards-compatible BlazeIt engine.
pub struct BlazeIt {
    catalog: Catalog,
    /// The registered context, pinned at construction: contexts are `Arc`
    /// snapshots out of the shared catalog, so the shim can deref to a stable
    /// `&VideoContext` without taking the catalog's contexts lock per call.
    ctx: Arc<VideoContext>,
}

impl std::fmt::Debug for BlazeIt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlazeIt")
            .field("video", &self.video().name())
            .field("frames", &self.video().len())
            .field("detection_method", &self.config().detection_method)
            .finish()
    }
}

impl BlazeIt {
    /// Creates an engine over `video` (the unseen test data) with a pre-built labeled set.
    pub fn new(video: Video, labeled: Arc<LabeledSet>, config: BlazeItConfig) -> BlazeIt {
        let catalog = Catalog::new();
        let ctx = catalog
            .register(video, labeled, config)
            // blazeit-lint: allow(panic-site) -- infallible: the catalog was created
            // empty two lines above, and Duplicate is register's only error.
            .expect("a fresh catalog has no duplicates");
        BlazeIt { catalog, ctx }
    }

    /// Convenience constructor: generates the three days of a Table 3 preset (train,
    /// held-out, test) at `frames_per_day` frames each, builds the labeled set, and
    /// returns an engine over the test day.
    pub fn for_preset(preset: DatasetPreset, frames_per_day: u64) -> Result<BlazeIt> {
        let config = BlazeItConfig::for_preset(preset);
        Self::for_preset_with_config(preset, frames_per_day, config)
    }

    /// Like [`BlazeIt::for_preset`] but with an explicit configuration.
    pub fn for_preset_with_config(
        preset: DatasetPreset,
        frames_per_day: u64,
        config: BlazeItConfig,
    ) -> Result<BlazeIt> {
        let catalog = Catalog::new();
        let ctx = catalog.register_preset_with_config(preset, frames_per_day, config)?;
        Ok(BlazeIt { catalog, ctx })
    }

    /// The underlying one-video catalog (for code migrating to the session API).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses, plans and executes a FrameQL query (including `EXPLAIN`).
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.catalog.session().query(sql)
    }

    /// Registers (or replaces) a UDF available to queries on this engine.
    pub fn register_udf(
        &self,
        name: &str,
        frame_liftable: bool,
        func: impl Fn(
                &blazeit_videostore::Frame,
                &blazeit_videostore::BoundingBox,
            ) -> blazeit_frameql::Value
            + Send
            + Sync
            + 'static,
    ) {
        self.ctx.register_udf(name, frame_liftable, func);
    }

    /// Resets the simulated clock (useful between experiments sharing one engine).
    pub fn reset_clock(&self) {
        self.catalog.reset_clock();
    }
}

impl Deref for BlazeIt {
    type Target = VideoContext;

    fn deref(&self) -> &VideoContext {
        // The pinned Arc makes deref lock-free (accessors are called in
        // per-frame loops) and independent of later catalog registrations.
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::QueryOutput;
    use crate::BlazeItError;
    use blazeit_videostore::ObjectClass;
    use std::sync::Arc;

    fn engine() -> BlazeIt {
        BlazeIt::for_preset(DatasetPreset::Taipei, 1_500).unwrap()
    }

    #[test]
    fn engine_construction_and_accessors() {
        let e = engine();
        assert_eq!(e.video().name(), "taipei");
        assert_eq!(e.video().len(), 1_500);
        assert!(!e.labeled().train().is_empty());
        assert_eq!(e.clock().total(), 0.0);
        assert_eq!(e.catalog().video_names(), vec!["taipei".to_string()]);
    }

    #[test]
    fn unknown_video_name_is_rejected_with_catalog_listing() {
        let e = engine();
        let err = e.query("SELECT FCOUNT(*) FROM rialto WHERE class = 'boat' ERROR WITHIN 0.1");
        match err {
            Err(BlazeItError::UnknownVideo { requested, available, .. }) => {
                assert_eq!(requested, "rialto");
                assert_eq!(available, vec!["taipei".to_string()]);
            }
            other => panic!("expected UnknownVideo, got {other:?}"),
        }
    }

    #[test]
    fn video_name_normalization_accepts_underscores() {
        let e = BlazeIt::for_preset(DatasetPreset::NightStreet, 600).unwrap();
        // night_street vs night-street should be treated as the same relation.
        let result =
            e.query("SELECT FCOUNT(*) FROM night_street WHERE class = 'car' ERROR WITHIN 0.5 AT CONFIDENCE 90%");
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn specialized_cache_hits_avoid_retraining() {
        let e = engine();
        let heads = [(ObjectClass::Car, 3usize)];
        assert!(!e.has_cached_specialized(&heads));
        let _nn = e.specialized_for(&heads).unwrap();
        assert!(e.has_cached_specialized(&heads));
        let training_after_first = e.clock().breakdown().training;
        assert!(training_after_first > 0.0);
        let _nn2 = e.specialized_for(&heads).unwrap();
        let training_after_second = e.clock().breakdown().training;
        assert!((training_after_second - training_after_first).abs() < 1e-12);
    }

    #[test]
    fn score_index_cache_hits_charge_no_inference() {
        let e = engine();
        let heads = [(ObjectClass::Car, 2usize)];
        let nn = e.specialized_for(&heads).unwrap();
        assert!(!e.has_cached_score_index(&heads));

        let before = e.clock().breakdown().specialized;
        let index = e.score_index(&nn).unwrap();
        assert_eq!(index.num_frames() as u64, e.video().len());
        let after_first = e.clock().breakdown().specialized;
        assert!(after_first > before, "building the index must charge inference");
        assert!(e.has_cached_score_index(&heads));

        let index_again = e.score_index(&nn).unwrap();
        assert!(Arc::ptr_eq(&index, &index_again));
        let after_second = e.clock().breakdown().specialized;
        assert!(
            (after_second - after_first).abs() < 1e-12,
            "cache hit must not charge specialized inference"
        );
    }

    #[test]
    fn score_index_distinguishes_test_and_heldout_days() {
        // With heldout_stride = 1 the held-out day is fully annotated, so its
        // index covers the same number of frames as the test day's, and both
        // videos share the preset name and length — the cache keys must still
        // differ (they encode the day), or rewriting would silently answer
        // queries from the held-out day's scores.
        let mut config = BlazeItConfig::for_preset(DatasetPreset::Taipei);
        config.heldout_stride = 1;
        let e = BlazeIt::for_preset_with_config(DatasetPreset::Taipei, 600, config).unwrap();
        let nn = e.specialized_for(&[(ObjectClass::Car, 2)]).unwrap();
        let heldout_index = e.heldout_score_index(&nn).unwrap();
        let test_index = e.score_index(&nn).unwrap();
        assert!(!Arc::ptr_eq(&heldout_index, &test_index));
        assert_eq!(heldout_index.num_frames(), test_index.num_frames());
        assert_ne!(heldout_index.probs(), test_index.probs());
    }

    #[test]
    fn repeated_queries_hit_the_score_index() {
        // The "BlazeIt (indexed)" acceptance scenario: the second identical query
        // over the same video + class set pays zero specialized inference.
        let e = engine();
        let sql =
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
        e.query(sql).unwrap();
        let after_first = e.clock().breakdown().specialized;
        assert!(after_first > 0.0);
        e.query(sql).unwrap();
        let after_second = e.clock().breakdown().specialized;
        assert!(
            (after_second - after_first).abs() < 1e-12,
            "second query charged {} extra specialized-inference seconds",
            after_second - after_first
        );
    }

    #[test]
    fn default_max_count_respects_floor() {
        let e = engine();
        let k = e.default_max_count(ObjectClass::Car, 5);
        assert!(k >= 5);
        let k2 = e.default_max_count(ObjectClass::Bird, 1);
        assert_eq!(k2, 1);
    }

    #[test]
    fn end_to_end_aggregate_query_runs() {
        let e = engine();
        let result = e
            .query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%")
            .unwrap();
        match result.output {
            QueryOutput::Aggregate { value, .. } => assert!(value >= 0.0),
            other => panic!("expected aggregate output, got {other:?}"),
        }
        assert!(result.runtime_secs() > 0.0);
    }

    #[test]
    fn end_to_end_scrub_query_runs() {
        let e = engine();
        let result = e
            .query(
                "SELECT timestamp FROM taipei GROUP BY timestamp \
                 HAVING SUM(class='car') >= 1 LIMIT 3 GAP 30",
            )
            .unwrap();
        match &result.output {
            QueryOutput::Frames { frames, .. } => {
                assert!(frames.len() <= 3);
                for pair in frames.windows(2) {
                    let gap = pair[0].abs_diff(pair[1]);
                    assert!(gap >= 30, "frames {pair:?} violate GAP 30");
                }
            }
            other => panic!("expected frames output, got {other:?}"),
        }
    }

    #[test]
    fn clock_reset() {
        let e = engine();
        e.query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.3 AT CONFIDENCE 90%",
        )
        .unwrap();
        assert!(e.clock().total() > 0.0);
        e.reset_clock();
        assert_eq!(e.clock().total(), 0.0);
    }

    #[test]
    fn explain_through_the_shim_is_free() {
        let e = engine();
        let result = e
            .query("EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1")
            .unwrap();
        assert!(result.output.explain_plan().is_some());
        assert_eq!(e.clock().total(), 0.0, "EXPLAIN must not charge the simulated clock");
    }
}
